"""Supporting experiment (Section 5.2 text): cryptographic operation costs.

The paper's analysis rests on three measured numbers: a MAC operation costs
0.2 ms, producing a threshold signature 15 ms, and verifying one 0.7 ms.
This benchmark checks that the simulator's cost model charges exactly those
virtual costs, and measures the real (wall-clock) cost of the simulated
primitives so the harness notices if they ever become a bottleneck.
"""

from __future__ import annotations

import pytest

from bench_common import print_section
from repro.analysis import format_table
from repro.config import CryptoCosts
from repro.crypto.keys import Keystore
from repro.crypto.provider import CryptoProvider
from repro.messages.request import ClientRequest
from repro.statemachine.interface import Operation
from repro.util.ids import agreement_id, client_id, execution_id


def _provider_with_meter(node):
    keystore = Keystore()
    keystore.create_threshold_group("exec", [execution_id(i) for i in range(3)], 2)
    charges = []
    provider = CryptoProvider(node, keystore, CryptoCosts(), charge=charges.append)
    return keystore, provider, charges


def _request():
    return ClientRequest(operation=Operation(kind="null", body_size=1024),
                         timestamp=1, client=client_id(0))


def test_cost_model_matches_paper_numbers(benchmark):
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    keystore, provider, charges = _provider_with_meter(execution_id(0))
    request = _request()

    charges.clear()
    provider.mac_authenticator(request, [agreement_id(0)])
    mac_cost = sum(c for c in charges if c > 0.0)

    charges.clear()
    provider.threshold_share(request, "exec")
    share_cost = max(charges)

    charges.clear()
    verifier = CryptoProvider(client_id(0), keystore, CryptoCosts(), charge=charges.append)
    shares = [CryptoProvider(execution_id(i), keystore).threshold_share(request, "exec")
              for i in range(2)]
    signature = CryptoProvider(agreement_id(0), keystore).threshold_combine(
        request, "exec", shares)
    charges.clear()
    verifier.verify_threshold_signature(request, signature, "exec")
    verify_cost = max(charges)

    print_section("Crypto cost model vs paper measurements (virtual ms)")
    print(format_table(["operation", "modelled ms", "paper ms"],
                       [["MAC", mac_cost, 0.2],
                        ["threshold signature", share_cost, 15.0],
                        ["threshold verification", verify_cost, 0.7]]))
    assert share_cost == pytest.approx(15.0)
    assert verify_cost == pytest.approx(0.7)
    assert 0.2 <= mac_cost <= 0.3  # MAC plus the digest of a 1 KB payload


def test_simulated_mac_wall_clock(benchmark):
    keystore, provider, _ = _provider_with_meter(execution_id(0))
    request = _request()
    benchmark(lambda: provider.mac_authenticator(request, [agreement_id(0)]))


def test_simulated_threshold_share_wall_clock(benchmark):
    keystore, provider, _ = _provider_with_meter(execution_id(0))
    request = _request()
    benchmark(lambda: provider.threshold_share(request, "exec"))


def test_simulated_threshold_combine_wall_clock(benchmark):
    keystore, provider, _ = _provider_with_meter(agreement_id(0))
    request = _request()
    shares = [CryptoProvider(execution_id(i), keystore).threshold_share(request, "exec")
              for i in range(2)]
    benchmark(lambda: provider.threshold_combine(request, "exec", shares))
