"""Skew benchmark: per-shard pipeline windows vs the global watermark.

Measures, on a 4-shard range-partitioned kvstore under the 80/20 hot-range
workload (80% of requests to the hottest quarter of the key space, i.e.
shard 0):

1. **skew** -- committed-requests/second over a fixed window with skew-aware
   concurrency (``PipelineConfig(per_shard_depth=..., ooo_shard_delivery=True,
   rtt_gather=True)``, the ``SystemConfig.sharded`` default) versus the
   single global contiguous watermark (``PipelineConfig()``, the
   pre-skew-aware behaviour).  Acceptance: >= 1.5x at 4 shards.  The
   per-shard committed breakdown shows *where* the win comes from: under
   the global watermark the hot shard's unanswered batches hold window
   slots that starve the cold shards.
2. **uniform** -- the hot-path uniform workload (identical configuration to
   ``bench_hotpath.py``'s crypto section) with per-shard pipelining on vs
   off: throughput must not regress, and certificate-verification crypto
   ops per committed request must stay within the committed
   ``hotpath_baseline.json`` ceiling.

Results go to ``BENCH_skew.json``; ``--quick`` shrinks the windows for CI
smoke runs, ``--check-regression`` gates against
``benchmarks/skew_baseline.json`` (plus the hot-path verify-op ceiling) and
``--update-baseline`` rewrites the baseline from the current measurement.
All virtual-time metrics are deterministic for a given ``--seed`` /
``--workload-seed``.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_skew.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore
from repro.config import (
    BatchingConfig,
    PipelineConfig,
    SystemConfig,
    TimerConfig,
)
from repro.sharding import ShardedSystem
from repro.workloads import (
    equal_range_boundaries,
    hot_range_operations,
    run_skew_window,
    shard_affine_clients,
)

from bench_common import collect_critical_path, current_observability, obs_enabled, set_observability
from bench_hotpath import HOTPATH_CRYPTO, run_hotpath_workload

NUM_SHARDS = 4
KEY_SPACE = 64
NUM_CLIENTS = 48
#: fraction of requests (and of clients) hammering the hot shard's range
HOT_FRACTION = 0.8
#: window depth, used both as the global pipeline_depth of the baseline and
#: as the per-shard depth of the skew-aware configuration: the comparison
#: holds the per-component window size fixed and only changes whether one
#: window is shared by all shards or each shard gets its own
WINDOW_DEPTH = 16

#: slow protocol timers so an overloaded hot shard exercises back-pressure,
#: not view changes or retransmission storms
SKEW_TIMERS = TimerConfig(client_retransmit_ms=5_000.0,
                          agreement_retransmit_ms=1_000.0,
                          execution_fetch_ms=50.0, view_change_ms=20_000.0,
                          batch_timeout_ms=5.0)

PER_SHARD_PIPELINE = PipelineConfig(per_shard_depth=WINDOW_DEPTH,
                                    ooo_shard_delivery=True, rtt_gather=True)
GLOBAL_PIPELINE = PipelineConfig()


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def build_skew_system(pipeline: PipelineConfig, seed: int) -> ShardedSystem:
    config = SystemConfig.sharded(
        NUM_SHARDS, strategy="range",
        range_boundaries=equal_range_boundaries(KEY_SPACE, NUM_SHARDS),
        num_clients=NUM_CLIENTS, pipeline_depth=WINDOW_DEPTH,
        checkpoint_interval=64, app_processing_ms=1.0,
        timers=SKEW_TIMERS, crypto=HOTPATH_CRYPTO,
        batching=BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=64),
        pipeline=pipeline, observability=current_observability())
    return ShardedSystem(config, KeyValueStore, seed=seed)


# ---------------------------------------------------------------------- #
# Section 1: committed/sec under 80/20 skew.
# ---------------------------------------------------------------------- #


def section_skew(quick: bool, seed: int, workload_seed: int,
                 trace_output: Path = None) -> Dict:
    num_requests = 8_000 if quick else 20_000
    duration_ms = 700.0 if quick else 2_000.0
    warmup_ms = 200.0 if quick else 300.0
    operations = hot_range_operations(
        num_requests, key_space=KEY_SPACE, hot_fraction=HOT_FRACTION,
        hot_key_fraction=1.0 / NUM_SHARDS, seed=workload_seed)
    affinity = shard_affine_clients(NUM_CLIENTS, NUM_SHARDS,
                                    hot_fraction=HOT_FRACTION)

    runs = {}
    systems = {}
    for label, pipeline in (("global watermark", GLOBAL_PIPELINE),
                            ("per-shard windows", PER_SHARD_PIPELINE)):
        system = build_skew_system(pipeline, seed=seed)
        systems[label] = system
        runs[label] = run_skew_window(
            system, operations=operations, client_shards=affinity,
            duration_ms=duration_ms, warmup_ms=warmup_ms, label=label)

    baseline = runs["global watermark"]
    pershard = runs["per-shard windows"]
    speedup = pershard.committed_per_sec / max(baseline.committed_per_sec, 1e-9)
    cold_base = sum(baseline.committed_by_shard[1:])
    cold_pershard = sum(pershard.committed_by_shard[1:])

    print_section(f"80/20 hot-range skew, {NUM_SHARDS} shards, "
                  f"{NUM_CLIENTS} shard-affine clients, window depth "
                  f"{WINDOW_DEPTH} (global vs per shard)")
    print(format_table(
        ["pipeline", "committed/s", "hot shard", "cold shards", "by shard"],
        [[label, result.committed_per_sec, result.committed_by_shard[0],
          sum(result.committed_by_shard[1:]),
          "/".join(str(count) for count in result.committed_by_shard)]
         for label, result in runs.items()]))
    print(f"skew speedup: {speedup:.2f}x   "
          f"cold-shard committed: {cold_base} -> {cold_pershard}")
    # The skew-aware configuration is this benchmark's primary measured
    # system: its trace feeds the exported JSONL and the critical path.
    critical_path = collect_critical_path(
        systems["per-shard windows"], trace_output,
        title="critical path, per-shard windows under 80/20 skew")
    return {
        "critical_path": critical_path,
        "num_requests": num_requests,
        "duration_ms": duration_ms,
        "hot_fraction": HOT_FRACTION,
        "window_depth": WINDOW_DEPTH,
        "committed_per_sec": {label: result.committed_per_sec
                              for label, result in runs.items()},
        "committed_by_shard": {label: result.committed_by_shard
                               for label, result in runs.items()},
        "clients_by_shard": baseline.clients_by_shard,
        "speedup": speedup,
        "speedup_pass": speedup >= 1.5,
    }


# ---------------------------------------------------------------------- #
# Section 2: uniform workload must not regress.
# ---------------------------------------------------------------------- #


def section_uniform(quick: bool, seed: int, workload_seed: int,
                    hotpath_baseline: Path) -> Dict:
    num_requests = 96 if quick else 240
    depth_64 = PipelineConfig(per_shard_depth=64, ooo_shard_delivery=True,
                              rtt_gather=True)
    _, with_global = run_hotpath_workload(True, num_requests, seed,
                                          workload_seed,
                                          pipeline=GLOBAL_PIPELINE)
    _, with_pershard = run_hotpath_workload(True, num_requests, seed,
                                            workload_seed, pipeline=depth_64)
    throughput_ratio = (with_pershard["throughput_rps"]
                        / max(with_global["throughput_rps"], 1e-9))

    verify_ceiling = None
    verify_pass = True
    if hotpath_baseline.exists():
        baseline = json.loads(hotpath_baseline.read_text())
        verify_ceiling = (baseline["verify_ops_per_committed_request"]
                          * (1.0 + baseline["tolerance"]))
        verify_pass = with_pershard["verify_ops_per_request"] <= verify_ceiling

    print_section("Uniform workload (hot-path configuration): "
                  "per-shard pipelining must not regress")
    print(format_table(
        ["pipeline", "virtual rps", "verify ops/req", "mean latency ms"],
        [["global watermark", with_global["throughput_rps"],
          with_global["verify_ops_per_request"], with_global["mean_latency_ms"]],
         ["per-shard windows", with_pershard["throughput_rps"],
          with_pershard["verify_ops_per_request"],
          with_pershard["mean_latency_ms"]]]))
    ceiling_text = ("n/a" if verify_ceiling is None else f"{verify_ceiling:.2f}")
    print(f"throughput ratio: {throughput_ratio:.3f}   verify ops/req "
          f"{with_pershard['verify_ops_per_request']:.2f} "
          f"(hot-path ceiling {ceiling_text})")
    return {
        "num_requests": num_requests,
        "global": {key: with_global[key]
                   for key in ("throughput_rps", "verify_ops_per_request",
                               "mean_latency_ms", "p95_latency_ms")},
        "per_shard": {key: with_pershard[key]
                      for key in ("throughput_rps", "verify_ops_per_request",
                                  "mean_latency_ms", "p95_latency_ms")},
        "throughput_ratio": throughput_ratio,
        "throughput_pass": throughput_ratio >= 0.95,
        "verify_ops_ceiling": verify_ceiling,
        "verify_ops_pass": verify_pass,
    }


# ---------------------------------------------------------------------- #
# Harness entry point.
# ---------------------------------------------------------------------- #


def run_all(quick: bool, seed: int, workload_seed: int,
            hotpath_baseline: Path, trace_output: Path = None) -> Dict:
    results = {
        "benchmark": "skew",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "skew": section_skew(quick, seed, workload_seed,
                             trace_output=trace_output),
        "uniform": section_uniform(quick, seed, workload_seed, hotpath_baseline),
    }
    critical_path = results["skew"].pop("critical_path", None)
    if critical_path is not None:
        results["critical_path"] = critical_path
    results["pass"] = all([
        results["skew"]["speedup_pass"],
        results["uniform"]["throughput_pass"],
        results["uniform"]["verify_ops_pass"],
    ])
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Gate the deterministic metrics against the committed baseline."""
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    tolerance = baseline["tolerance"]
    speedup = results["skew"]["speedup"]
    speedup_floor = max(1.5, baseline["skew_speedup"] * (1.0 - tolerance))
    ratio = results["uniform"]["throughput_ratio"]
    ratio_floor = baseline["uniform_throughput_ratio_floor"]
    print(f"regression check: skew speedup {speedup:.2f}x "
          f"(floor {speedup_floor:.2f}), uniform throughput ratio "
          f"{ratio:.3f} (floor {ratio_floor:.2f}), verify ops "
          f"{'ok' if results['uniform']['verify_ops_pass'] else 'REGRESSED'}")
    status = 0
    if speedup < speedup_floor:
        print("REGRESSION: skew speedup below baseline floor", file=sys.stderr)
        status = 1
    if ratio < ratio_floor:
        print("REGRESSION: uniform throughput regressed under per-shard "
              "pipelining", file=sys.stderr)
        status = 1
    if not results["uniform"]["verify_ops_pass"]:
        print("REGRESSION: verify ops/request above the hot-path ceiling",
              file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    parser.add_argument("--seed", type=int, default=11,
                        help="simulator seed (network jitter); explicit so CI "
                             "reruns are bit-identical")
    parser.add_argument("--workload-seed", type=int, default=5,
                        help="workload-generator RNG seed")
    parser.add_argument("--output", type=Path, default=Path("BENCH_skew.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_skew.jsonl"),
                        help="JSONL destination for the skew run's trace "
                             "(ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "skew_baseline.json")
    parser.add_argument("--hotpath-baseline", type=Path,
                        default=Path(__file__).parent / "hotpath_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the skew speedup or uniform metrics "
                             "regress below the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's measurement")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      hotpath_baseline=args.hotpath_baseline,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "skew_speedup": results["skew"]["speedup"],
            "uniform_throughput_ratio_floor": 0.95,
            "tolerance": 0.15,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["pass"]:
        failed = [name for name, ok in [
            ("skew speedup >= 1.5x", results["skew"]["speedup_pass"]),
            ("uniform throughput ratio >= 0.95",
             results["uniform"]["throughput_pass"]),
            ("verify ops/request within hot-path ceiling",
             results["uniform"]["verify_ops_pass"]),
        ] if not ok]
        print("FAILED criteria: " + "; ".join(failed), file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
