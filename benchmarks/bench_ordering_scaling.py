"""Ordering-plane scaling benchmark: K agreement logs over 4K execution shards.

Measures, on a range-partitioned kvstore whose execution side always has
four shards per agreement log:

1. **scaling** -- committed client requests/second over a fixed window at
   K = 1, 2 and 4 agreement logs (offered load and key space scale with
   K), single-group traffic only.  K = 1 is the plain sharded deployment
   (one 3f+1 cluster ordering every shard's feed); K > 1 partitions the
   ordering plane with :class:`~repro.multilog.MultiLogSystem`.
   Acceptance: K = 4 sustains >= 2x the K = 1 committed-requests/sec --
   if splitting the agreement plane four ways cannot even double
   throughput, the ordering plane was never the bottleneck being bought.
2. **cross-group** -- the K = 4 deployment under the same load with 10%
   multi-shard operations spanning log groups (snapshot reads and
   write-only transactions over an audit domain with shards in every
   group).  Every such marker is ordered by each touched log and released
   at one cross-log cut.  Acceptance: >= 0.8x the single-group K = 4
   throughput, zero cut fallovers or invalid cuts in the fault-free run,
   and a clean per-group snapshot audit: independent logs may order two
   concurrent markers differently (serialising them is the deferred MVBA
   cut-ordering work), so stamps within *one* log's shard group must be
   equal while cross-group stamps may legitimately differ.

Results go to ``BENCH_ordering.json``; ``--quick`` shrinks the windows for
CI smoke runs, ``--check-regression`` gates against
``benchmarks/ordering_baseline.json`` and ``--update-baseline`` rewrites
the baseline from the current measurement.  All virtual-time metrics are
deterministic for a given ``--seed`` / ``--workload-seed``.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_ordering_scaling.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore
from repro.config import (
    BatchingConfig,
    CrossShardConfig,
    SystemConfig,
    TimerConfig,
)
from repro.sharding import ShardedSystem
from repro.multilog import MultiLogSystem
from repro.workloads import (
    audit_cross_group_consistency,
    equal_range_boundaries,
    mixed_cross_group_operations,
    run_crossshard_window,
    seed_operations,
)

from bench_common import collect_critical_path, current_observability, obs_enabled, set_observability
from bench_hotpath import HOTPATH_CRYPTO

SHARDS_PER_LOG = 4
CLIENTS_PER_LOG = 16
KEYS_PER_LOG = 64
LOG_COUNTS = (1, 2, 4)
CROSS_LOGS = 4
#: fraction of operations spanning shards in the cross-group run
MULTI_FRACTION = 0.1
#: widest multi-shard operation (matches the single-log cross-shard bench)
MAX_SPAN = 4

#: slow protocol timers so back-pressure, not retransmission storms or view
#: changes, shapes the measurement; a tight batch window keeps per-request
#: ordering work (not bundling slack) the quantity being scaled
ORDERING_TIMERS = TimerConfig(client_retransmit_ms=5_000.0,
                              agreement_retransmit_ms=1_000.0,
                              execution_fetch_ms=50.0,
                              view_change_ms=20_000.0,
                              batch_timeout_ms=1.0)


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def _audit_domain(num_logs: int) -> List[int]:
    """Two audit shards in log 0 (so within-group tears are detectable)
    plus one in every other group (so the slice is genuinely cross-group)."""
    return [0, 1] + [log * SHARDS_PER_LOG for log in range(1, num_logs)]


def build_system(num_logs: int, seed: int, *, cross: bool = False):
    num_shards = SHARDS_PER_LOG * num_logs
    key_space = KEYS_PER_LOG * num_logs
    kwargs = dict(
        num_clients=CLIENTS_PER_LOG * num_logs, checkpoint_interval=64,
        app_processing_ms=0.2, timers=ORDERING_TIMERS, crypto=HOTPATH_CRYPTO,
        batching=BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=16),
        observability=current_observability())
    if cross:
        kwargs["cross_shard"] = CrossShardConfig(enabled=True)
    if num_logs == 1:
        config = SystemConfig.sharded(
            num_shards, "range", equal_range_boundaries(key_space, num_shards),
            **kwargs)
        return ShardedSystem(config, KeyValueStore, seed=seed)
    config = SystemConfig.multilog_sharded(
        num_logs=num_logs, num_shards=num_shards, strategy="range",
        range_boundaries=equal_range_boundaries(key_space, num_shards),
        **kwargs)
    return MultiLogSystem(config, KeyValueStore, seed=seed)


def run_window(system, num_logs: int, multi_fraction: float, label: str, *,
               quick: bool, workload_seed: int):
    num_requests = (2_000 if quick else 4_000) * num_logs
    duration_ms = 250.0 if quick else 500.0
    warmup_ms = 80.0 if quick else 150.0
    operations = mixed_cross_group_operations(
        num_requests, key_space=KEYS_PER_LOG * num_logs,
        num_shards=SHARDS_PER_LOG * num_logs, multi_fraction=multi_fraction,
        audit_shards=_audit_domain(num_logs), max_span=MAX_SPAN,
        seed=workload_seed)
    return run_crossshard_window(system, operations=operations,
                                 duration_ms=duration_ms,
                                 warmup_ms=warmup_ms, label=label)


def section_scaling(quick: bool, seed: int, workload_seed: int) -> Dict:
    windows = []
    for num_logs in LOG_COUNTS:
        system = build_system(num_logs, seed)
        windows.append(run_window(
            system, num_logs, 0.0,
            f"K={num_logs} ({SHARDS_PER_LOG * num_logs} shards)",
            quick=quick, workload_seed=workload_seed))
    by_logs = dict(zip(LOG_COUNTS, windows))
    ratio = (by_logs[LOG_COUNTS[-1]].completed_per_sec
             / max(by_logs[LOG_COUNTS[0]].completed_per_sec, 1e-9))

    print_section(f"Ordering-plane scaling: committed/sec at K = "
                  f"{'/'.join(str(k) for k in LOG_COUNTS)} agreement logs "
                  f"({SHARDS_PER_LOG} shards and {CLIENTS_PER_LOG} clients "
                  f"per log)")
    print(format_table(
        ["deployment", "completed/s", "completed", "executed by shard"],
        [[window.label, window.completed_per_sec, window.completed,
          "/".join(str(count) for count in window.executed_by_shard)]
         for window in windows]))
    print(f"scaling ratio K={LOG_COUNTS[-1]} / K={LOG_COUNTS[0]}: {ratio:.2f}")
    return {
        "log_counts": list(LOG_COUNTS),
        "shards_per_log": SHARDS_PER_LOG,
        "completed_per_sec": {str(k): by_logs[k].completed_per_sec
                              for k in LOG_COUNTS},
        "scaling_ratio": ratio,
        "scaling_pass": ratio >= 2.0,
    }


def section_cross_group(quick: bool, seed: int, workload_seed: int,
                        single_group_per_sec: float):
    system = build_system(CROSS_LOGS, seed, cross=True)
    key_space = KEYS_PER_LOG * CROSS_LOGS
    num_shards = SHARDS_PER_LOG * CROSS_LOGS
    for operation in seed_operations(key_space, num_shards):
        system.invoke(operation)
    mixed = run_window(system, CROSS_LOGS, MULTI_FRACTION,
                       f"{int(MULTI_FRACTION * 100)}% cross-group",
                       quick=quick, workload_seed=workload_seed)
    # Let the in-flight tail land so the audit covers completed markers.
    system.run(300.0)
    audit = audit_cross_group_consistency(
        system.clients, key_space=key_space, num_shards=num_shards,
        log_of_shard=lambda shard: system.log_registry.latest.log_of(shard))
    ratio = mixed.completed_per_sec / max(single_group_per_sec, 1e-9)
    queues = [system.log_queue(log, index)
              for log in range(CROSS_LOGS)
              for index in range(len(system.log_agreement_ids[log]))]
    markers = max(queue.cross_log_markers for queue in queues)
    cuts = max(queue.cuts_broadcast for queue in queues)
    fallovers = sum(queue.cut_fallovers for queue in queues)
    invalid = sum(queue.invalid_cuts for queue in queues)

    print_section(f"Cross-group mix at K={CROSS_LOGS}: every marker ordered "
                  f"by each touched log, released at one cross-log cut")
    print(format_table(
        ["workload", "completed/s", "multi ops", "vs single-group"],
        [[mixed.label, mixed.completed_per_sec, mixed.multi_completed,
          f"{ratio:.3f}"]]))
    print(f"cross-log markers (per queue max): {markers}   "
          f"cuts broadcast (max): {cuts}   fallovers: {fallovers}   "
          f"invalid cuts: {invalid}")
    print(format_table(
        ["audited reads", "torn groups", "committed txns"],
        [[audit.audited_reads, audit.torn_reads, audit.committed_txns]]))
    verdict = "CONSISTENT" if audit.consistent else "TORN GROUP DETECTED"
    print(f"per-group snapshot audit: {verdict}")
    return system, {
        "completed_per_sec": mixed.completed_per_sec,
        "multi_completed": mixed.multi_completed,
        "multi_fraction": MULTI_FRACTION,
        "cross_ratio": ratio,
        "cross_log_markers": markers,
        "cuts_broadcast": cuts,
        "cut_fallovers": fallovers,
        "invalid_cuts": invalid,
        "audited_reads": audit.audited_reads,
        "torn_groups": audit.torn_reads,
        "committed_txns": audit.committed_txns,
        "cross_pass": ratio >= 0.8 and mixed.multi_completed > 0,
        "coordination_pass": fallovers == 0 and invalid == 0,
        "audit_pass": (audit.consistent and audit.audited_reads > 0
                       and audit.committed_txns > 0),
    }


def run_all(quick: bool, seed: int, workload_seed: int,
            trace_output: Path = None) -> Dict:
    scaling = section_scaling(quick, seed, workload_seed)
    cross_system, cross = section_cross_group(
        quick, seed, workload_seed,
        scaling["completed_per_sec"][str(LOG_COUNTS[-1])])
    results = {
        "benchmark": "ordering_scaling",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "scaling": scaling,
        "cross_group": cross,
    }
    # The cross-group run is the system exercising the coordinate stage --
    # its trace is the one worth shipping.
    critical_path = collect_critical_path(
        cross_system, trace_output,
        title="critical path, cross-group mix at K=4")
    if critical_path is not None:
        results["critical_path"] = critical_path
    results["pass"] = all([
        scaling["scaling_pass"],
        cross["cross_pass"],
        cross["coordination_pass"],
        cross["audit_pass"],
    ])
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Gate the deterministic metrics against the committed baseline."""
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    tolerance = baseline["tolerance"]
    scaling = results["scaling"]["scaling_ratio"]
    cross = results["cross_group"]["cross_ratio"]
    scaling_floor = max(2.0, baseline["scaling_ratio"] * (1.0 - tolerance))
    cross_floor = max(0.8, baseline["cross_ratio"] * (1.0 - tolerance))
    print(f"regression check: scaling ratio {scaling:.2f} (floor "
          f"{scaling_floor:.2f}), cross-group ratio {cross:.3f} (floor "
          f"{cross_floor:.3f}), audit "
          f"{'ok' if results['cross_group']['audit_pass'] else 'FAILED'}")
    status = 0
    if scaling < scaling_floor:
        print("REGRESSION: ordering-plane scaling ratio below the floor",
              file=sys.stderr)
        status = 1
    if cross < cross_floor:
        print("REGRESSION: cross-group throughput ratio below the floor",
              file=sys.stderr)
        status = 1
    if not results["cross_group"]["audit_pass"]:
        print("REGRESSION: per-group snapshot audit failed", file=sys.stderr)
        status = 1
    if not results["cross_group"]["coordination_pass"]:
        print("REGRESSION: cut fallovers or invalid cuts in a fault-free run",
              file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    parser.add_argument("--seed", type=int, default=13,
                        help="simulator seed (network jitter); explicit so CI "
                             "reruns are bit-identical")
    parser.add_argument("--workload-seed", type=int, default=7,
                        help="workload-generator RNG seed")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_ordering.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_ordering.jsonl"),
                        help="JSONL destination for the cross-group run's "
                             "trace (ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "ordering_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the scaling or cross-group ratios or "
                             "the per-group audit regress below the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's measurement")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "scaling_ratio": results["scaling"]["scaling_ratio"],
            "cross_ratio": results["cross_group"]["cross_ratio"],
            "tolerance": 0.15,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["pass"]:
        failed = [name for name, ok in [
            (f"K={LOG_COUNTS[-1]} >= 2x K=1 committed/sec",
             results["scaling"]["scaling_pass"]),
            ("cross-group >= 0.8x single-group",
             results["cross_group"]["cross_pass"]),
            ("no cut fallovers or invalid cuts",
             results["cross_group"]["coordination_pass"]),
            ("per-group snapshot audit",
             results["cross_group"]["audit_pass"]),
        ] if not ok]
        print("FAILED criteria: " + "; ".join(failed), file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
