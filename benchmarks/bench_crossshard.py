"""Cross-shard benchmark: consistent-cut operations must not collapse throughput.

Measures, on a 4-shard range-partitioned kvstore:

1. **throughput** -- committed client requests/second over a fixed window
   for the mixed workload (10% multi-shard operations: snapshot reads over
   2..4 shards and write transactions with read-set validation) versus the
   *single-shard-only* run of the identical configuration and seed.
   Acceptance: the mixed run keeps >= 0.8x the single-shard-only
   committed-requests/sec -- ordering every multi-shard operation as its
   own consistent-cut marker costs batching efficiency and (for
   transactions) one vote round-trip, but must not serialise the system.
2. **audit** -- every completed multi-shard reply is audited for snapshot
   consistency: committed transactions stamp all audit keys atomically at
   their cut, so a multi-shard read observing two different stamps is a
   torn snapshot (must never happen), and a conflict transaction (wrong
   expected read value) must abort on every replica.

Results go to ``BENCH_crossshard.json``; ``--quick`` shrinks the windows
for CI smoke runs, ``--check-regression`` gates against
``benchmarks/crossshard_baseline.json`` and ``--update-baseline`` rewrites
the baseline from the current measurement.  All virtual-time metrics are
deterministic for a given ``--seed`` / ``--workload-seed``.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_crossshard.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore
from repro.config import (
    BatchingConfig,
    CrossShardConfig,
    SystemConfig,
    TimerConfig,
)
from repro.sharding import ShardedSystem
from repro.workloads import (
    audit_snapshot_consistency,
    equal_range_boundaries,
    mixed_cross_shard_operations,
    run_crossshard_window,
    seed_operations,
)

from bench_common import collect_critical_path, current_observability, obs_enabled, set_observability
from bench_hotpath import HOTPATH_CRYPTO

NUM_SHARDS = 4
KEY_SPACE = 64
NUM_CLIENTS = 32
#: fraction of operations spanning several shards in the mixed run
MULTI_FRACTION = 0.1

#: slow protocol timers so back-pressure, not retransmission storms or view
#: changes, shapes the measurement (mirrors the skew benchmark)
CROSSSHARD_TIMERS = TimerConfig(client_retransmit_ms=5_000.0,
                                agreement_retransmit_ms=1_000.0,
                                execution_fetch_ms=50.0,
                                view_change_ms=20_000.0,
                                batch_timeout_ms=5.0)


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def build_system(seed: int) -> ShardedSystem:
    config = SystemConfig.sharded(
        NUM_SHARDS, strategy="range",
        range_boundaries=equal_range_boundaries(KEY_SPACE, NUM_SHARDS),
        num_clients=NUM_CLIENTS, checkpoint_interval=64,
        app_processing_ms=1.0, timers=CROSSSHARD_TIMERS,
        crypto=HOTPATH_CRYPTO,
        batching=BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=64),
        cross_shard=CrossShardConfig(enabled=True),
        observability=current_observability())
    return ShardedSystem(config, KeyValueStore, seed=seed)


def run_window(multi_fraction: float, label: str, *, quick: bool, seed: int,
               workload_seed: int):
    num_requests = 6_000 if quick else 16_000
    duration_ms = 700.0 if quick else 2_000.0
    warmup_ms = 200.0 if quick else 300.0
    system = build_system(seed)
    # Install the constant and audit keys before the window so every
    # read-validating transaction sees a well-defined expected value.
    for operation in seed_operations(KEY_SPACE, NUM_SHARDS):
        system.invoke(operation)
    operations = mixed_cross_shard_operations(
        num_requests, key_space=KEY_SPACE, num_shards=NUM_SHARDS,
        multi_fraction=multi_fraction, seed=workload_seed)
    result = run_crossshard_window(system, operations=operations,
                                   duration_ms=duration_ms,
                                   warmup_ms=warmup_ms, label=label)
    return system, result


def section_throughput(quick: bool, seed: int, workload_seed: int) -> Dict:
    single_system, single = run_window(0.0, "single-shard only", quick=quick,
                                       seed=seed, workload_seed=workload_seed)
    mixed_system, mixed = run_window(MULTI_FRACTION,
                                     f"{int(MULTI_FRACTION * 100)}% multi-shard",
                                     quick=quick, seed=seed,
                                     workload_seed=workload_seed)
    ratio = mixed.completed_per_sec / max(single.completed_per_sec, 1e-9)
    markers = sum(queue.cross_shard_markers
                  for queue in mixed_system.message_queues)

    print_section(f"Mixed workload, {NUM_SHARDS} shards, {NUM_CLIENTS} "
                  f"clients: committed/sec with {int(MULTI_FRACTION * 100)}% "
                  f"multi-shard operations vs single-shard only")
    print(format_table(
        ["workload", "completed/s", "multi ops", "executed by shard"],
        [[result.label, result.completed_per_sec, result.multi_completed,
          "/".join(str(count) for count in result.executed_by_shard)]
         for result in (single, mixed)]))
    print(f"throughput ratio: {ratio:.3f}   cross-shard markers released "
          f"(per queue max): {markers // max(len(mixed_system.message_queues), 1)}")
    return mixed_system, {
        "duration_ms": single.duration_ms,
        "multi_fraction": MULTI_FRACTION,
        "completed_per_sec": {result.label: result.completed_per_sec
                              for result in (single, mixed)},
        "multi_completed": mixed.multi_completed,
        "executed_by_shard": {result.label: result.executed_by_shard
                              for result in (single, mixed)},
        "throughput_ratio": ratio,
        "throughput_pass": ratio >= 0.8,
        "multi_pass": mixed.multi_completed > 0,
    }


def section_audit(mixed_system) -> Dict:
    # Drain the remaining submitted work so the audit covers the full
    # deterministic stream, then inspect every completed multi-shard reply.
    mixed_system.run(4_000.0)
    audit = audit_snapshot_consistency(mixed_system.clients)
    invalid = sum(client.invalid_cross_shard_replies
                  for client in mixed_system.clients)
    equivocations = sum(client.collator_equivocations
                        for client in mixed_system.clients)

    print_section("Snapshot-consistency audit over completed multi-shard replies")
    print(format_table(
        ["audited reads", "torn reads", "committed txns", "aborted txns",
         "conflict commits", "invalid replies"],
        [[audit.audited_reads, audit.torn_reads, audit.committed_txns,
          audit.aborted_txns, audit.conflict_commits, invalid]]))
    verdict = "CONSISTENT" if audit.consistent else "TORN SNAPSHOT DETECTED"
    print(f"audit verdict: {verdict}")
    return {
        "audited_reads": audit.audited_reads,
        "torn_reads": audit.torn_reads,
        "committed_txns": audit.committed_txns,
        "aborted_txns": audit.aborted_txns,
        "conflict_commits": audit.conflict_commits,
        "invalid_replies": invalid,
        "collator_equivocations": equivocations,
        "audit_pass": (audit.consistent and audit.audited_reads > 0
                       and audit.committed_txns > 0
                       and audit.aborted_txns > 0),
    }


def run_all(quick: bool, seed: int, workload_seed: int,
            trace_output: Path = None) -> Dict:
    mixed_system, throughput = section_throughput(quick, seed, workload_seed)
    results = {
        "benchmark": "crossshard",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "throughput": throughput,
        "audit": section_audit(mixed_system),
    }
    # Collect after the audit's drain so the trace covers the full stream,
    # including every cross-shard vote round and collation (the mixed run is
    # this benchmark's primary measured system).
    critical_path = collect_critical_path(
        mixed_system, trace_output,
        title="critical path, mixed workload with multi-shard operations")
    if critical_path is not None:
        results["critical_path"] = critical_path
    results["pass"] = all([
        results["throughput"]["throughput_pass"],
        results["throughput"]["multi_pass"],
        results["audit"]["audit_pass"],
    ])
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Gate the deterministic metrics against the committed baseline."""
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    tolerance = baseline["tolerance"]
    ratio = results["throughput"]["throughput_ratio"]
    floor = max(0.8, baseline["throughput_ratio"] * (1.0 - tolerance))
    print(f"regression check: throughput ratio {ratio:.3f} (floor {floor:.3f}), "
          f"audit {'ok' if results['audit']['audit_pass'] else 'FAILED'}")
    status = 0
    if ratio < floor:
        print("REGRESSION: mixed-workload throughput ratio below the floor",
              file=sys.stderr)
        status = 1
    if not results["audit"]["audit_pass"]:
        print("REGRESSION: snapshot-consistency audit failed", file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    parser.add_argument("--seed", type=int, default=13,
                        help="simulator seed (network jitter); explicit so CI "
                             "reruns are bit-identical")
    parser.add_argument("--workload-seed", type=int, default=7,
                        help="workload-generator RNG seed")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_crossshard.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_crossshard.jsonl"),
                        help="JSONL destination for the mixed run's trace "
                             "(ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "crossshard_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the throughput ratio or the snapshot "
                             "audit regress below the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's measurement")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "throughput_ratio": results["throughput"]["throughput_ratio"],
            "tolerance": 0.15,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["pass"]:
        failed = [name for name, ok in [
            ("throughput ratio >= 0.8", results["throughput"]["throughput_pass"]),
            ("multi-shard operations completed",
             results["throughput"]["multi_pass"]),
            ("snapshot-consistency audit", results["audit"]["audit_pass"]),
        ] if not ok]
        print("FAILED criteria: " + "; ".join(failed), file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
