"""Pytest hooks for the benchmark harness.

Benchmark helpers live in :mod:`bench_common` (a regular module, importable
by the benchmark files without colliding with ``tests/conftest.py``).  This
conftest intentionally defines no helpers of its own: a name defined here
would shadow the identically-named ``conftest`` module of the test suite
whenever both directories end up on ``sys.path``.
"""
