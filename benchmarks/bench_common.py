"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure or table from the paper's
evaluation section.  Benchmarks measure *virtual* time inside the simulator
(the quantity the paper reports) and print the corresponding rows/series;
pytest-benchmark additionally records the wall-clock cost of running each
simulation so regressions in the simulator itself are visible.

Scale note: the simulated experiments use fewer requests / iterations than
the paper's physical runs so the whole harness completes in minutes; the
*comparisons between configurations* are what reproduce the figures.

This module is deliberately *not* named ``conftest.py``: test modules in
``tests/`` import helpers from their own conftest by module name, and a
second ``conftest`` module on ``sys.path`` would shadow it.
"""

from __future__ import annotations

from repro.config import CryptoCosts, SystemConfig, TimerConfig

#: Timers tuned so saturated-load benchmarks retransmit sparingly.
BENCH_TIMERS = TimerConfig(client_retransmit_ms=400.0, agreement_retransmit_ms=200.0,
                           execution_fetch_ms=50.0, view_change_ms=1_000.0,
                           batch_timeout_ms=1.0)


def bench_config(**overrides) -> SystemConfig:
    defaults = dict(num_clients=2, pipeline_depth=64, checkpoint_interval=128,
                    timers=BENCH_TIMERS)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
