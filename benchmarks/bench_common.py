"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure or table from the paper's
evaluation section.  Benchmarks measure *virtual* time inside the simulator
(the quantity the paper reports) and print the corresponding rows/series;
pytest-benchmark additionally records the wall-clock cost of running each
simulation so regressions in the simulator itself are visible.

Scale note: the simulated experiments use fewer requests / iterations than
the paper's physical runs so the whole harness completes in minutes; the
*comparisons between configurations* are what reproduce the figures.

This module is deliberately *not* named ``conftest.py``: test modules in
``tests/`` import helpers from their own conftest by module name, and a
second ``conftest`` module on ``sys.path`` would shadow it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from repro.analysis.critical_path import format_critical_path_table
from repro.config import CryptoCosts, ObservabilityConfig, SystemConfig, TimerConfig

#: Timers tuned so saturated-load benchmarks retransmit sparingly.
BENCH_TIMERS = TimerConfig(client_retransmit_ms=400.0, agreement_retransmit_ms=200.0,
                           execution_fetch_ms=50.0, view_change_ms=1_000.0,
                           batch_timeout_ms=1.0)

# ---------------------------------------------------------------------- #
# Observability toggle shared by every gated benchmark.
#
# The gate benches run with metrics + tracing on by default (observability
# is strictly passive, so the virtual-time results they gate CI on are
# bit-identical either way -- check_overhead.py enforces exactly that by
# re-running a leg with --no-obs and deep-comparing the JSON).  The toggle
# lives here because bench_skew imports bench_hotpath's workload runner:
# one process-wide switch keeps every builder consistent.
# ---------------------------------------------------------------------- #

_OBS_ON = ObservabilityConfig(metrics=True, tracing=True)
_OBS_OFF = ObservabilityConfig()
_obs_state = {"enabled": True}


def set_observability(enabled: bool) -> None:
    """Process-wide observability switch (driven by each bench's --no-obs)."""
    _obs_state["enabled"] = bool(enabled)


def current_observability() -> ObservabilityConfig:
    """The ObservabilityConfig every benchmark system should be built with."""
    return _OBS_ON if _obs_state["enabled"] else _OBS_OFF


def obs_enabled() -> bool:
    return _obs_state["enabled"]


def collect_critical_path(system, trace_output: Optional[Path] = None,
                          title: Optional[str] = None) -> Optional[Dict]:
    """Fold a measured system's trace into the per-stage breakdown.

    Returns None (and writes nothing) when observability is off, so callers
    can simply omit the ``critical_path`` key from their results JSON.
    Otherwise prints the stage table, optionally exports the raw trace as
    JSONL, and returns the breakdown dict for embedding in ``BENCH_*.json``.
    """
    if not system.config.observability.tracing:
        return None
    breakdown = system.critical_path()
    print()
    print(format_critical_path_table(breakdown, title=title))
    if trace_output is not None:
        count = system.export_trace_jsonl(str(trace_output))
        dropped = system.obs.tracer.dropped
        suffix = f" ({dropped} dropped at capacity)" if dropped else ""
        print(f"wrote {count} trace events to {trace_output}{suffix}")
    return breakdown


def bench_config(**overrides) -> SystemConfig:
    defaults = dict(num_clients=2, pipeline_depth=64, checkpoint_interval=128,
                    timers=BENCH_TIMERS, observability=current_observability())
    defaults.update(overrides)
    return SystemConfig(**defaults)


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
