"""Wall-clock committed/s on a localhost 3f+1 cluster (the real runtime).

Every other benchmark in this directory measures *virtual* time inside the
deterministic simulator.  This one runs the identical protocol stack on the
asyncio backend (``RuntimeConfig(backend="asyncio")``): replicas are asyncio
tasks exchanging pickled wire messages over real 127.0.0.1 TCP sockets,
timers are wall-clock, and every virtual millisecond the cost model charges
is burned as real CPU (``charge_scale``), so the configured crypto weights
shape wall-clock throughput the way they shape simulated throughput.

Two legs, identical workload:

* **inline** -- every certificate verification burns inside the single
  event-loop thread (the whole cluster shares one core, as any
  single-process deployment must);
* **pool** -- inbound certificate verification is offloaded to a
  ``ProcessPoolExecutor`` sized to the host (``CryptoPoolConfig``), warming
  each node's ``VerifiedCertificateCache`` before dispatch, so verification
  parallelises across cores.

The headline number is the pool/inline committed/s **speedup**.  The gate
requires it to clear the baseline floor (1.5x) *on hosts with at least 4
cores* -- on smaller hosts there is nothing to parallelise onto and the
artifact records the speedup as ungated, with the core count, so trajectory
consumers can tell the difference.  A DAMOV-style breakdown of where wall
time goes (serialisation, crypto burn, socket I/O, per-stage critical path)
is embedded alongside.

Run via the single gate entrypoint::

    PYTHONPATH=src python benchmarks/run_gate.py --quick realtime
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from bench_common import (BENCH_TIMERS, collect_critical_path,
                          current_observability, obs_enabled, print_section,
                          set_observability)
from repro.apps import kvstore
from repro.apps.kvstore import KeyValueStore
from repro.config import (CryptoCosts, CryptoPoolConfig, RuntimeConfig,
                          SystemConfig)
from repro.core.system import SeparatedSystem

#: real-time cost emulation: the stdlib HMACs standing in for MACs and
#: signatures are microseconds, so the configured virtual costs are burned
#: as real CPU to model the asymmetric-crypto weights the paper assumes
CHARGE_SCALE = 1.0

#: crypto weights for the burn: MAC-dominated (the paper's fast scheme),
#: heavy enough that verification is the wall-clock bottleneck
REALTIME_CRYPTO = CryptoCosts(mac_ms=0.4, signature_sign_ms=5.0,
                              signature_verify_ms=0.7)


def build_system(pool: bool, seed: int, num_clients: int) -> SeparatedSystem:
    config = SystemConfig(
        f=1, g=1, num_clients=num_clients,
        crypto=REALTIME_CRYPTO, timers=BENCH_TIMERS,
        observability=current_observability(),
        runtime=RuntimeConfig(
            backend="asyncio", charge_scale=CHARGE_SCALE,
            crypto_pool=CryptoPoolConfig(enabled=pool, workers=None)),
    )
    return SeparatedSystem(config, KeyValueStore, seed=seed)


def run_leg(pool: bool, seed: int, workload_seed: int, num_clients: int,
            requests_per_client: int, timeout_s: float,
            trace_output: Optional[Path] = None) -> Dict:
    """One closed-loop leg: every client queues its requests up front and
    the loop runs until all of them commit; committed/s is wall-clock."""
    label = "pool" if pool else "inline"
    system = build_system(pool, seed=seed, num_clients=num_clients)
    target = num_clients * requests_per_client
    try:
        started = time.perf_counter()
        for i in range(requests_per_client):
            for c in range(num_clients):
                key = f"key-{(i * num_clients + c + workload_seed) % 16}"
                system.submit(kvstore.put(key, f"v-{label}-{i}"),
                              client_index=c)
        system.run_until(lambda: system.total_completed() >= target,
                         timeout_ms=timeout_s * 1000.0,
                         description=f"{target} committed requests ({label})")
        wall_s = time.perf_counter() - started
        committed = system.total_completed()
        leg = {
            "label": label,
            "committed": committed,
            "target": target,
            "wall_s": round(wall_s, 3),
            "committed_per_s": round(committed / wall_s, 2),
            "burned_busy_ms": round(sum(
                p.stats.busy_ms for p in system.server_processes()), 1),
            "transport": system.network.transport.snapshot(),
            "crypto_pool": system.runtime.pool.stats.snapshot(),
            "workers": system.runtime.pool.workers if pool else 0,
        }
        critical_path = collect_critical_path(
            system, trace_output=trace_output,
            title=f"realtime critical path ({label}, wall-clock ms)")
        if critical_path is not None:
            leg["critical_path"] = critical_path
        print(f"  {label:6s}: {leg['committed_per_s']:8.1f} committed/s "
              f"({committed}/{target} in {wall_s:.2f}s wall, "
              f"burned {leg['burned_busy_ms']:.0f}ms, "
              f"{leg['transport']['frames_delivered']} frames)")
        return leg
    finally:
        system.close()


def run_all(quick: bool, seed: int, workload_seed: int,
            trace_output: Optional[Path]) -> Dict:
    cores = os.cpu_count() or 1
    num_clients = 4 if quick else 8
    requests_per_client = 15 if quick else 40
    timeout_s = 120.0 if quick else 420.0

    print_section(f"Real runtime: wall-clock committed/s on localhost "
                  f"({cores} cores)")
    inline = run_leg(False, seed, workload_seed, num_clients,
                     requests_per_client, timeout_s)
    pooled = run_leg(True, seed, workload_seed, num_clients,
                     requests_per_client, timeout_s,
                     trace_output=trace_output)
    critical_path = pooled.pop("critical_path", None)
    inline.pop("critical_path", None)

    speedup = pooled["committed_per_s"] / max(inline["committed_per_s"], 1e-9)
    speedup_gated = cores >= 4
    gate_note = ("gated" if speedup_gated
                 else "informational: nothing to parallelise onto below 4 cores")
    print(f"  crypto-pool speedup: {speedup:.2f}x on {cores} cores "
          f"({gate_note})")

    results: Dict = {
        "benchmark": "realtime",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "cores": cores,
        "charge_scale": CHARGE_SCALE,
        "realtime": {
            "inline": inline,
            "pool": pooled,
            "speedup": round(speedup, 3),
            "speedup_gated": speedup_gated,
        },
    }
    if critical_path is not None:
        results["critical_path"] = critical_path
    liveness = (inline["committed"] >= inline["target"]
                and pooled["committed"] >= pooled["target"])
    results["pass"] = liveness
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Gate wall-clock results against the committed baseline.

    Wall-clock numbers on shared CI hosts are noisy, so the absolute
    committed/s floor is a hang-catcher, not a performance bound; the real
    gate is the relative pool/inline speedup, applied only where the host
    has cores to parallelise onto.
    """
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    realtime = results["realtime"]
    status = 0
    floor = baseline["min_committed_per_s"]
    for leg in ("inline", "pool"):
        rate = realtime[leg]["committed_per_s"]
        if rate < floor:
            print(f"REGRESSION: {leg} committed/s {rate:.2f} below "
                  f"hang-catcher floor {floor}", file=sys.stderr)
            status = 1
    if results["cores"] >= baseline["speedup_min_cores"]:
        if realtime["speedup"] < baseline["min_speedup"]:
            print(f"REGRESSION: crypto-pool speedup {realtime['speedup']:.2f}x "
                  f"below {baseline['min_speedup']}x on {results['cores']} "
                  f"cores", file=sys.stderr)
            status = 1
    else:
        print(f"regression check: speedup gate skipped "
              f"({results['cores']} cores < {baseline['speedup_min_cores']})")
    print(f"regression check: speedup {realtime['speedup']:.2f}x, "
          f"inline {realtime['inline']['committed_per_s']:.1f}/s, "
          f"pool {realtime['pool']['committed_per_s']:.1f}/s — "
          f"{'ok' if status == 0 else 'REGRESSED'}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--seed", type=int, default=11,
                        help="scheduler RNG seed (protocol-level draws)")
    parser.add_argument("--workload-seed", type=int, default=5,
                        help="key-placement offset for the workload")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_realtime.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_realtime.jsonl"),
                        help="JSONL destination for the pool leg's trace "
                             "(ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "realtime_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail on liveness loss or (on >=4-core hosts) "
                             "a crypto-pool speedup below the baseline floor")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline gate thresholds")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "min_speedup": 1.5,
            "speedup_min_cores": 4,
            "min_committed_per_s": 1.0,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["pass"]:
        print("FAILED criteria: closed-loop workload did not fully commit",
              file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
