"""Figure 5: response time vs offered load as request bundling varies.

The paper drives the privacy-firewall system (1 KB requests and replies, null
server) with an open-loop client population and sweeps the offered load for
bundle sizes 1, 2, 3, and 5.  Shape to reproduce:

* without bundling the system saturates at ~60 requests/second because every
  reply costs each execution replica a 15 ms threshold-signature operation;
* doubling the bundle size roughly doubles the saturation throughput;
* bundles of 3+ push the knee out to the point where other costs dominate;
* below saturation the response time stays flat, and it blows up past the knee.
"""

from __future__ import annotations

import pytest

from bench_common import bench_config, print_section
from repro.analysis import format_table
from repro.apps.null_service import NullService
from repro.config import AuthenticationScheme
from repro.core import SeparatedSystem
from repro.workloads import run_open_loop

BUNDLE_SIZES = [1, 2, 3, 5]
LOADS_RPS = [20, 60, 120, 160]
DURATION_MS = 1_500.0
NUM_CLIENTS = 16


def build_system(bundle_size: int, seed: int = 105) -> SeparatedSystem:
    # The paper's prototype uses *static* bundles: the primary waits to fill a
    # bundle before running agreement (which is why larger bundles raise
    # latency at low load).  A long partial-bundle flush timeout models that;
    # with bundle_size == 1 batches are issued immediately as usual.
    import dataclasses

    timers = bench_config().timers
    if bundle_size > 1:
        timers = dataclasses.replace(timers, batch_timeout_ms=100.0)
    config = bench_config(bundle_size=bundle_size, num_clients=NUM_CLIENTS,
                          authentication=AuthenticationScheme.THRESHOLD,
                          use_privacy_firewall=True, timers=timers)
    return SeparatedSystem(config, NullService, seed=seed)


def sweep(bundle_size: int):
    rows = []
    for load in LOADS_RPS:
        system = build_system(bundle_size)
        result = run_open_loop(system, offered_load_rps=load, duration_ms=DURATION_MS,
                               request_bytes=1024, reply_bytes=1024, drain_ms=2_000.0)
        rows.append(result)
    return rows


@pytest.mark.parametrize("bundle_size", BUNDLE_SIZES, ids=[f"bundle={b}" for b in BUNDLE_SIZES])
def test_fig5_load_sweep(benchmark, bundle_size):
    """One Figure 5 series: response time vs offered load for a bundle size."""
    results = benchmark.pedantic(sweep, args=(bundle_size,), iterations=1, rounds=1)
    print_section(f"Figure 5 series: bundle size {bundle_size} "
                  "(offered load vs achieved throughput and response time)")
    print(format_table(
        ["offered rps", "achieved rps", "mean response ms", "p95 ms", "max util"],
        [[r.offered_load_rps, r.achieved_throughput_rps, r.mean_response_ms,
          r.p95_response_ms, r.max_server_utilization] for r in results]))
    benchmark.extra_info["achieved_at_max_load"] = results[-1].achieved_throughput_rps
    assert all(r.completed > 0 for r in results)


def test_fig5_bundling_raises_saturation_throughput(benchmark):
    """The headline claim: bundle size 1 saturates near ~60 rps; larger
    bundles raise the saturation point roughly proportionally."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    peak = {}
    for bundle_size in (1, 2, 5):
        results = sweep(bundle_size)
        peak[bundle_size] = max(r.achieved_throughput_rps for r in results)
    print_section("Figure 5 summary: peak achieved throughput by bundle size")
    print(format_table(["bundle size", "peak achieved rps"],
                       [[b, peak[b]] for b in sorted(peak)]))
    # Bundle=1 saturates in the right neighbourhood (paper: 62 rps; the
    # threshold signature is 15 ms, so the ceiling is ~66 rps per replica).
    assert 40 <= peak[1] <= 90
    # Bundling raises throughput substantially.
    assert peak[2] > 1.5 * peak[1]
    assert peak[5] > 2.0 * peak[1]


def test_fig5_response_time_flat_below_saturation(benchmark):
    """Below the knee, response time is close to the unloaded latency."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    system = build_system(1)
    light = run_open_loop(system, offered_load_rps=20, duration_ms=DURATION_MS,
                          request_bytes=1024, reply_bytes=1024)
    system = build_system(1)
    heavy = run_open_loop(system, offered_load_rps=160, duration_ms=DURATION_MS,
                          request_bytes=1024, reply_bytes=1024, drain_ms=4_000.0)
    print_section("Figure 5: response time below vs past saturation (bundle=1)")
    print(format_table(["offered rps", "mean response ms"],
                       [[20, light.mean_response_ms], [160, heavy.mean_response_ms]]))
    assert light.mean_response_ms < 80.0
    assert heavy.mean_response_ms > 2 * light.mean_response_ms
