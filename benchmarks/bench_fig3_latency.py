"""Figure 3: null-server latency for three request/reply sizes.

The paper reports the average latency of the null server for request/reply
sizes 40/40, 40/4096, and 4096/40 bytes under five configurations:

* BASE/Same/MAC            -- the coupled baseline,
* Separate/Same/MAC        -- separated architecture, shared machines,
* Separate/Different/MAC   -- separated architecture, distinct machines,
* Separate/Different/Thresh-- threshold-signature reply certificates,
* Priv/Different/Thresh    -- full privacy firewall.

Paper shape to reproduce: MAC-based configurations stay within a few
milliseconds of the baseline; switching reply certificates to threshold
signatures raises latency to ~15-20 ms (one threshold signature per reply);
the privacy firewall adds a few more milliseconds on top.
"""

from __future__ import annotations

import pytest

from bench_common import bench_config, print_section
from repro.analysis import format_table
from repro.apps.null_service import NullService
from repro.config import AuthenticationScheme, Deployment
from repro.core import CoupledSystem, SeparatedSystem
from repro.workloads import run_latency_benchmark

SIZES = [(40, 40), (40, 4096), (4096, 40)]
REQUESTS = 30
WARMUP = 5


def configurations():
    return [
        ("BASE/Same/MAC", "coupled",
         bench_config(deployment=Deployment.SAME)),
        ("Separate/Same/MAC", "separated",
         bench_config(deployment=Deployment.SAME)),
        ("Separate/Different/MAC", "separated",
         bench_config(deployment=Deployment.DIFFERENT)),
        ("Separate/Different/Thresh", "separated",
         bench_config(deployment=Deployment.DIFFERENT,
                      authentication=AuthenticationScheme.THRESHOLD)),
        ("Priv/Different/Thresh", "separated",
         bench_config(deployment=Deployment.DIFFERENT,
                      authentication=AuthenticationScheme.THRESHOLD,
                      use_privacy_firewall=True)),
    ]


def build_system(kind, config, seed=101):
    if kind == "coupled":
        return CoupledSystem(config, NullService, seed=seed)
    return SeparatedSystem(config, NullService, seed=seed)


def run_cell(label, kind, config, request_bytes, reply_bytes):
    system = build_system(kind, config)
    return run_latency_benchmark(system, label=label, request_bytes=request_bytes,
                                 reply_bytes=reply_bytes, requests=REQUESTS,
                                 warmup=WARMUP)


@pytest.mark.parametrize("request_bytes,reply_bytes", SIZES,
                         ids=[f"{a}B-{b}B" for a, b in SIZES])
@pytest.mark.parametrize("label,kind,config", configurations(),
                         ids=[c[0] for c in configurations()])
def test_fig3_latency(benchmark, label, kind, config, request_bytes, reply_bytes):
    """One bar of Figure 3: mean latency for one configuration and size."""
    result = benchmark.pedantic(
        run_cell, args=(label, kind, config, request_bytes, reply_bytes),
        iterations=1, rounds=1)
    benchmark.extra_info["virtual_latency_ms"] = result.mean_ms
    print(f"\n[Fig3] {result.row()}")
    assert result.mean_ms > 0


def test_fig3_summary_table(benchmark):
    """Regenerate the whole figure as a table and check its shape."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print_section("Figure 3: null-server latency (virtual ms, mean of "
                  f"{REQUESTS} requests)")
    rows = []
    means = {}
    for label, kind, config in configurations():
        for request_bytes, reply_bytes in SIZES:
            result = run_cell(label, kind, config, request_bytes, reply_bytes)
            rows.append([label, f"{request_bytes}/{reply_bytes}",
                         result.mean_ms, result.median_ms, result.p95_ms])
            means[(label, request_bytes, reply_bytes)] = result.mean_ms
    print(format_table(["configuration", "req/reply B", "mean ms", "median ms", "p95 ms"],
                       rows))

    # Shape assertions mirroring the paper's qualitative findings.
    for size in SIZES:
        mac = means[("Separate/Different/MAC", *size)]
        thresh = means[("Separate/Different/Thresh", *size)]
        firewall = means[("Priv/Different/Thresh", *size)]
        base = means[("BASE/Same/MAC", *size)]
        # Threshold signatures dominate latency (~15 ms per reply).
        assert thresh > mac + 8.0
        # The privacy firewall adds a few ms on top of threshold signatures.
        assert firewall > thresh
        assert firewall < thresh + 15.0
        # MAC-based separation stays within a few ms of the coupled baseline.
        assert mac < base + 6.0
