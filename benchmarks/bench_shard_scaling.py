"""Sharded execution: throughput scaling with the number of execution clusters.

The paper's separation argument says the ``3f + 1`` agreement cluster orders
*opaque* requests, so the execution side can be partitioned into independent
``2g + 1`` clusters behind the same agreement cluster (``repro.sharding``).
This benchmark demonstrates the payoff: on a uniform key-value workload the
simulated throughput scales with the shard count (1 -> 2 -> 4 shards) because
each shard executes only its slice of the agreed sequence, while the
agreement cluster's work stays the same.

The skewed series shows the limit of the technique: a Zipf-like popularity
distribution concentrates load on the shard owning the hot keys, so the
speedup degrades towards 1x as the skew grows -- capacity scales with the
number of *loaded* shards, not the number of provisioned ones.
"""

from __future__ import annotations

import pytest

from bench_common import print_section
from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore
from repro.config import CryptoCosts, SystemConfig, TimerConfig
from repro.sharding import ShardedSystem
from repro.workloads import run_multishard_workload

SHARD_COUNTS = [1, 2, 4]
NUM_REQUESTS = 240
NUM_CLIENTS = 16
KEY_SPACE = 96

#: Timers tuned so the saturated closed loop retransmits sparingly.
SCALING_TIMERS = TimerConfig(client_retransmit_ms=400.0, agreement_retransmit_ms=200.0,
                             execution_fetch_ms=50.0, view_change_ms=1_000.0,
                             batch_timeout_ms=1.0)

#: Cheap MACs and a 1 ms application so *execution* is the bottleneck the
#: shards relieve (with free execution the agreement cluster dominates and
#: sharding, by design, cannot help).
SCALING_CRYPTO = CryptoCosts(mac_ms=0.05, signature_sign_ms=0.5,
                             signature_verify_ms=0.1, threshold_share_ms=1.0,
                             threshold_combine_ms=0.2, threshold_verify_ms=0.1)
APP_PROCESSING_MS = 1.0


def build_system(num_shards: int, seed: int = 42) -> ShardedSystem:
    config = SystemConfig.sharded(
        num_shards=num_shards, num_clients=NUM_CLIENTS, pipeline_depth=64,
        checkpoint_interval=64, app_processing_ms=APP_PROCESSING_MS,
        timers=SCALING_TIMERS, crypto=SCALING_CRYPTO)
    return ShardedSystem(config, KeyValueStore, seed=seed)


def sweep(distribution: str):
    results = []
    for num_shards in SHARD_COUNTS:
        system = build_system(num_shards)
        results.append(run_multishard_workload(
            system, label=f"{num_shards} shard(s)", num_requests=NUM_REQUESTS,
            key_space=KEY_SPACE, distribution=distribution, seed=7))
    return results


def _print_results(title: str, results) -> None:
    print_section(title)
    base = results[0].throughput_rps
    print(format_table(
        ["shards", "throughput rps", "speedup", "mean latency ms", "p95 ms"],
        [[shards, r.throughput_rps, r.throughput_rps / base,
          r.mean_latency_ms, r.p95_latency_ms]
         for shards, r in zip(SHARD_COUNTS, results)]))


def test_shard_scaling_uniform(benchmark):
    """Headline: >= 1.5x simulated throughput at 4 shards on uniform keys."""
    results = benchmark.pedantic(sweep, args=("uniform",), iterations=1, rounds=1)
    _print_results("Shard scaling: uniform key-value workload", results)
    throughput = {shards: r.throughput_rps
                  for shards, r in zip(SHARD_COUNTS, results)}
    benchmark.extra_info["speedup_at_4_shards"] = throughput[4] / throughput[1]
    # Every request completed and every shard took a share of the load.
    assert all(r.completed == NUM_REQUESTS for r in results)
    assert all(count > 0 for count in results[-1].requests_by_shard)
    # The acceptance bar; the simulation typically lands near 3x.
    assert throughput[4] >= 1.5 * throughput[1]
    assert throughput[2] > throughput[1]


def test_shard_scaling_skewed(benchmark):
    """Skewed keys scale worse than uniform ones: hot shards are the limit."""
    results = benchmark.pedantic(sweep, args=("skewed",), iterations=1, rounds=1)
    _print_results("Shard scaling: skewed (Zipf-like) key-value workload", results)
    # Load concentrates: at 4 shards, the busiest shard executes more than
    # its fair (= 1/4) share of requests.
    busiest = max(results[-1].requests_by_shard)
    assert busiest > NUM_REQUESTS / 4
    # Sharding still helps as long as more than one shard carries load.
    assert results[-1].throughput_rps > results[0].throughput_rps
