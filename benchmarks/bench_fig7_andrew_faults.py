"""Figure 7 (table): Andrew benchmark times in the presence of failures.

The paper stops one execution server, or one agreement node, at the start of
the Andrew benchmark and shows that the failures have only a minor impact on
completion time (roughly 6% and 22% respectively in the paper's table).

Shape to reproduce: both faulty runs complete, and the slowdown relative to
the fault-free run of the same (privacy-firewall) system stays modest --
nothing like the order-of-magnitude collapse an unreplicated system would
suffer from losing its only server.
"""

from __future__ import annotations

import pytest

from bench_common import bench_config, print_section
from repro.analysis import format_table
from repro.apps.nfs import NfsService
from repro.config import AuthenticationScheme, CryptoCosts
from repro.core import SeparatedSystem
from repro.workloads import AndrewScale, run_andrew

ACCELERATED = CryptoCosts().scaled(0.1)
SCALE = AndrewScale(directories=3, files_per_directory=2, file_size_bytes=2048,
                    compile_ms_per_file=2.0)
ITERATIONS = 1
#: server-side file-system work per NFS operation (see bench_fig6_andrew.py)
FS_WORK_MS = 2.0
SCENARIOS = ["no failures", "faulty execution server", "faulty agreement node"]


def build_system():
    config = bench_config(authentication=AuthenticationScheme.THRESHOLD,
                          use_privacy_firewall=True, crypto=ACCELERATED,
                          app_processing_ms=FS_WORK_MS)
    return SeparatedSystem(config, NfsService, seed=107)


def run_scenario(scenario: str):
    system = build_system()
    if scenario == "faulty execution server":
        system.crash_execution(0)
    elif scenario == "faulty agreement node":
        # Crash a backup agreement node (the paper stops one agreement node;
        # a crashed primary additionally exercises the view change, which the
        # test suite covers separately).
        system.crash_agreement(1)
    return run_andrew(system, label=scenario, iterations=ITERATIONS, scale=SCALE)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIOS)
def test_fig7_andrew_with_failures(benchmark, scenario):
    result = benchmark.pedantic(run_scenario, args=(scenario,), iterations=1, rounds=1)
    benchmark.extra_info["virtual_total_ms"] = result.total_ms
    print(f"\n[Fig7] {result.row()}")
    assert set(result.phase_ms) == {1, 2, 3, 4, 5}


def test_fig7_summary_table(benchmark):
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    results = {scenario: run_scenario(scenario) for scenario in SCENARIOS}
    print_section(f"Figure 7: Andrew benchmark with failures ({ITERATIONS} iterations)")
    rows = []
    for phase in range(1, 6):
        rows.append([f"phase {phase}"]
                    + [results[s].phase_ms[phase] for s in SCENARIOS])
    rows.append(["TOTAL"] + [results[s].total_ms for s in SCENARIOS])
    print(format_table(["phase"] + SCENARIOS, rows))

    healthy = results["no failures"].total_ms
    exec_fault = results["faulty execution server"].total_ms
    agree_fault = results["faulty agreement node"].total_ms
    # Failures have only a minor impact (paper: +6% and +22%); allow a
    # generous band but require the runs to stay in the same ballpark.
    assert exec_fault < 1.8 * healthy
    assert agree_fault < 1.8 * healthy
