"""Figure 4: estimated relative processing cost vs application processing time.

The paper's analytic model compares BASE, the separated architecture, and the
separated architecture with the privacy firewall, for batch sizes 1, 10, and
100, as the application processing per request varies from 1 ms to 100 ms.

Shape to reproduce:

* Separate is cheaper than BASE everywhere, approaching a 33% advantage as
  application processing dominates (3 vs 4 execution replicas);
* the privacy firewall is much more expensive than BASE for small requests
  without batching, but with bundles of 10 it becomes cheaper than BASE once
  requests cost more than ~5 ms (and ~0.2 ms with bundles of 100).

This benchmark additionally cross-checks the analytic model against the
simulator: it measures the per-request execution-cluster processing cost of
the simulated systems for one point of the curve.
"""

from __future__ import annotations

import pytest

from bench_common import bench_config, print_section
from repro.analysis import (
    BASE_COST_MODEL,
    PRIVACY_COST_MODEL,
    SEPARATE_COST_MODEL,
    format_table,
    relative_cost,
)
from repro.analysis.cost_model import crossover_app_processing_ms
from repro.apps.null_service import NullService, null_operation
from repro.config import AuthenticationScheme, Deployment
from repro.core import CoupledSystem, SeparatedSystem

APP_MS_POINTS = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0]
BATCH_SIZES = [1, 10, 100]
MODELS = [BASE_COST_MODEL, SEPARATE_COST_MODEL, PRIVACY_COST_MODEL]


def full_curves():
    rows = []
    for model in MODELS:
        for batch in BATCH_SIZES:
            for app_ms in APP_MS_POINTS:
                rows.append([model.name, batch, app_ms,
                             relative_cost(model, app_ms, batch)])
    return rows


def test_fig4_analytic_curves(benchmark):
    """Regenerate every Figure 4 series and check the paper's claims."""
    rows = benchmark(full_curves)
    print_section("Figure 4: relative processing cost "
                  "(replicated / unreplicated, analytic model)")
    print(format_table(["system", "batch", "app ms/request", "relative cost"], rows))

    cost = {(r[0], r[1], r[2]): r[3] for r in rows}
    # Separate beats BASE at every point.
    for batch in BATCH_SIZES:
        for app_ms in APP_MS_POINTS:
            assert cost[("Separate", batch, app_ms)] < cost[("BASE", batch, app_ms)]
    # Privacy firewall: expensive with batch 1 and tiny requests ...
    assert cost[("Separate+Privacy", 1, 1.0)] > cost[("BASE", 1, 1.0)]
    # ... cheaper than BASE for >= 10 ms requests at batch 10 ...
    assert cost[("Separate+Privacy", 10, 10.0)] < cost[("BASE", 10, 10.0)]
    # ... and cheaper even at 1 ms with batch 100.
    assert cost[("Separate+Privacy", 100, 1.0)] < cost[("BASE", 100, 1.0)]
    # Asymptotic advantage approaches 4/3.
    ratio = cost[("BASE", 10, 100.0)] / cost[("Separate", 10, 100.0)]
    assert ratio > 1.25


def test_fig4_crossover_points(benchmark):
    """Crossover application processing times reported in the paper's text."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    crossover_b10 = crossover_app_processing_ms(PRIVACY_COST_MODEL, BASE_COST_MODEL, 10)
    crossover_b100 = crossover_app_processing_ms(PRIVACY_COST_MODEL, BASE_COST_MODEL, 100)
    print_section("Figure 4 crossovers: privacy firewall vs BASE")
    print(format_table(["batch size", "crossover app ms (paper: ~5 / ~0.2)"],
                       [[10, crossover_b10], [100, crossover_b100]]))
    assert 2.0 < crossover_b10 < 8.0
    assert crossover_b100 < 1.0


def _measured_execution_cost(kind: str, app_ms: float, requests: int = 20) -> float:
    """Measured per-request busy time across execution replicas (simulation)."""
    if kind == "base":
        config = bench_config(deployment=Deployment.SAME, app_processing_ms=app_ms)
        system = CoupledSystem(config, NullService, seed=104)
        servers = system.replicas
    elif kind == "separate":
        config = bench_config(app_processing_ms=app_ms)
        system = SeparatedSystem(config, NullService, seed=104)
        servers = system.execution_nodes
    else:
        config = bench_config(app_processing_ms=app_ms,
                              authentication=AuthenticationScheme.THRESHOLD,
                              use_privacy_firewall=True)
        system = SeparatedSystem(config, NullService, seed=104)
        servers = system.execution_nodes
    for _ in range(requests):
        system.invoke(null_operation())
    system.run(100.0)
    return sum(node.stats.busy_ms for node in servers) / requests


def test_fig4_simulation_cross_check(benchmark):
    """The simulator agrees with the model's ordering at app = 10 ms, batch = 1."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    app_ms = 10.0
    measured = {kind: _measured_execution_cost(kind, app_ms)
                for kind in ("base", "separate", "privacy")}
    print_section("Figure 4 cross-check: measured execution-cluster ms/request "
                  f"(app = {app_ms} ms, batch = 1)")
    print(format_table(["system", "measured ms/request", "unreplicated ms/request"],
                       [[k, v, app_ms] for k, v in measured.items()]))
    # Separate runs 3 execution replicas vs BASE's 4.
    assert measured["separate"] < measured["base"]
    # The privacy firewall adds threshold-signature cost on top.
    assert measured["privacy"] > measured["separate"]
