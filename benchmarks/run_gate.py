"""One entrypoint for every CI-gated benchmark.

CI's bench-smoke job is a matrix over benchmark names; each leg runs::

    PYTHONPATH=src python benchmarks/run_gate.py --quick <name>

which maps the name to its benchmark script and committed baseline, runs it
with ``--check-regression``, writes ``BENCH_<name>.json`` and the request
trace ``TRACE_<name>.jsonl`` into the current directory (the artifacts CI
uploads), schema-validates both (a malformed artifact fails the gate), and
prints a one-line summary -- speedup/ratio, the dominant critical-path
stage, and the gate verdict -- to stdout and, when running inside GitHub
Actions, into ``$GITHUB_STEP_SUMMARY``.

Adding a gated benchmark is a one-line edit to :data:`GATES` here plus a
one-word edit to the workflow matrix.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Callable, Dict

import validate_schema

BENCH_DIR = Path(__file__).parent


def _hotpath_summary(results: Dict) -> str:
    crypto = results["crypto"]
    return (f"verify-op reduction {crypto['verify_op_reduction']:.1%}, "
            f"wall-clock {crypto['wallclock_speedup']:.2f}x")


def _skew_summary(results: Dict) -> str:
    return f"skew speedup {results['skew']['speedup']:.2f}x at 4 shards"


def _rebalance_summary(results: Dict) -> str:
    cuts = results["migrate"]["cuts"]
    epochs = cuts.get("epochs", cuts) if isinstance(cuts, dict) else cuts
    return (f"migrating-hotspot speedup {results['migrate']['speedup']:.2f}x, "
            f"{epochs} cuts, exactly-once "
            f"{'ok' if results['safety']['exactly_once'] else 'VIOLATED'}")


def _failover_summary(results: Dict) -> str:
    attacks = results["failover"]["attacks"]
    worst = max(
        (attack["time_to_recover_ms"] for attack in attacks.values()
         if attack["time_to_recover_ms"] is not None),
        default=None)
    missed = sum(1 for attack in attacks.values()
                 if attack["time_to_recover_ms"] is None)
    recover = "SLO missed" if missed else f"worst recover {worst:.0f} ms"
    return (f"{len(attacks)} attacks, {recover}, safety "
            f"{'ok' if results['safety']['safety_pass'] else 'VIOLATED'}")


def _ordering_summary(results: Dict) -> str:
    cross = results["cross_group"]
    return (f"K-log scaling {results['scaling']['scaling_ratio']:.2f}x, "
            f"cross-group ratio {cross['cross_ratio']:.2f}, "
            f"{cross['torn_groups']} torn groups, "
            f"{cross['cut_fallovers']} fallovers")


def _realtime_summary(results: Dict) -> str:
    realtime = results["realtime"]
    gate = ("gated" if realtime["speedup_gated"]
            else f"ungated on {results['cores']} cores")
    return (f"wall-clock {realtime['pool']['committed_per_s']:.1f} committed/s, "
            f"crypto-pool speedup {realtime['speedup']:.2f}x ({gate})")


def _crossshard_summary(results: Dict) -> str:
    audit = results["audit"]
    return (f"mixed/single throughput ratio "
            f"{results['throughput']['throughput_ratio']:.2f}, "
            f"{audit['audited_reads']} snapshot reads audited, "
            f"{audit['torn_reads']} torn")


#: benchmark name -> script, committed baseline, and one-line summary
GATES: Dict[str, Dict] = {
    "hotpath": {
        "script": "bench_hotpath.py",
        "baseline": "hotpath_baseline.json",
        "summary": _hotpath_summary,
    },
    "skew": {
        "script": "bench_skew.py",
        "baseline": "skew_baseline.json",
        "summary": _skew_summary,
    },
    "rebalance": {
        "script": "bench_rebalance.py",
        "baseline": "rebalance_baseline.json",
        "summary": _rebalance_summary,
    },
    "crossshard": {
        "script": "bench_crossshard.py",
        "baseline": "crossshard_baseline.json",
        "summary": _crossshard_summary,
    },
    "failover": {
        "script": "bench_failover.py",
        "baseline": "failover_baseline.json",
        "summary": _failover_summary,
    },
    "ordering": {
        "script": "bench_ordering_scaling.py",
        "baseline": "ordering_baseline.json",
        "summary": _ordering_summary,
    },
    "realtime": {
        "script": "bench_realtime.py",
        "baseline": "realtime_baseline.json",
        "summary": _realtime_summary,
    },
}


def _critical_path_note(results: Dict) -> str:
    """The dominant critical-path stage, for the one-line gate summary."""
    critical_path = results.get("critical_path")
    if not isinstance(critical_path, dict) or not critical_path.get("dominant_stage"):
        return ""
    return (f", dominant stage {critical_path['dominant_stage']} "
            f"(mean {critical_path.get('dominant_mean_ms', 0.0):.2f} ms "
            f"over {critical_path.get('traces', 0)} traces)")


def summarise(name: str, output: Path, status: int,
              summary_fn: Callable[[Dict], str]) -> str:
    detail = "no results written"
    if output.exists():
        try:
            results = json.loads(output.read_text())
            detail = summary_fn(results) + _critical_path_note(results)
        except (KeyError, TypeError, ValueError) as error:
            detail = f"unreadable results ({error})"
    verdict = "PASS" if status == 0 else "FAIL"
    return f"{name}: {detail} — {verdict}"


def run_gate(name: str, quick: bool) -> int:
    gate = GATES[name]
    baseline = BENCH_DIR / gate["baseline"]
    if not baseline.exists():
        print(f"{name}: missing committed baseline {baseline}", file=sys.stderr)
        return 1
    output = Path.cwd() / f"BENCH_{name}.json"
    trace = Path.cwd() / f"TRACE_{name}.jsonl"
    command = [sys.executable, str(BENCH_DIR / gate["script"]),
               "--check-regression", "--output", str(output),
               "--trace-output", str(trace)]
    if quick:
        command.insert(2, "--quick")
    status = subprocess.call(command)
    # A leg that writes malformed artifacts fails its gate even if its
    # acceptance criteria passed: CI consumers index into both blindly.
    schema_errors = (validate_schema.validate_bench_file(output)
                     + validate_schema.validate_trace_file(trace))
    for error in schema_errors:
        print(f"schema: {error}", file=sys.stderr)
    if schema_errors:
        status = max(status, 1)
    line = summarise(name, output, status, gate["summary"])
    print(line)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as handle:
            handle.write(f"- {line}\n")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", choices=sorted(GATES),
                        help="which gated benchmark to run")
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    args = parser.parse_args(argv)
    return run_gate(args.bench, quick=args.quick)


if __name__ == "__main__":
    raise SystemExit(main())
