"""Failover benchmark: graceful degradation under a faulty ordering plane.

Drives a steady closed-loop workload through a window in which the initial
primary (``agreement:0``) misbehaves -- crashing, running the classic
*slow-primary* performance attack, censoring a client's requests out of its
batches, or equivocating (conflicting batches at the same sequence number to
disjoint backup subsets) -- and measures how throughput degrades and
recovers:

1. **failover** -- for each attack, committed-requests/second sampled per
   bucket across warmup, a fault-free baseline window, the attack window,
   and the healed tail.  Reported per attack:

   * ``fault_free_rate`` -- committed/s over the pre-attack window;
   * ``blackout_ms`` -- the longest interval with zero completions from
     attack onset until throughput recovers (how dark did it go);
   * ``time_to_recover_ms`` -- from the heal to the first sliding window
     sustaining >= 80% of the fault-free rate (the failover SLO; 0 means
     the view change already restored service *during* the window);
   * ``recovery_ratio`` -- the post-recovery rate over the fault-free rate.
     Acceptance: >= 0.8 for every attack.

2. **safety** -- the run under the *equivocating* primary additionally
   audits that the attack never split the log: every pair of agreement
   replicas that delivered the same sequence number delivered the same
   batch digest, equally-advanced execution replicas agree on application
   state, and no client accepted a duplicated or unsupported reply (the
   standard oracle battery).

Results go to ``BENCH_failover.json``; ``--quick`` shrinks the windows for
CI smoke runs, ``--check-regression`` gates ``time_to_recover_ms`` against
``benchmarks/failover_baseline.json`` (recovery time regresses *upward*, so
the gate is a ceiling) and ``--update-baseline`` rewrites the baseline from
the current measurement.  All virtual-time metrics are deterministic for a
given ``--seed`` / ``--workload-seed``.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_failover.py --quick
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore, get as kv_get, put as kv_put
from repro.config import SystemConfig, TimerConfig
from repro.faults import FaultInjector, FaultPlan, make_behaviour
from repro.fuzz.oracles import run_oracles
from repro.sharding import ShardedSystem
from repro.workloads import equal_range_boundaries
from repro.workloads.skew import skew_key

from bench_common import collect_critical_path, current_observability, obs_enabled, set_observability
from bench_hotpath import HOTPATH_CRYPTO

NUM_SHARDS = 2
KEY_SPACE = 64
NUM_CLIENTS = 24

#: the attacks the SLO is measured under, mildest first (``crash`` is the
#: non-Byzantine control: fail-stop, detected by the view-change timer alone)
ATTACKS = ("crash", "slow_primary", "censoring_primary",
           "equivocating_primary")

#: short view-change fuse so failover resolves within the measured window;
#: retransmit timers sit well above the per-bucket sampling grain
FAILOVER_TIMERS = TimerConfig(client_retransmit_ms=240.0,
                              agreement_retransmit_ms=60.0,
                              execution_fetch_ms=20.0,
                              view_change_ms=150.0,
                              batch_timeout_ms=1.0)

#: sliding window the recovery detector integrates committed/s over
RECOVERY_WINDOW_MS = 100.0

#: a window at or above this fraction of the fault-free rate counts as
#: recovered (the acceptance criterion's 80% SLO)
RECOVERY_FRACTION = 0.8

#: timeline sampling grain
BUCKET_MS = 20.0


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def build_system(seed: int) -> ShardedSystem:
    config = SystemConfig.sharded(
        NUM_SHARDS, strategy="range",
        range_boundaries=equal_range_boundaries(KEY_SPACE, NUM_SHARDS),
        num_clients=NUM_CLIENTS, pipeline_depth=16, checkpoint_interval=64,
        app_processing_ms=1.0, timers=FAILOVER_TIMERS, crypto=HOTPATH_CRYPTO,
        observability=current_observability())
    return ShardedSystem(config, KeyValueStore, seed=seed)


def make_operations(num_requests: int, workload_seed: int) -> List:
    """Uniform single-shard kvstore traffic (no hotspot: the variable under
    test is the ordering plane, not placement)."""
    rng = random.Random(workload_seed)
    operations: List = []
    for index in range(num_requests):
        key = skew_key(rng.randrange(KEY_SPACE))
        if rng.random() < 0.5:
            operations.append(kv_put(key, f"v{index}"))
        else:
            operations.append(kv_get(key))
    return operations


# ---------------------------------------------------------------------- #
# Timeline driver.
# ---------------------------------------------------------------------- #


class Timeline:
    """Per-bucket completion counts over one driven run."""

    def __init__(self, bucket_ms: float) -> None:
        self.bucket_ms = bucket_ms
        self.buckets: List[int] = []

    def rate_over(self, start_ms: float, end_ms: float) -> float:
        """Committed/s over ``[start_ms, end_ms)`` of the timeline."""
        first = int(start_ms // self.bucket_ms)
        last = min(int(end_ms // self.bucket_ms), len(self.buckets))
        if last <= first:
            return 0.0
        committed = sum(self.buckets[first:last])
        return committed / ((last - first) * self.bucket_ms) * 1000.0

    def longest_blackout_ms(self, start_ms: float, end_ms: float) -> float:
        """Longest run of zero-completion buckets inside the window."""
        first = int(start_ms // self.bucket_ms)
        last = min(int(end_ms // self.bucket_ms), len(self.buckets))
        longest = current = 0
        for count in self.buckets[first:last]:
            current = current + 1 if count == 0 else 0
            longest = max(longest, current)
        return longest * self.bucket_ms

    def time_to_recover_ms(self, healed_at_ms: float,
                           threshold_per_sec: float) -> Optional[float]:
        """Delay from the heal until the first sustained-recovery window.

        Scans :data:`RECOVERY_WINDOW_MS`-wide sliding windows starting at
        the heal; the first whose rate meets ``threshold_per_sec`` marks
        recovery.  Returns None if no window qualifies (recovery SLO miss).
        """
        start = healed_at_ms
        horizon = len(self.buckets) * self.bucket_ms
        while start + RECOVERY_WINDOW_MS <= horizon:
            if self.rate_over(start, start + RECOVERY_WINDOW_MS) >= \
                    threshold_per_sec:
                return start - healed_at_ms
            start += self.bucket_ms
        return None


def drive(system: ShardedSystem, total_ms: float) -> Timeline:
    """Run the system for ``total_ms``, sampling completions per bucket."""
    timeline = Timeline(BUCKET_MS)
    last = system.total_completed()
    elapsed = 0.0
    while elapsed < total_ms:
        system.run(BUCKET_MS)
        elapsed += BUCKET_MS
        completed = system.total_completed()
        timeline.buckets.append(completed - last)
        last = completed
    return timeline


# ---------------------------------------------------------------------- #
# Section 1: the failover SLO under each attack.
# ---------------------------------------------------------------------- #


def run_attack(attack: str, quick: bool, seed: int, workload_seed: int,
               trace_output: Path = None) -> Dict:
    warmup_ms = 150.0
    baseline_ms = 250.0 if quick else 450.0
    fault_ms = 500.0 if quick else 800.0
    tail_ms = 600.0 if quick else 900.0
    fault_at = warmup_ms + baseline_ms
    heal_at = fault_at + fault_ms
    total_ms = heal_at + tail_ms
    # Size the closed-loop backlog off the observed steady rate (~10-14
    # committed/ms in this configuration) so the workload outlives the
    # timeline; leftovers are expected and recorded, exhaustion is a bug.
    num_requests = int(total_ms * 20)

    system = build_system(seed)
    primary = system.agreement_ids[0]
    injector = FaultInjector(system)
    plan = FaultPlan()
    if attack == "crash":
        plan.crash(primary, at_ms=fault_at)
        plan.recover(primary, at_ms=heal_at)
    else:
        behaviour = make_behaviour(attack, primary)
        plan.byzantine(behaviour, at_ms=fault_at, until_ms=heal_at)
    injector.install(plan)

    operations = make_operations(num_requests, workload_seed)
    for index, operation in enumerate(operations):
        system.submit(operation, client_index=index % NUM_CLIENTS)
    timeline = drive(system, total_ms)

    fault_free_rate = timeline.rate_over(warmup_ms, fault_at)
    recover_after = timeline.time_to_recover_ms(
        heal_at, RECOVERY_FRACTION * fault_free_rate)
    recovered_at = None if recover_after is None else heal_at + recover_after
    blackout_end = total_ms if recovered_at is None else recovered_at
    blackout_ms = timeline.longest_blackout_ms(fault_at, blackout_end)
    recovered_rate = (0.0 if recovered_at is None
                     else timeline.rate_over(recovered_at, total_ms))
    recovery_ratio = recovered_rate / max(fault_free_rate, 1e-9)
    completed = system.total_completed()
    exhausted = completed >= num_requests

    critical_path = None
    if trace_output is not None or attack == ATTACKS[-1]:
        critical_path = collect_critical_path(
            system, trace_output,
            title=f"critical path through a {attack} window")
    return {
        "attack": attack,
        "system": system,
        "fault_at_ms": fault_at,
        "heal_at_ms": heal_at,
        "total_ms": total_ms,
        "timeline": list(timeline.buckets),
        "bucket_ms": BUCKET_MS,
        "fault_free_rate": fault_free_rate,
        "faulted_rate": timeline.rate_over(fault_at, heal_at),
        "recovered_rate": recovered_rate,
        "time_to_recover_ms": recover_after,
        "blackout_ms": blackout_ms,
        "recovery_ratio": recovery_ratio,
        "recovery_pass": (recover_after is not None
                          and recovery_ratio >= RECOVERY_FRACTION
                          and not exhausted),
        "completed": completed,
        "exhausted": exhausted,
        "view_changes": sum(replica.view_changes_completed
                            for replica in system.agreement_replicas),
        "primaries_deposed": sum(replica.primaries_deposed
                                 for replica in system.agreement_replicas),
        "final_view": max(replica.view
                          for replica in system.agreement_replicas),
        "critical_path": critical_path,
    }


def section_failover(quick: bool, seed: int, workload_seed: int,
                     trace_output: Path = None) -> Dict:
    runs = []
    for index, attack in enumerate(ATTACKS):
        runs.append(run_attack(
            attack, quick, seed + index, workload_seed + index,
            trace_output=trace_output if attack == ATTACKS[-1] else None))

    print_section(f"Failover SLO: {NUM_SHARDS} shards, {NUM_CLIENTS} "
                  f"clients, primary attacked for a bounded window")
    print(format_table(
        ["attack", "fault-free/s", "faulted/s", "recovered/s",
         "recover ms", "blackout ms", "views", "deposed"],
        [[run["attack"], run["fault_free_rate"], run["faulted_rate"],
          run["recovered_rate"],
          "never" if run["time_to_recover_ms"] is None
          else run["time_to_recover_ms"],
          run["blackout_ms"], run["view_changes"],
          run["primaries_deposed"]]
         for run in runs]))
    for run in runs:
        verdict = "PASS" if run["recovery_pass"] else "FAIL"
        print(f"{run['attack']}: recovery ratio "
              f"{run['recovery_ratio']:.2f} (SLO >= "
              f"{RECOVERY_FRACTION:.2f}) {verdict}")

    critical_path = None
    attacks: Dict[str, Dict] = {}
    systems: Dict[str, ShardedSystem] = {}
    for run in runs:
        systems[run["attack"]] = run.pop("system")
        if run["critical_path"] is not None:
            critical_path = run["critical_path"]
        del run["critical_path"]
        attacks[run.pop("attack")] = run
    return {
        "critical_path": critical_path,
        "systems": systems,
        "recovery_window_ms": RECOVERY_WINDOW_MS,
        "recovery_fraction": RECOVERY_FRACTION,
        "attacks": attacks,
        "failover_pass": all(run["recovery_pass"]
                             for run in attacks.values()),
    }


# ---------------------------------------------------------------------- #
# Section 2: equivocation never splits the log.
# ---------------------------------------------------------------------- #


def delivered_digest_conflicts(system: ShardedSystem) -> int:
    """Pairs of (seq, replica, replica) that delivered conflicting batches.

    The ``2f + 1`` commit quorum must prevent two conflicting batches from
    both committing at one sequence number, no matter what the equivocating
    primary proposed to whom.  Entries below the stable checkpoint are
    garbage collected, but conflicting deliveries would already have split
    application state, which the oracle battery checks independently.
    """
    conflicts = 0
    by_seq: Dict[int, set] = {}
    for replica in system.agreement_replicas:
        if replica.crashed:
            continue
        for (_, seq), entry in replica.log._entries.items():
            if entry.delivered and entry.pre_prepare is not None:
                by_seq.setdefault(seq, set()).add(
                    entry.pre_prepare.batch_digest)
    for digests in by_seq.values():
        if len(digests) > 1:
            conflicts += 1
    return conflicts


def section_safety(failover: Dict) -> Dict:
    system = failover["systems"]["equivocating_primary"]
    attack = failover["attacks"]["equivocating_primary"]
    conflicts = delivered_digest_conflicts(system)
    # completed_all=False: the timeline run leaves backlog by design, so
    # only the state-agreement / duplicate checks apply, not drain counts.
    violations = run_oracles(system, completed_all=False, context=None)
    safety_pass = conflicts == 0 and not violations

    print_section("Safety audit: equivocation never commits conflicting "
                  "values")
    print(f"delivered-digest conflicts: {conflicts}   oracle violations: "
          f"{len(violations)}   view changes under attack: "
          f"{attack['view_changes']}")
    for violation in violations:
        print(f"  {violation.oracle}: {violation.detail}", file=sys.stderr)
    print(f"log-split safety: {'PASS' if safety_pass else 'FAIL'}")
    return {
        "delivered_digest_conflicts": conflicts,
        "oracle_violations": [v.to_json_dict() for v in violations],
        "safety_pass": safety_pass,
    }


# ---------------------------------------------------------------------- #
# Harness entry point.
# ---------------------------------------------------------------------- #


def run_all(quick: bool, seed: int, workload_seed: int,
            trace_output: Path = None) -> Dict:
    failover = section_failover(quick, seed, workload_seed,
                                trace_output=trace_output)
    safety = section_safety(failover)
    failover.pop("systems")
    results = {
        "benchmark": "failover",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "failover": failover,
        "safety": safety,
    }
    critical_path = results["failover"].pop("critical_path", None)
    if critical_path is not None:
        results["critical_path"] = critical_path
    results["pass"] = all([
        results["failover"]["failover_pass"],
        results["safety"]["safety_pass"],
    ])
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Gate recovery time against the committed baseline.

    Recovery time regresses *upward*, so unlike the throughput gates this
    one is a ceiling: each attack's ``time_to_recover_ms`` must stay within
    ``tolerance`` of the baseline (with an absolute slack floor so a
    baseline of 0 ms still admits one bucket of jitter).
    """
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    tolerance = baseline["tolerance"]
    slack_ms = baseline.get("slack_ms", 50.0)
    status = 0
    for attack, run in results["failover"]["attacks"].items():
        recover = run["time_to_recover_ms"]
        base = baseline["time_to_recover_ms"].get(attack)
        if base is None:
            continue
        ceiling = base * (1.0 + tolerance) + slack_ms
        shown = "never" if recover is None else f"{recover:.0f}ms"
        print(f"regression check: {attack} recovery {shown} "
              f"(ceiling {ceiling:.0f}ms)")
        if recover is None or recover > ceiling:
            print(f"REGRESSION: {attack} recovery time above baseline "
                  "ceiling", file=sys.stderr)
            status = 1
    if not results["safety"]["safety_pass"]:
        print("REGRESSION: equivocation safety audit failed", file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulator seed (network jitter); explicit so CI "
                             "reruns are bit-identical")
    parser.add_argument("--workload-seed", type=int, default=3,
                        help="workload-generator RNG seed")
    parser.add_argument("--output", type=Path, default=Path("BENCH_failover.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_failover.jsonl"),
                        help="JSONL destination for the equivocating run's "
                             "trace (ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "failover_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if any attack's recovery time regresses "
                             "above the baseline ceiling")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's measurement")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "time_to_recover_ms": {
                attack: run["time_to_recover_ms"]
                for attack, run in results["failover"]["attacks"].items()},
            "tolerance": 0.25,
            "slack_ms": 50.0,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["pass"]:
        failed = [name for name, ok in [
            (f"recovery ratio >= {RECOVERY_FRACTION} under every attack",
             results["failover"]["failover_pass"]),
            ("equivocation safety audit", results["safety"]["safety_pass"]),
        ] if not ok]
        print("FAILED criteria: " + "; ".join(failed), file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
