"""Observability overhead gate: obs on vs off must be virtually identical.

Observability is strictly passive by design: enabling the metrics registry
and request tracing never charges virtual processing time, never schedules
events, and never draws from the deterministic RNG, so every virtual-time
quantity a benchmark reports must be **bit-identical** with observability on
(the gate default) and off (``--no-obs``).  This script enforces that
design invariant for one gate leg by running its benchmark twice and
deep-comparing the two results files after stripping the fields that are
*allowed* to differ -- wall-clock measurements (machine noise) and the
observability outputs themselves::

    PYTHONPATH=src python benchmarks/check_overhead.py --quick hotpath

Any other difference means instrumentation leaked into the simulation
(e.g. an instrument charged time or consumed randomness) and fails CI.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List

BENCH_DIR = Path(__file__).parent

#: gate leg -> benchmark script (mirrors run_gate.GATES; no baselines here
#: because the overhead gate checks determinism, not regressions)
SCRIPTS: Dict[str, str] = {
    "hotpath": "bench_hotpath.py",
    "skew": "bench_skew.py",
    "rebalance": "bench_rebalance.py",
    "crossshard": "bench_crossshard.py",
    "failover": "bench_failover.py",
    "ordering": "bench_ordering_scaling.py",
}

#: fields allowed to differ between the obs-on and obs-off runs, stripped at
#: any nesting depth before the comparison: wall-clock measurements, the
#: wall-clock-derived verdicts, the wall-clock micro section, and the
#: observability outputs themselves
VOLATILE_KEYS = frozenset({
    "unix_time", "wall_seconds", "events_per_sec", "wallclock_speedup",
    "wallclock_pass", "micro", "critical_path", "observability", "pass",
})


def strip_volatile(value):
    """A deep copy with every VOLATILE_KEYS field removed."""
    if isinstance(value, dict):
        return {key: strip_volatile(item) for key, item in value.items()
                if key not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [strip_volatile(item) for item in value]
    return value


def deep_diff(a, b, path: str = "$") -> List[str]:
    """Paths at which two stripped JSON values differ (empty = identical)."""
    if type(a) is not type(b):
        return [f"{path}: type {type(a).__name__} != {type(b).__name__}"]
    if isinstance(a, dict):
        diffs: List[str] = []
        for key in sorted(set(a) | set(b)):
            if key not in a:
                diffs.append(f"{path}.{key}: only in obs-off run")
            elif key not in b:
                diffs.append(f"{path}.{key}: only in obs-on run")
            else:
                diffs.extend(deep_diff(a[key], b[key], f"{path}.{key}"))
        return diffs
    if isinstance(a, list):
        if len(a) != len(b):
            return [f"{path}: length {len(a)} != {len(b)}"]
        diffs = []
        for index, (left, right) in enumerate(zip(a, b)):
            diffs.extend(deep_diff(left, right, f"{path}[{index}]"))
        return diffs
    if a != b:
        return [f"{path}: {a!r} != {b!r}"]
    return []


def run_leg(name: str, quick: bool, obs: bool, output: Path) -> int:
    command = [sys.executable, str(BENCH_DIR / SCRIPTS[name]),
               "--output", str(output)]
    if quick:
        command.append("--quick")
    if not obs:
        command.append("--no-obs")
    label = "obs-on" if obs else "obs-off"
    print(f"overhead gate: running {name} ({label}) -> {output}")
    return subprocess.call(command)


def check_overhead(name: str, quick: bool, keep_outputs: bool = True) -> int:
    on_path = Path.cwd() / f"OVERHEAD_{name}_obs_on.json"
    off_path = Path.cwd() / f"OVERHEAD_{name}_obs_off.json"
    for obs, output in ((True, on_path), (False, off_path)):
        status = run_leg(name, quick, obs, output)
        if status != 0:
            # The leg's own acceptance criteria are the regression gate's
            # concern; here a non-zero exit still produced comparable JSON
            # unless the file is missing.
            if not output.exists():
                print(f"overhead gate: {name} ({'obs-on' if obs else 'obs-off'}) "
                      f"wrote no results (exit {status})", file=sys.stderr)
                return 1
    on = strip_volatile(json.loads(on_path.read_text()))
    off = strip_volatile(json.loads(off_path.read_text()))
    diffs = deep_diff(off, on)
    if diffs:
        print(f"overhead gate: {name} virtual-time results DIFFER with "
              f"observability enabled ({len(diffs)} field(s)):", file=sys.stderr)
        for diff in diffs[:20]:
            print(f"  {diff}", file=sys.stderr)
        if len(diffs) > 20:
            print(f"  ... and {len(diffs) - 20} more", file=sys.stderr)
        return 1
    print(f"overhead gate: {name} PASS -- virtual-time results bit-identical "
          "with observability on and off")
    if not keep_outputs:
        on_path.unlink(missing_ok=True)
        off_path.unlink(missing_ok=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", choices=sorted(SCRIPTS),
                        help="which gate leg to compare")
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    args = parser.parse_args(argv)
    return check_overhead(args.bench, quick=args.quick)


if __name__ == "__main__":
    raise SystemExit(main())
