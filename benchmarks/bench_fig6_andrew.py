"""Figure 6 (table): modified Andrew benchmark times per phase.

The paper runs Andrew-500 against a replicated NFS server under three
configurations -- no replication, BASE, and the privacy-firewall system --
and reports per-phase completion times.  For the Andrew runs the paper
assumes hardware acceleration of the threshold signatures, which we model by
scaling the crypto cost model down.

Shape to reproduce: BASE costs roughly 2x the unreplicated server on this
metadata-heavy workload, and the privacy-firewall system is a further modest
slowdown over BASE (the paper reports ~16%), with the compile phase (5)
dominating total time.
"""

from __future__ import annotations

import pytest

from bench_common import bench_config, print_section
from repro.analysis import format_table
from repro.apps.nfs import NfsService
from repro.config import AuthenticationScheme, CryptoCosts, Deployment
from repro.core import CoupledSystem, SeparatedSystem, UnreplicatedSystem
from repro.workloads import AndrewScale, run_andrew

#: the paper assumes hardware support for threshold signatures in these runs
ACCELERATED = CryptoCosts().scaled(0.1)
SCALE = AndrewScale(directories=3, files_per_directory=2, file_size_bytes=2048,
                    compile_ms_per_file=2.0)
ITERATIONS = 1
#: server-side file-system work per NFS operation.  The paper's NFS server
#: runs against a real file system, so per-operation latency is dominated by
#: file-system/disk work rather than replication protocol cost; without this
#: term the protocol overhead would be the whole story and the ratios between
#: configurations would be far larger than the paper's.
FS_WORK_MS = 2.0


def build(label: str):
    if label == "No replication":
        return UnreplicatedSystem(bench_config(f=0, g=0, crypto=ACCELERATED,
                                               app_processing_ms=FS_WORK_MS),
                                  NfsService, seed=106)
    if label == "BASE":
        return CoupledSystem(bench_config(deployment=Deployment.SAME, crypto=ACCELERATED,
                                          app_processing_ms=FS_WORK_MS),
                             NfsService, seed=106)
    if label == "Firewall":
        return SeparatedSystem(bench_config(authentication=AuthenticationScheme.THRESHOLD,
                                            use_privacy_firewall=True,
                                            crypto=ACCELERATED,
                                            app_processing_ms=FS_WORK_MS),
                               NfsService, seed=106)
    raise ValueError(label)


CONFIG_LABELS = ["No replication", "BASE", "Firewall"]


def run_config(label: str):
    system = build(label)
    return run_andrew(system, label=label, iterations=ITERATIONS, scale=SCALE)


@pytest.mark.parametrize("label", CONFIG_LABELS, ids=CONFIG_LABELS)
def test_fig6_andrew_configuration(benchmark, label):
    """One column of Figure 6: Andrew phases under one configuration."""
    result = benchmark.pedantic(run_config, args=(label,), iterations=1, rounds=1)
    benchmark.extra_info["virtual_total_ms"] = result.total_ms
    print(f"\n[Fig6] {result.row()}")
    assert set(result.phase_ms) == {1, 2, 3, 4, 5}


def test_fig6_summary_table(benchmark):
    """Regenerate the whole table and check the paper's ordering."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    results = {label: run_config(label) for label in CONFIG_LABELS}
    print_section(f"Figure 6: Andrew benchmark ({ITERATIONS} iterations, virtual ms)")
    rows = []
    for phase in range(1, 6):
        rows.append([f"phase {phase}"]
                    + [results[label].phase_ms[phase] for label in CONFIG_LABELS])
    rows.append(["TOTAL"] + [results[label].total_ms for label in CONFIG_LABELS])
    print(format_table(["phase"] + CONFIG_LABELS, rows))

    no_rep = results["No replication"].total_ms
    base = results["BASE"].total_ms
    firewall = results["Firewall"].total_ms
    # Replication costs more than no replication; the firewall costs more
    # than BASE but by a modest factor (paper: ~16%; allow a generous band).
    assert base > no_rep
    assert firewall > base
    assert firewall < 2.0 * base
    # The compile phase dominates, as in the paper.
    for label in CONFIG_LABELS:
        assert results[label].phase_ms[5] == max(results[label].phase_ms.values())
