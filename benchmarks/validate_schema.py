"""Schema validation for benchmark artifacts (no third-party deps).

CI uploads two machine-readable artifacts per gated benchmark leg: the
``BENCH_<name>.json`` results file and the ``TRACE_<name>.jsonl`` request
trace.  Downstream tooling (the gate summaries, the overhead comparison,
dashboards fed from the artifacts) indexes into both blindly, so a leg that
writes a malformed file must fail its gate rather than silently producing
an artifact nobody can read.  This module is that check: a hand-rolled
validator for exactly the fields the consumers rely on, deliberately
independent of the ``repro`` package so schema drift in the producer cannot
silently relax the contract.

``run_gate.py`` imports and applies it after every leg; it can also be run
standalone::

    python benchmarks/validate_schema.py --bench BENCH_hotpath.json \
        --trace TRACE_hotpath.jsonl

Exit status is non-zero if any file fails, with one line per violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: top-level fields every BENCH_*.json must carry
BENCH_REQUIRED = {"benchmark": str, "mode": str, "seed": int,
                  "workload_seed": int, "pass": bool}

#: the six canonical critical-path stages (always present in a breakdown)
REQUIRED_STAGES = ("admit", "batch", "agree", "release", "execute", "reply")

#: per-stage summary fields, all numeric
STAGE_FIELDS = ("samples", "mean_ms", "p50_ms", "p99_ms", "p999_ms", "max_ms")

#: the tracer's event vocabulary (a trace line outside it is malformed)
TRACE_EVENTS = frozenset({
    "submit", "admit", "order", "commit", "stage", "release", "execute",
    "vote_open", "vote_done", "collate", "reply",
})


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench(results: Dict, require_critical_path: bool = True) -> List[str]:
    """Violations in a parsed BENCH_*.json (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(results, dict):
        return ["results: not a JSON object"]
    for field, kind in BENCH_REQUIRED.items():
        if field not in results:
            errors.append(f"results: missing required field '{field}'")
        elif not isinstance(results[field], kind):
            errors.append(f"results.{field}: expected {kind.__name__}, "
                          f"got {type(results[field]).__name__}")

    critical_path = results.get("critical_path")
    if critical_path is None:
        if require_critical_path:
            errors.append("results: missing 'critical_path' (obs-enabled "
                          "runs must embed the per-stage breakdown)")
        return errors
    if not isinstance(critical_path, dict):
        return errors + ["critical_path: not a JSON object"]
    if not isinstance(critical_path.get("dominant_stage"), str):
        errors.append("critical_path.dominant_stage: missing or not a string")
    if not _is_number(critical_path.get("traces")):
        errors.append("critical_path.traces: missing or not a number")
    stages = critical_path.get("stages")
    if not isinstance(stages, dict):
        return errors + ["critical_path.stages: missing or not a JSON object"]
    for stage in REQUIRED_STAGES:
        summary = stages.get(stage)
        if not isinstance(summary, dict):
            errors.append(f"critical_path.stages.{stage}: missing")
            continue
        for field in STAGE_FIELDS:
            if not _is_number(summary.get(field)):
                errors.append(f"critical_path.stages.{stage}.{field}: "
                              "missing or not a number")
    return errors


def validate_bench_file(path: Path, require_critical_path: bool = True) -> List[str]:
    if not path.exists():
        return [f"{path}: does not exist"]
    try:
        results = json.loads(path.read_text())
    except ValueError as error:
        return [f"{path}: not valid JSON ({error})"]
    return [f"{path}: {error}"
            for error in validate_bench(results, require_critical_path)]


def validate_trace_lines(lines) -> List[str]:
    """Violations in an iterable of raw JSONL trace lines (empty = valid).

    Virtual time is monotonic and the tracer records in execution order, so
    ``t_ms`` must be non-decreasing across the file -- a violation means the
    trace was reordered or stitched from different runs.
    """
    errors: List[str] = []
    last_t = float("-inf")
    count = 0
    for index, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except ValueError as error:
            errors.append(f"line {index}: not valid JSON ({error})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {index}: not a JSON object")
            continue
        for field, kind in (("trace_id", str), ("event", str), ("node", str)):
            if not isinstance(record.get(field), kind):
                errors.append(f"line {index}: '{field}' missing or not a "
                              f"{kind.__name__}")
        event = record.get("event")
        if isinstance(event, str) and event not in TRACE_EVENTS:
            errors.append(f"line {index}: unknown event '{event}'")
        t_ms = record.get("t_ms")
        if not _is_number(t_ms) or t_ms < 0:
            errors.append(f"line {index}: 't_ms' missing, non-numeric, "
                          "or negative")
        elif t_ms < last_t:
            errors.append(f"line {index}: 't_ms' {t_ms} decreases "
                          f"(previous {last_t})")
        else:
            last_t = t_ms
        if len(errors) >= 20:
            errors.append("... (further violations suppressed)")
            break
    if count == 0 and not errors:
        errors.append("trace is empty (obs-enabled runs must record events)")
    return errors


def validate_trace_file(path: Path) -> List[str]:
    if not path.exists():
        return [f"{path}: does not exist"]
    with path.open(encoding="utf-8") as handle:
        return [f"{path}: {error}" for error in validate_trace_lines(handle)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=Path, action="append", default=[],
                        help="BENCH_*.json file to validate (repeatable)")
    parser.add_argument("--trace", type=Path, action="append", default=[],
                        help="TRACE_*.jsonl file to validate (repeatable)")
    parser.add_argument("--allow-missing-critical-path", action="store_true",
                        help="accept BENCH files without a critical_path "
                             "section (obs-disabled runs)")
    args = parser.parse_args(argv)
    if not args.bench and not args.trace:
        parser.error("nothing to validate: pass --bench and/or --trace")

    errors: List[str] = []
    for path in args.bench:
        errors.extend(validate_bench_file(
            path, require_critical_path=not args.allow_missing_critical_path))
    for path in args.trace:
        errors.extend(validate_trace_file(path))
    for error in errors:
        print(f"schema: {error}", file=sys.stderr)
    checked = len(args.bench) + len(args.trace)
    if not errors:
        print(f"schema: {checked} artifact(s) valid")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
