"""Schema validation for benchmark artifacts (no third-party deps).

CI uploads two machine-readable artifacts per gated benchmark leg: the
``BENCH_<name>.json`` results file and the ``TRACE_<name>.jsonl`` request
trace.  Downstream tooling (the gate summaries, the overhead comparison,
dashboards fed from the artifacts) indexes into both blindly, so a leg that
writes a malformed file must fail its gate rather than silently producing
an artifact nobody can read.  This module is that check: a hand-rolled
validator for exactly the fields the consumers rely on, deliberately
independent of the ``repro`` package so schema drift in the producer cannot
silently relax the contract.

``run_gate.py`` imports and applies it after every leg; it can also be run
standalone::

    python benchmarks/validate_schema.py --bench BENCH_hotpath.json \
        --trace TRACE_hotpath.jsonl

Exit status is non-zero if any file fails, with one line per violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: top-level fields every BENCH_*.json must carry
BENCH_REQUIRED = {"benchmark": str, "mode": str, "seed": int,
                  "workload_seed": int, "pass": bool}

#: the six canonical critical-path stages (always present in a breakdown)
REQUIRED_STAGES = ("admit", "batch", "agree", "release", "execute", "reply")

#: per-stage summary fields, all numeric
STAGE_FIELDS = ("samples", "mean_ms", "p50_ms", "p99_ms", "p999_ms", "max_ms")

#: the tracer's event vocabulary (a trace line outside it is malformed);
#: view_change_start/_end are span markers the agreement replicas emit when
#: the ordering plane reconfigures mid-request
TRACE_EVENTS = frozenset({
    "submit", "admit", "order", "commit", "stage", "release", "execute",
    "vote_open", "vote_done", "collate", "reply",
    "view_change_start", "view_change_end",
    "coordinate_open", "coordinate_done",
})


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench(results: Dict, require_critical_path: bool = True) -> List[str]:
    """Violations in a parsed BENCH_*.json (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(results, dict):
        return ["results: not a JSON object"]
    for field, kind in BENCH_REQUIRED.items():
        if field not in results:
            errors.append(f"results: missing required field '{field}'")
        elif not isinstance(results[field], kind):
            errors.append(f"results.{field}: expected {kind.__name__}, "
                          f"got {type(results[field]).__name__}")

    critical_path = results.get("critical_path")
    if critical_path is None:
        if require_critical_path:
            errors.append("results: missing 'critical_path' (obs-enabled "
                          "runs must embed the per-stage breakdown)")
        return errors
    if not isinstance(critical_path, dict):
        return errors + ["critical_path: not a JSON object"]
    if not isinstance(critical_path.get("dominant_stage"), str):
        errors.append("critical_path.dominant_stage: missing or not a string")
    if not _is_number(critical_path.get("traces")):
        errors.append("critical_path.traces: missing or not a number")
    stages = critical_path.get("stages")
    if not isinstance(stages, dict):
        return errors + ["critical_path.stages: missing or not a JSON object"]
    for stage in REQUIRED_STAGES:
        summary = stages.get(stage)
        if not isinstance(summary, dict):
            errors.append(f"critical_path.stages.{stage}: missing")
            continue
        for field in STAGE_FIELDS:
            if not _is_number(summary.get(field)):
                errors.append(f"critical_path.stages.{stage}.{field}: "
                              "missing or not a number")
    return errors


def validate_bench_file(path: Path, require_critical_path: bool = True) -> List[str]:
    if not path.exists():
        return [f"{path}: does not exist"]
    try:
        results = json.loads(path.read_text())
    except ValueError as error:
        return [f"{path}: not valid JSON ({error})"]
    return [f"{path}: {error}"
            for error in validate_bench(results, require_critical_path)]


def validate_trace_lines(lines) -> List[str]:
    """Violations in an iterable of raw JSONL trace lines (empty = valid).

    Virtual time is monotonic and the tracer records in execution order, so
    ``t_ms`` must be non-decreasing across the file -- a violation means the
    trace was reordered or stitched from different runs.
    """
    errors: List[str] = []
    last_t = float("-inf")
    count = 0
    for index, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except ValueError as error:
            errors.append(f"line {index}: not valid JSON ({error})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {index}: not a JSON object")
            continue
        for field, kind in (("trace_id", str), ("event", str), ("node", str)):
            if not isinstance(record.get(field), kind):
                errors.append(f"line {index}: '{field}' missing or not a "
                              f"{kind.__name__}")
        event = record.get("event")
        if isinstance(event, str) and event not in TRACE_EVENTS:
            errors.append(f"line {index}: unknown event '{event}'")
        t_ms = record.get("t_ms")
        if not _is_number(t_ms) or t_ms < 0:
            errors.append(f"line {index}: 't_ms' missing, non-numeric, "
                          "or negative")
        elif t_ms < last_t:
            errors.append(f"line {index}: 't_ms' {t_ms} decreases "
                          f"(previous {last_t})")
        else:
            last_t = t_ms
        if len(errors) >= 20:
            errors.append("... (further violations suppressed)")
            break
    if count == 0 and not errors:
        errors.append("trace is empty (obs-enabled runs must record events)")
    return errors


def validate_trace_file(path: Path) -> List[str]:
    if not path.exists():
        return [f"{path}: does not exist"]
    with path.open(encoding="utf-8") as handle:
        return [f"{path}: {error}" for error in validate_trace_lines(handle)]


#: the fuzz schedule genome's event vocabulary (mirrors repro.fuzz.schedule;
#: kept literal here so producer drift cannot relax the artifact contract)
SCHEDULE_EVENT_KINDS = frozenset({
    "crash", "partition", "byzantine", "link_fault", "map_change",
    "log_move",
})

#: top-level fields every fuzz schedule JSON must carry
SCHEDULE_REQUIRED = {"scenario": str, "seed": int, "workload_seed": int,
                     "num_requests": int, "events": list}

#: top-level fields every FUZZ_REPORT_*.json (explore mode) must carry
FUZZ_REPORT_REQUIRED = {"mode": str, "scenario": str, "seed": int,
                        "runs": int, "coverage": int,
                        "coverage_history": list, "corpus": list,
                        "violations": list, "pass": bool}


def validate_schedule(schedule: Dict) -> List[str]:
    """Violations in a parsed fuzz schedule JSON (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(schedule, dict):
        return ["schedule: not a JSON object"]
    for field, kind in SCHEDULE_REQUIRED.items():
        if field not in schedule:
            errors.append(f"schedule: missing required field '{field}'")
        elif not isinstance(schedule[field], kind) or \
                isinstance(schedule[field], bool):
            errors.append(f"schedule.{field}: expected {kind.__name__}, "
                          f"got {type(schedule[field]).__name__}")
    for index, event in enumerate(schedule.get("events") or []):
        where = f"schedule.events[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        kind = event.get("kind")
        if kind not in SCHEDULE_EVENT_KINDS:
            errors.append(f"{where}: unknown event kind {kind!r}")
        for field in ("at_ms", "duration_ms"):
            value = event.get(field)
            if not _is_number(value) or value < 0:
                errors.append(f"{where}.{field}: missing, non-numeric, "
                              "or negative")
    return errors


def validate_schedule_file(path: Path) -> List[str]:
    if not path.exists():
        return [f"{path}: does not exist"]
    try:
        schedule = json.loads(path.read_text())
    except ValueError as error:
        return [f"{path}: not valid JSON ({error})"]
    return [f"{path}: {error}" for error in validate_schedule(schedule)]


def validate_fuzz_report(report: Dict) -> List[str]:
    """Violations in a parsed FUZZ_REPORT_*.json (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(report, dict):
        return ["report: not a JSON object"]
    for field, kind in FUZZ_REPORT_REQUIRED.items():
        if field not in report:
            errors.append(f"report: missing required field '{field}'")
        elif kind is int and isinstance(report[field], bool):
            errors.append(f"report.{field}: expected int, got bool")
        elif not isinstance(report[field], kind):
            errors.append(f"report.{field}: expected {kind.__name__}, "
                          f"got {type(report[field]).__name__}")
    if report.get("mode") not in (None, "explore", "corpus-regression",
                                  "replay"):
        errors.append(f"report.mode: unknown mode {report.get('mode')!r}")
    history = report.get("coverage_history")
    if isinstance(history, list):
        last = 0
        for index, value in enumerate(history):
            if not _is_number(value):
                errors.append(f"report.coverage_history[{index}]: "
                              "not a number")
                break
            if value < last:
                errors.append(f"report.coverage_history[{index}]: coverage "
                              f"shrank ({value} after {last}) -- coverage "
                              "is cumulative and must be non-decreasing")
                break
            last = value
        if history and isinstance(report.get("coverage"), int) and \
                history[-1] != report["coverage"]:
            errors.append("report.coverage: does not match the last "
                          "coverage_history entry")
    for index, seed in enumerate(report.get("corpus") or []):
        for error in validate_schedule(seed):
            errors.append(f"report.corpus[{index}].{error}")
        if len(errors) >= 20:
            errors.append("... (further violations suppressed)")
            break
    for index, finding in enumerate(report.get("violations") or []):
        where = f"report.violations[{index}]"
        if not isinstance(finding, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        for field in ("schedule", "shrunk_schedule"):
            if field in finding:
                for error in validate_schedule(finding[field]):
                    errors.append(f"{where}.{field}.{error}")
        if "replays_bit_identically" in finding and \
                not isinstance(finding["replays_bit_identically"], bool):
            errors.append(f"{where}.replays_bit_identically: not a bool")
    if report.get("violations") and report.get("pass") is True:
        errors.append("report.pass: true despite recorded violations")
    return errors


def validate_fuzz_report_file(path: Path) -> List[str]:
    if not path.exists():
        return [f"{path}: does not exist"]
    try:
        report = json.loads(path.read_text())
    except ValueError as error:
        return [f"{path}: not valid JSON ({error})"]
    return [f"{path}: {error}" for error in validate_fuzz_report(report)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=Path, action="append", default=[],
                        help="BENCH_*.json file to validate (repeatable)")
    parser.add_argument("--trace", type=Path, action="append", default=[],
                        help="TRACE_*.jsonl file to validate (repeatable)")
    parser.add_argument("--schedule", type=Path, action="append", default=[],
                        help="fuzz schedule JSON to validate (repeatable)")
    parser.add_argument("--fuzz-report", type=Path, action="append",
                        default=[],
                        help="FUZZ_REPORT_*.json file to validate "
                             "(repeatable)")
    parser.add_argument("--allow-missing-critical-path", action="store_true",
                        help="accept BENCH files without a critical_path "
                             "section (obs-disabled runs)")
    args = parser.parse_args(argv)
    if not (args.bench or args.trace or args.schedule or args.fuzz_report):
        parser.error("nothing to validate: pass --bench, --trace, "
                     "--schedule, and/or --fuzz-report")

    errors: List[str] = []
    for path in args.bench:
        errors.extend(validate_bench_file(
            path, require_critical_path=not args.allow_missing_critical_path))
    for path in args.trace:
        errors.extend(validate_trace_file(path))
    for path in args.schedule:
        errors.extend(validate_schedule_file(path))
    for path in args.fuzz_report:
        errors.extend(validate_fuzz_report_file(path))
    for error in errors:
        print(f"schema: {error}", file=sys.stderr)
    checked = (len(args.bench) + len(args.trace) + len(args.schedule) +
               len(args.fuzz_report))
    if not errors:
        print(f"schema: {checked} artifact(s) valid")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
