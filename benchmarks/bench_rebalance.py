"""Rebalance benchmark: dynamic partition maps vs static boundaries.

Measures, on a 4-shard range-partitioned kvstore under a **migrating
hotspot** (80% of requests to one quarter-key-space window that shifts
region every phase):

1. **migrate** -- committed-requests/second over a fixed window with dynamic
   rebalancing (``RebalanceConfig(enabled=True)``: load-triggered splits and
   merges agreed through the log, epoch cuts, live range handoff) versus the
   construction-time static boundaries.  Acceptance: >= 1.3x at 4 shards.
   The per-shard committed breakdown shows *where* the win comes from: with
   static boundaries each phase saturates the single cluster owning the hot
   window while the others idle.
2. **safety** -- a drain run across multiple epoch cuts (at least one split
   and one merge applied) proving every client request executed *exactly
   once*: every submitted request completes, the per-cluster executed
   totals sum to exactly the completed count (an execution lost at a cut
   would strand a client; one duplicated across a handoff would inflate the
   sum), each cluster's replicas agree on their contiguous shard-local
   frontier and application state, and no client ever accepted a misrouted
   or stale-epoch reply.

Results go to ``BENCH_rebalance.json``; ``--quick`` shrinks the windows for
CI smoke runs, ``--check-regression`` gates against
``benchmarks/rebalance_baseline.json`` and ``--update-baseline`` rewrites the
baseline from the current measurement.  All virtual-time metrics are
deterministic for a given ``--seed`` / ``--workload-seed``.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_rebalance.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore
from repro.config import (
    BatchingConfig,
    RebalanceConfig,
    SystemConfig,
    TimerConfig,
)
from repro.sharding import ShardedSystem
from repro.workloads import (
    equal_range_boundaries,
    migrating_hot_range_operations,
    run_ordered_window,
)

from bench_common import collect_critical_path, current_observability, obs_enabled, set_observability
from bench_hotpath import HOTPATH_CRYPTO

NUM_SHARDS = 4
KEY_SPACE = 64
NUM_CLIENTS = 48
NUM_PHASES = 3
#: fraction of requests hammering the current hot window
HOT_FRACTION = 0.8

#: slow protocol timers so an overloaded hot shard exercises back-pressure,
#: not view changes or retransmission storms
REBALANCE_TIMERS = TimerConfig(client_retransmit_ms=5_000.0,
                               agreement_retransmit_ms=1_000.0,
                               execution_fetch_ms=50.0,
                               view_change_ms=20_000.0,
                               batch_timeout_ms=5.0)

#: the dynamic configuration under test: responsive enough to chase a
#: migrating hotspot, with per-shard batch timeouts and controller demotion
#: (this PR's batching satellites) enabled
REBALANCE = RebalanceConfig(enabled=True, check_interval_ms=60.0,
                            cooldown_ms=240.0, hot_ratio=1.6, cold_ratio=0.6,
                            min_window_requests=96)
BATCHING = BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=64,
                          timeout_scale_max=4.0, demote_idle_ms=250.0)


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def build_system(rebalance_enabled: bool, seed: int) -> ShardedSystem:
    config = SystemConfig.sharded(
        NUM_SHARDS, strategy="range",
        range_boundaries=equal_range_boundaries(KEY_SPACE, NUM_SHARDS),
        num_clients=NUM_CLIENTS, pipeline_depth=16, checkpoint_interval=64,
        app_processing_ms=1.0, timers=REBALANCE_TIMERS, crypto=HOTPATH_CRYPTO,
        batching=BATCHING,
        rebalance=REBALANCE if rebalance_enabled else RebalanceConfig(),
        observability=current_observability())
    return ShardedSystem(config, KeyValueStore, seed=seed)


def epoch_history(system: ShardedSystem) -> Dict[str, int]:
    """Applied cuts by kind, reconstructed from the agreed map history."""
    registry = system.router.partitioner.registry
    splits = merges = moves = 0
    for epoch in range(1, registry.latest_epoch + 1):
        delta = (registry.map_for(epoch).num_ranges
                 - registry.map_for(epoch - 1).num_ranges)
        if delta > 0:
            splits += 1
        elif delta < 0:
            merges += 1
        else:
            moves += 1
    return {"splits": splits, "merges": merges, "moves": moves,
            "epochs": registry.latest_epoch}


# ---------------------------------------------------------------------- #
# Section 1: committed/sec under a migrating hotspot.
# ---------------------------------------------------------------------- #


def section_migrate(quick: bool, seed: int, workload_seed: int,
                    trace_output: Path = None) -> Dict:
    num_requests = 6_000 if quick else 16_000
    duration_ms = 900.0 if quick else 2_500.0
    warmup_ms = 150.0 if quick else 200.0
    operations = migrating_hot_range_operations(
        num_requests, key_space=KEY_SPACE, num_phases=NUM_PHASES,
        hot_fraction=HOT_FRACTION, hot_key_fraction=1.0 / NUM_SHARDS,
        seed=workload_seed)

    runs = {}
    cuts = {}
    systems = {}
    for label, enabled in (("static boundaries", False),
                           ("rebalancing", True)):
        system = build_system(enabled, seed=seed)
        systems[label] = system
        runs[label] = run_ordered_window(
            system, operations=operations, duration_ms=duration_ms,
            warmup_ms=warmup_ms, label=label)
        cuts[label] = epoch_history(system)

    baseline = runs["static boundaries"]
    dynamic = runs["rebalancing"]
    speedup = dynamic.committed_per_sec / max(baseline.committed_per_sec, 1e-9)

    print_section(f"Migrating hotspot ({NUM_PHASES} phases), {NUM_SHARDS} "
                  f"shards, {NUM_CLIENTS} clients: static boundaries vs "
                  f"dynamic rebalancing")
    print(format_table(
        ["partitioning", "committed/s", "hottest shard", "by shard",
         "splits", "merges"],
        [[label, result.committed_per_sec, max(result.committed_by_shard),
          "/".join(str(count) for count in result.committed_by_shard),
          cuts[label]["splits"], cuts[label]["merges"]]
         for label, result in runs.items()]))
    print(f"migrate speedup: {speedup:.2f}x   epoch cuts applied: "
          f"{cuts['rebalancing']['epochs']}")
    # The rebalancing run is this benchmark's primary measured system: its
    # trace feeds the exported JSONL and the critical path.
    critical_path = collect_critical_path(
        systems["rebalancing"], trace_output,
        title="critical path, dynamic rebalancing under a migrating hotspot")
    return {
        "critical_path": critical_path,
        "num_requests": num_requests,
        "duration_ms": duration_ms,
        "num_phases": NUM_PHASES,
        "hot_fraction": HOT_FRACTION,
        "committed_per_sec": {label: result.committed_per_sec
                              for label, result in runs.items()},
        "committed_by_shard": {label: result.committed_by_shard
                               for label, result in runs.items()},
        "cuts": cuts["rebalancing"],
        "speedup": speedup,
        "speedup_pass": speedup >= 1.3,
    }


# ---------------------------------------------------------------------- #
# Section 2: exactly-once safety audit across epoch cuts.
# ---------------------------------------------------------------------- #


def section_safety(quick: bool, seed: int, workload_seed: int) -> Dict:
    num_requests = 2_400 if quick else 4_800
    operations = migrating_hot_range_operations(
        num_requests, key_space=KEY_SPACE, num_phases=NUM_PHASES,
        hot_fraction=HOT_FRACTION, hot_key_fraction=1.0 / NUM_SHARDS,
        seed=workload_seed + 1)
    system = build_system(True, seed=seed + 1)
    for index, operation in enumerate(operations):
        system.submit(operation, client_index=index % NUM_CLIENTS)
    system.run_until(lambda: system.total_completed() == num_requests,
                     timeout_ms=600_000.0,
                     description="all requests completed across epoch cuts")
    system.run(500.0)  # settle replicas that lag the reply quorum

    completed = system.total_completed()
    executed_by_shard = system.requests_executed_by_shard()
    executed_total = sum(executed_by_shard)
    cuts = epoch_history(system)
    misrouted = sum(client.misrouted_replies for client in system.clients)
    epoch_advances = sum(client.epoch_advances for client in system.clients)

    # Per-cluster agreement: every replica of a cluster must sit on the same
    # contiguous shard-local frontier with identical application state (no
    # per-shard sequence gaps or duplicates survive an epoch cut).
    clusters_agree = True
    for shard in range(system.num_shards):
        cluster = system.execution_cluster(shard)
        frontiers = {node.max_executed for node in cluster}
        digests = {node.app.state_digest() for node in cluster}
        if len(frontiers) != 1 or len(digests) != 1:
            clusters_agree = False

    exactly_once = executed_total == completed
    cuts_ok = cuts["splits"] >= 1 and cuts["merges"] >= 1 and cuts["epochs"] >= 2
    safety_pass = (completed == num_requests and exactly_once and cuts_ok
                   and clusters_agree and misrouted == 0)

    print_section("Safety audit: exactly-once across split + merge cuts")
    print(f"completed {completed}/{num_requests}, executed "
          f"{executed_total} ({'/'.join(map(str, executed_by_shard))}), "
          f"cuts={cuts}, client epoch advances={epoch_advances}, "
          f"misrouted replies={misrouted}")
    print(f"exactly-once: {'PASS' if exactly_once else 'FAIL'}   "
          f"split+merge cuts: {'PASS' if cuts_ok else 'FAIL'}   "
          f"cluster agreement: {'PASS' if clusters_agree else 'FAIL'}")
    return {
        "num_requests": num_requests,
        "completed": completed,
        "executed_total": executed_total,
        "executed_by_shard": list(executed_by_shard),
        "cuts": cuts,
        "client_epoch_advances": epoch_advances,
        "misrouted_replies": misrouted,
        "exactly_once": exactly_once,
        "cuts_ok": cuts_ok,
        "clusters_agree": clusters_agree,
        "safety_pass": safety_pass,
    }


# ---------------------------------------------------------------------- #
# Harness entry point.
# ---------------------------------------------------------------------- #


def run_all(quick: bool, seed: int, workload_seed: int,
            trace_output: Path = None) -> Dict:
    results = {
        "benchmark": "rebalance",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "migrate": section_migrate(quick, seed, workload_seed,
                                   trace_output=trace_output),
        "safety": section_safety(quick, seed, workload_seed),
    }
    critical_path = results["migrate"].pop("critical_path", None)
    if critical_path is not None:
        results["critical_path"] = critical_path
    results["pass"] = all([
        results["migrate"]["speedup_pass"],
        results["safety"]["safety_pass"],
    ])
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Gate the deterministic metrics against the committed baseline."""
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    tolerance = baseline["tolerance"]
    speedup = results["migrate"]["speedup"]
    speedup_floor = max(1.3, baseline["migrate_speedup"] * (1.0 - tolerance))
    print(f"regression check: migrate speedup {speedup:.2f}x "
          f"(floor {speedup_floor:.2f}), safety "
          f"{'ok' if results['safety']['safety_pass'] else 'REGRESSED'}")
    status = 0
    if speedup < speedup_floor:
        print("REGRESSION: migrate speedup below baseline floor", file=sys.stderr)
        status = 1
    if not results["safety"]["safety_pass"]:
        print("REGRESSION: exactly-once safety audit failed", file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows for CI smoke runs")
    parser.add_argument("--seed", type=int, default=11,
                        help="simulator seed (network jitter); explicit so CI "
                             "reruns are bit-identical")
    parser.add_argument("--workload-seed", type=int, default=5,
                        help="workload-generator RNG seed")
    parser.add_argument("--output", type=Path, default=Path("BENCH_rebalance.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_rebalance.jsonl"),
                        help="JSONL destination for the rebalancing run's "
                             "trace (ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "rebalance_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if the migrate speedup or the safety "
                             "audit regress below the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's measurement")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "migrate_speedup": results["migrate"]["speedup"],
            "tolerance": 0.15,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["pass"]:
        failed = [name for name, ok in [
            ("migrate speedup >= 1.3x", results["migrate"]["speedup_pass"]),
            ("exactly-once safety audit", results["safety"]["safety_pass"]),
        ] if not ok]
        print("FAILED criteria: " + "; ".join(failed), file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
