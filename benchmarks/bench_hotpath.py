"""Hot-path benchmark harness: the verification/encoding fast path.

Measures, before vs after the fast path (``PerfConfig`` switches plus the
process-wide wire cache):

1. **crypto** -- certificate-verification crypto ops per committed request
   on the sharded 4-shard kvstore workload (the cost-model quantity the
   Figure-4 benchmarks charge virtual time for);
2. **wallclock** -- simulator wall-clock events/second on the uniform
   kvstore workload (how fast the machine can push the simulation);
3. **batching** -- adaptive (AIMD) bundle sizing vs static
   ``bundle_size in {1, 4, 16}``: simulated throughput at high offered load
   and p50 latency at low load;
4. **micro** -- ``__slots__`` object sizes/instantiation rate and the event
   queue's O(1) length + cancelled-timer compaction.

Everything is written to ``BENCH_hotpath.json`` (machine-readable, with
explicit pass/fail flags per acceptance criterion).  ``--quick`` shrinks the
workloads for CI smoke runs; ``--check-regression`` compares the *after*
verify-op count per committed request against ``hotpath_baseline.json`` and
exits non-zero on a regression; ``--update-baseline`` rewrites the baseline
from the current measurement.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

from bench_common import current_observability, obs_enabled, set_observability
from repro.analysis import format_table
from repro.apps.kvstore import KeyValueStore
from repro.apps.null_service import NullService
from repro.config import (
    AuthenticationScheme,
    BatchingConfig,
    CryptoCosts,
    PerfConfig,
    PipelineConfig,
    SystemConfig,
    TimerConfig,
)
from repro.core import SeparatedSystem
from repro.sharding import ShardedSystem
from repro.util.wirecache import WIRE_CACHE
from repro.workloads import run_latency_benchmark, run_multishard_workload, run_open_loop

#: the crypto-op counters that constitute "certificate verification work"
VERIFY_OPS = ("mac_verify", "signature_verify", "threshold_share_verify",
              "threshold_verify")
#: their cache-hit counterparts (charged nothing, recorded for accounting)
VERIFY_CACHED_OPS = tuple(op + "_cached" for op in VERIFY_OPS) + ("certificate_cached",)

#: timers tuned so the saturated closed loop retransmits sparingly
HOTPATH_TIMERS = TimerConfig(client_retransmit_ms=400.0, agreement_retransmit_ms=200.0,
                             execution_fetch_ms=50.0, view_change_ms=1_000.0,
                             batch_timeout_ms=1.0)
#: cheap MACs and a 1 ms application so execution work dominates (as in
#: bench_shard_scaling) and the verification fast path is visible end to end
HOTPATH_CRYPTO = CryptoCosts(mac_ms=0.05, signature_sign_ms=0.5,
                             signature_verify_ms=0.1, threshold_share_ms=1.0,
                             threshold_combine_ms=0.2, threshold_verify_ms=0.1)

ADAPTIVE = BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=64)

FASTPATH_OFF = PerfConfig(verified_cert_cache=False, digest_memo=False,
                          shard_verify_owned_only=False)


def _set_fast_path(enabled: bool) -> None:
    """Enable/disable the process-wide wire cache (per-system switches are
    carried by ``PerfConfig``)."""
    WIRE_CACHE.configure(enabled=enabled)
    WIRE_CACHE.reset()


def print_section(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


# ---------------------------------------------------------------------- #
# Section 1 + 2: sharded kvstore, crypto ops and wall-clock events/sec.
# ---------------------------------------------------------------------- #


def build_sharded(perf: PerfConfig, num_shards: int = 4, seed: int = 42,
                  pipeline: PipelineConfig = None) -> ShardedSystem:
    import dataclasses

    # A 5 ms bundle-fill window lets the adaptive controller assemble
    # multi-request (and therefore multi-shard) bundles under the closed
    # loop; before/after use the identical batching configuration, so the
    # comparison isolates the verification fast path.  The pipeline is
    # pinned to the classic global watermark for the same reason: this
    # benchmark measures the verification/encoding fast path, and the
    # per-shard pipeline (which changes the bundle layout) is measured
    # separately by bench_skew.py.
    timers = dataclasses.replace(HOTPATH_TIMERS, batch_timeout_ms=5.0)
    config = SystemConfig.sharded(
        num_shards=num_shards, num_clients=16, pipeline_depth=64,
        checkpoint_interval=64, app_processing_ms=1.0,
        timers=timers, crypto=HOTPATH_CRYPTO,
        batching=ADAPTIVE, perf=perf,
        pipeline=pipeline if pipeline is not None else PipelineConfig(),
        observability=current_observability())
    return ShardedSystem(config, KeyValueStore, seed=seed)


def crypto_totals(system) -> Dict[str, int]:
    """Crypto-op counts summed over every process (servers and clients)."""
    totals: Dict[str, int] = {}
    for process in list(system.server_processes()) + list(system.clients):
        for op, count in process.stats.crypto_ops.items():
            totals[op] = totals.get(op, 0) + count
    return totals


def run_hotpath_workload(fast_path: bool, num_requests: int, seed: int = 42,
                         workload_seed: int = 7,
                         pipeline: PipelineConfig = None,
                         trace_output: Path = None):
    """One uniform 4-shard kvstore run; returns (result, metrics dict).

    ``seed`` drives the simulator (network jitter) and ``workload_seed`` the
    workload RNG; both are explicit so CI reruns are bit-identical.  With
    observability on, ``metrics["critical_path"]`` carries the per-stage
    breakdown folded from the run's trace (and ``trace_output``, when given,
    receives the raw trace as JSONL).
    """
    _set_fast_path(fast_path)
    system = build_sharded(PerfConfig() if fast_path else FASTPATH_OFF, seed=seed,
                           pipeline=pipeline)
    events_before = system.scheduler.events_processed
    wall_start = time.perf_counter()
    result = run_multishard_workload(
        system, label="fast path on" if fast_path else "fast path off",
        num_requests=num_requests, key_space=96, distribution="uniform",
        seed=workload_seed)
    wall_elapsed = max(time.perf_counter() - wall_start, 1e-9)
    events = system.scheduler.events_processed - events_before
    totals = crypto_totals(system)
    verify_ops = sum(totals.get(op, 0) for op in VERIFY_OPS)
    cached_hits = sum(totals.get(op, 0) for op in VERIFY_CACHED_OPS)
    metrics = {
        "completed": result.completed,
        "throughput_rps": result.throughput_rps,
        "mean_latency_ms": result.mean_latency_ms,
        "p95_latency_ms": result.p95_latency_ms,
        "verify_ops": verify_ops,
        "verify_ops_per_request": verify_ops / max(result.completed, 1),
        "verify_cache_hits": cached_hits,
        "digest_ops": totals.get("digest", 0),
        "digest_cached": totals.get("digest_cached", 0),
        "events_processed": events,
        "wall_seconds": wall_elapsed,
        "events_per_sec": events / wall_elapsed,
    }
    if system.config.observability.tracing:
        metrics["critical_path"] = system.critical_path()
        if trace_output is not None:
            system.export_trace_jsonl(str(trace_output))
    _set_fast_path(True)
    return result, metrics


def section_crypto_and_wallclock(quick: bool, seed: int = 42,
                                 workload_seed: int = 7,
                                 trace_output: Path = None) -> Dict:
    num_requests = 96 if quick else 240
    # Wall-clock measurement repeats: virtual metrics are deterministic, but
    # wall-clock is noisy, so take the best (least-interfered) of N runs.
    repeats = 1 if quick else 2
    before_runs = [run_hotpath_workload(False, num_requests, seed, workload_seed)
                   for _ in range(repeats)]
    # The first fast-path-on run is this benchmark's primary measured system:
    # its trace is the one exported and folded into the critical path.
    after_runs = [run_hotpath_workload(True, num_requests, seed, workload_seed,
                                       trace_output=trace_output if i == 0 else None)
                  for i in range(repeats)]
    before = before_runs[0][1]
    after = after_runs[0][1]
    before["events_per_sec"] = max(m["events_per_sec"] for _, m in before_runs)
    after["events_per_sec"] = max(m["events_per_sec"] for _, m in after_runs)
    # Hoist the primary run's breakdown out of the per-config metrics so the
    # results JSON carries exactly one copy, at the top level.
    before.pop("critical_path", None)
    critical_path = after.pop("critical_path", None)

    reduction = 1.0 - (after["verify_ops_per_request"]
                       / max(before["verify_ops_per_request"], 1e-9))
    speedup = after["events_per_sec"] / max(before["events_per_sec"], 1e-9)
    print_section("Hot path: certificate verification ops and wall-clock "
                  "events/sec (4-shard uniform kvstore)")
    print(format_table(
        ["config", "verify ops/req", "cache hits", "digest ops", "digest cached",
         "virtual rps", "events/sec"],
        [["fast path off", before["verify_ops_per_request"], before["verify_cache_hits"],
          before["digest_ops"], before["digest_cached"],
          before["throughput_rps"], before["events_per_sec"]],
         ["fast path on", after["verify_ops_per_request"], after["verify_cache_hits"],
          after["digest_ops"], after["digest_cached"],
          after["throughput_rps"], after["events_per_sec"]]]))
    print(f"verify-op reduction: {100 * reduction:.1f}%   "
          f"wall-clock speedup: {speedup:.2f}x")
    if critical_path is not None:
        from repro.analysis.critical_path import format_critical_path_table
        print()
        print(format_critical_path_table(
            critical_path, title="critical path, fast path on "
            f"({critical_path['traces']} completed traces)"))
    return {
        "critical_path": critical_path,
        "num_requests": num_requests,
        "before": before,
        "after": after,
        "verify_op_reduction": reduction,
        "verify_reduction_pass": reduction >= 0.30,
        "wallclock_speedup": speedup,
        "wallclock_pass": speedup >= 1.5,
    }


# ---------------------------------------------------------------------- #
# Section 3: adaptive vs static bundling.
# ---------------------------------------------------------------------- #


def build_batching_system(bundle, seed: int = 105) -> SeparatedSystem:
    """Null-service separated system with threshold reply certificates (the
    Figure-5 configuration, where bundling matters most).

    ``bundle`` is an int (static bundle size; sizes > 1 use the paper's
    fill-the-bundle flush timeout, as in ``bench_fig5_throughput``) or
    ``"adaptive"`` (AIMD under the same 100 ms flush-timeout bound -- at
    ``min_bundle == 1`` every light-load take is a full bundle taken at
    arrival time, so the timeout never actually delays a request).
    """
    import dataclasses

    timers = HOTPATH_TIMERS
    batching = BatchingConfig()
    bundle_size = 1
    if bundle == "adaptive":
        batching = ADAPTIVE
        timers = dataclasses.replace(timers, batch_timeout_ms=100.0)
    else:
        bundle_size = bundle
        if bundle > 1:
            timers = dataclasses.replace(timers, batch_timeout_ms=100.0)
    config = SystemConfig(
        num_clients=16, pipeline_depth=64, checkpoint_interval=128,
        bundle_size=bundle_size, batching=batching,
        authentication=AuthenticationScheme.THRESHOLD,
        timers=timers, observability=current_observability())
    return SeparatedSystem(config, NullService, seed=seed)


def section_batching(quick: bool) -> Dict:
    duration_ms = 800.0 if quick else 1_500.0
    high_load_rps = 400
    static_sizes = [1, 4, 16]
    high: Dict[str, float] = {}
    max_bundle_seen: Dict[str, int] = {}
    for bundle in static_sizes + ["adaptive"]:
        system = build_batching_system(bundle)
        result = run_open_loop(system, offered_load_rps=high_load_rps,
                               duration_ms=duration_ms, request_bytes=1024,
                               reply_bytes=1024, drain_ms=3_000.0)
        high[str(bundle)] = result.achieved_throughput_rps
        max_bundle_seen[str(bundle)] = max(
            replica.batcher.largest_batch for replica in system.agreement_replicas)

    low: Dict[str, float] = {}
    low_requests = 20 if quick else 40
    for bundle in [1, "adaptive"]:
        system = build_batching_system(bundle)
        latency = run_latency_benchmark(system, label=str(bundle),
                                        request_bytes=1024, reply_bytes=1024,
                                        requests=low_requests, warmup=5)
        low[str(bundle)] = latency.median_ms

    best_static = max(high[str(size)] for size in static_sizes)
    # "matches or beats": a 2% tolerance absorbs simulation noise from the
    # different retransmission trajectories of each configuration.
    high_pass = high["adaptive"] >= 0.98 * best_static
    p50_ratio = low["adaptive"] / max(low["1"], 1e-9)
    low_pass = p50_ratio <= 1.10

    print_section("Adaptive vs static bundling (null service, threshold replies)")
    print(format_table(
        ["bundle", f"high-load rps (offered {high_load_rps})", "largest bundle taken"],
        [[label, high[label], max_bundle_seen[label]]
         for label in [str(s) for s in static_sizes] + ["adaptive"]]))
    print(format_table(
        ["bundle", "low-load p50 ms"],
        [[label, low[label]] for label in ("1", "adaptive")]))
    print(f"adaptive vs best static throughput: {high['adaptive'] / best_static:.2f}x   "
          f"low-load p50 ratio vs bundle=1: {p50_ratio:.2f}")
    return {
        "high_load_rps_offered": high_load_rps,
        "high_load_throughput": high,
        "largest_bundle_taken": max_bundle_seen,
        "low_load_p50_ms": low,
        "high_load_pass": high_pass,
        "low_load_p50_ratio": p50_ratio,
        "low_load_pass": low_pass,
    }


# ---------------------------------------------------------------------- #
# Section 4: micro-benchmarks (__slots__ and the event queue).
# ---------------------------------------------------------------------- #


def section_micro(quick: bool) -> Dict:
    from repro.crypto.certificate import Authenticator
    from repro.sim.events import Event, EventQueue
    from repro.config import AuthenticationScheme as Scheme
    from repro.util.ids import execution_id

    count = 50_000 if quick else 200_000

    class DictEvent:
        """Reference point: the same fields without __slots__."""

        def __init__(self, time, sequence, callback, label="", cancelled=False,
                     fired=False, queue=None):
            self.time = time
            self.sequence = sequence
            self.callback = callback
            self.label = label
            self.cancelled = cancelled
            self.fired = fired
            self.queue = queue

    def instantiation_rate(factory) -> float:
        start = time.perf_counter()
        for i in range(count):
            factory(float(i), i, None)
        return count / max(time.perf_counter() - start, 1e-9)

    slotted_rate = instantiation_rate(lambda t, s, c: Event(time=t, sequence=s, callback=c))
    dict_rate = instantiation_rate(lambda t, s, c: DictEvent(t, s, c))

    event = Event(time=0.0, sequence=0, callback=lambda: None)
    auth = Authenticator(signer=execution_id(0), scheme=Scheme.MAC,
                         payload_digest=b"\x00" * 32, token={})

    # Event-queue compaction: push retransmit-style timers, cancel most of
    # them (the reply-arrived pattern), and check the heap stays compact.
    queue = EventQueue()
    events: List[Event] = []
    start = time.perf_counter()
    for i in range(count):
        events.append(queue.push(float(i), lambda: None, label="retransmit"))
        if i % 8 != 0:
            events[-1].cancel()
    push_cancel_rate = count / max(time.perf_counter() - start, 1e-9)
    live = len(queue)
    heap_entries = queue.heap_size

    print_section("Micro: __slots__ and event-queue compaction")
    print(format_table(
        ["metric", "value"],
        [["Event instantiations/sec (slotted)", slotted_rate],
         ["Event instantiations/sec (dict-based reference)", dict_rate],
         ["Event has __dict__", hasattr(event, "__dict__")],
         ["Event shallow bytes", sys.getsizeof(event)],
         ["DictEvent shallow bytes", sys.getsizeof(DictEvent(0.0, 0, None))
          + sys.getsizeof(DictEvent(0.0, 0, None).__dict__)],
         ["Authenticator has __dict__", hasattr(auth, "__dict__")],
         ["queue push+cancel ops/sec", push_cancel_rate],
         ["live events after cancels", live],
         ["heap entries after compaction", heap_entries]]))
    return {
        "event_instantiations_per_sec_slotted": slotted_rate,
        "event_instantiations_per_sec_dict": dict_rate,
        "event_slotted": not hasattr(event, "__dict__"),
        "authenticator_slotted": not hasattr(auth, "__dict__"),
        "event_shallow_bytes": sys.getsizeof(event),
        "queue_push_cancel_ops_per_sec": push_cancel_rate,
        "queue_live_after_cancels": live,
        "queue_heap_entries_after_cancels": heap_entries,
        "compaction_effective": heap_entries <= max(2 * live, 64),
    }


# ---------------------------------------------------------------------- #
# Harness entry point.
# ---------------------------------------------------------------------- #


def run_all(quick: bool, seed: int = 42, workload_seed: int = 7,
            trace_output: Path = None) -> Dict:
    results = {
        "benchmark": "hotpath",
        "mode": "quick" if quick else "full",
        "unix_time": time.time(),
        "seed": seed,
        "workload_seed": workload_seed,
        "observability": obs_enabled(),
        "crypto": section_crypto_and_wallclock(quick, seed, workload_seed,
                                               trace_output=trace_output),
        "batching": section_batching(quick),
        "micro": section_micro(quick),
    }
    critical_path = results["crypto"].pop("critical_path", None)
    if critical_path is not None:
        results["critical_path"] = critical_path
    # Virtual-time criteria are deterministic for a given seed and safe to
    # gate CI on; the wall-clock speedup depends on the machine and is
    # reported (and flagged) but never fails the exit status.
    results["deterministic_pass"] = all([
        results["crypto"]["verify_reduction_pass"],
        results["batching"]["high_load_pass"],
        results["batching"]["low_load_pass"],
    ])
    results["pass"] = results["deterministic_pass"] and results["crypto"]["wallclock_pass"]
    return results


def check_regression(results: Dict, baseline_path: Path) -> int:
    """Compare the deterministic verify-op metric against the baseline."""
    if not baseline_path.exists():
        print(f"regression check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    measured = results["crypto"]["after"]["verify_ops_per_request"]
    ceiling = baseline["verify_ops_per_committed_request"] * (1.0 + baseline["tolerance"])
    print(f"regression check: measured {measured:.2f} verify ops/request, "
          f"baseline {baseline['verify_ops_per_committed_request']:.2f} "
          f"(+{100 * baseline['tolerance']:.0f}% ceiling {ceiling:.2f})")
    if measured > ceiling:
        print("REGRESSION: verify-op count per committed request exceeds baseline",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads for CI smoke runs")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulator seed (network jitter); explicit so CI "
                             "reruns are bit-identical")
    parser.add_argument("--workload-seed", type=int, default=7,
                        help="workload-generator RNG seed")
    parser.add_argument("--output", type=Path, default=Path("BENCH_hotpath.json"))
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the metrics registry and request tracing "
                             "(the overhead gate compares this against the "
                             "default run; virtual-time results are identical)")
    parser.add_argument("--trace-output", type=Path,
                        default=Path("TRACE_hotpath.jsonl"),
                        help="JSONL destination for the primary run's trace "
                             "(ignored with --no-obs)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "hotpath_baseline.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if verify ops/request regress above the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's measurement")
    args = parser.parse_args(argv)

    set_observability(not args.no_obs)
    results = run_all(quick=args.quick, seed=args.seed,
                      workload_seed=args.workload_seed,
                      trace_output=None if args.no_obs else args.trace_output)
    args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.update_baseline:
        baseline = {
            "verify_ops_per_committed_request":
                results["crypto"]["after"]["verify_ops_per_request"],
            "tolerance": 0.15,
            "mode": results["mode"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote baseline {args.baseline}")
    if args.check_regression:
        status = check_regression(results, args.baseline)
    if not results["crypto"]["wallclock_pass"]:
        print("WARNING: wall-clock speedup below 1.5x on this machine "
              "(timing-dependent; not gated)", file=sys.stderr)
    if not results["deterministic_pass"]:
        failed = [name for name, ok in [
            ("verify reduction >= 30%", results["crypto"]["verify_reduction_pass"]),
            ("adaptive matches/beats static at high load",
             results["batching"]["high_load_pass"]),
            ("adaptive p50 within 10% of bundle=1 at low load",
             results["batching"]["low_load_pass"]),
        ] if not ok]
        print("FAILED criteria: " + "; ".join(failed), file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
