"""Ablation: what the separation of agreement from execution actually buys.

This is not a figure in the paper, but it quantifies the design claims the
paper makes in Sections 3 and 5.3 on our substrate:

* execution-replica count: 2g + 1 vs the coupled architecture's 3f + 1 --
  measured as application executions per client request;
* machine counts for each deployment (paper Section 5.3's accounting);
* per-request cryptographic operation counts across the whole system.
"""

from __future__ import annotations

import pytest

from bench_common import bench_config, print_section
from repro.analysis import format_table
from repro.apps.counter import CounterService, increment
from repro.config import AuthenticationScheme, Deployment, SystemConfig
from repro.core import CoupledSystem, SeparatedSystem

REQUESTS = 15


def _run(system):
    for _ in range(REQUESTS):
        system.invoke(increment(1))
    system.run(200.0)
    return system


def _app_executions(system, coupled: bool) -> int:
    if coupled:
        return sum(executor.requests_executed for executor in system.executors)
    return sum(node.requests_executed for node in system.execution_nodes)


def test_ablation_execution_work_per_request(benchmark):
    """Separation cuts application executions per request from 4 to 3 (f=g=1)."""
    def run_both():
        coupled = _run(CoupledSystem(bench_config(deployment=Deployment.SAME),
                                     CounterService, seed=108))
        separated = _run(SeparatedSystem(bench_config(), CounterService, seed=108))
        return coupled, separated

    coupled, separated = benchmark.pedantic(run_both, iterations=1, rounds=1)
    coupled_per_request = _app_executions(coupled, True) / REQUESTS
    separated_per_request = _app_executions(separated, False) / REQUESTS
    print_section("Ablation: application executions per client request")
    print(format_table(["architecture", "executions/request"],
                       [["coupled (BASE, 3f+1 = 4)", coupled_per_request],
                        ["separated (2g+1 = 3)", separated_per_request]]))
    assert coupled_per_request == pytest.approx(4.0, abs=0.2)
    assert separated_per_request == pytest.approx(3.0, abs=0.2)


def test_ablation_machine_counts(benchmark):
    """Machine accounting from Section 5.3 for one tolerated fault."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    rows = []
    for label, config in [
        ("BASE (coupled)", SystemConfig.base_coupled()),
        ("Separate (shared machines)", SystemConfig.separate_same_mac()),
        ("Separate (distinct machines)", SystemConfig.separate_different_mac()),
        ("Separate + privacy firewall", SystemConfig.privacy_firewall()),
    ]:
        rows.append([label, config.num_agreement_nodes, config.num_execution_nodes,
                     config.num_firewall_nodes, config.total_server_machines])
    print_section("Ablation: cluster and machine counts (f = g = h = 1)")
    print(format_table(["deployment", "agreement", "execution", "filters", "machines"],
                       rows))
    firewall = SystemConfig.privacy_firewall()
    assert firewall.total_server_machines == 9
    assert SystemConfig.separate_same_mac().total_server_machines == 4


def test_ablation_crypto_operation_mix(benchmark):
    """Threshold reply certificates trade MAC operations for expensive
    public-key work; MAC configurations do no public-key work at all."""
    # Keep this table-producing check visible under --benchmark-only by
    # registering a (trivial) timing round with the benchmark fixture.
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    mac_system = _run(SeparatedSystem(bench_config(), CounterService, seed=109))
    thresh_system = _run(SeparatedSystem(
        bench_config(authentication=AuthenticationScheme.THRESHOLD),
        CounterService, seed=109))
    mac_ops = mac_system.crypto_op_totals()
    thresh_ops = thresh_system.crypto_op_totals()
    print_section(f"Ablation: crypto operations for {REQUESTS} requests")
    keys = sorted(set(mac_ops) | set(thresh_ops))
    print(format_table(["operation", "Separate/MAC", "Separate/Thresh"],
                       [[k, mac_ops.get(k, 0), thresh_ops.get(k, 0)] for k in keys]))
    assert mac_ops.get("threshold_share", 0) == 0
    assert thresh_ops.get("threshold_share", 0) >= REQUESTS * 3
    assert mac_ops.get("mac_sign", 0) > 0
