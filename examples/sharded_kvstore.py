#!/usr/bin/env python3
"""Sharded key-value store: one agreement cluster, two execution clusters.

Builds the sharded architecture (``repro.sharding``): 4 agreement replicas
order every request, a deterministic hash partitioner routes each ordered
request to the execution cluster owning its key, and each shard's 3 replicas
execute, checkpoint, and answer independently.  The demo stores keys across
both shards, shows that each shard holds only its own slice of the state,
crashes one execution replica *in each shard* (within the per-shard ``g = 1``
bound), and shows the service still answering correctly.

The second act switches to range partitioning with **dynamic rebalancing**:
a hot key range saturates one cluster, the primary's rebalancer notices in
its per-shard load counters and splits the hot range through the agreement
log, and the partition-map epoch advances while the service keeps answering
-- every step observable in the printed load counters and epoch.  With
cross-shard operations enabled, a multi-key snapshot read then spans the
freshly split ranges at a consistent cut: one marker in the agreed order,
one certified fragment per touched cluster, one assembled reply.

Run with:  python examples/sharded_kvstore.py
"""

from repro import ShardedSystem, SystemConfig
from repro.apps.kvstore import KeyValueStore, get, multi_get, put
from repro.config import CrossShardConfig, RebalanceConfig
from repro.workloads import equal_range_boundaries
from repro.workloads.skew import skew_key


def rebalancing_demo() -> None:
    key_space, num_shards = 64, 2
    config = SystemConfig.sharded(
        num_shards=num_shards, strategy="range",
        range_boundaries=equal_range_boundaries(key_space, num_shards),
        num_clients=4, checkpoint_interval=16,
        rebalance=RebalanceConfig(enabled=True, check_interval_ms=50.0,
                                  cooldown_ms=150.0, hot_ratio=1.5,
                                  min_window_requests=16),
        cross_shard=CrossShardConfig(enabled=True))
    system = ShardedSystem(config, KeyValueStore, seed=7)

    print("Dynamic rebalancing (range partitioning, load-triggered splits):")
    print(f"  epoch {system.partition_epoch()}: {system.partition_map().describe()}")
    print("Hammering the hottest quarter of the key space "
          "(all on shard 0's range)...")
    for i in range(96):
        system.invoke(put(skew_key(i % 16), f"v{i}"), client_index=i % 4)
        if i in (31, 63, 95):
            window = system.shard_load_window()
            print(f"  after {i + 1:3d} requests: epoch "
                  f"{system.partition_epoch()}, load window {window}, "
                  f"total routed {system.shard_load_total()}")
    print(f"  final map (epoch {system.partition_epoch()}, "
          f"{system.epoch_cuts()} cuts applied):")
    print(f"    {system.partition_map().describe()}")
    record = system.invoke(get(skew_key(3)))
    owner = system.shard_of_key(skew_key(3))
    print(f"  get {skew_key(3)} -> {record.result.value['value']!r} "
          f"served by shard {owner} after the cut(s)")

    # A multi-key snapshot read across the live split: the keys now live on
    # different clusters, so the read is ordered as one consistent-cut
    # marker and every touched cluster contributes a g+1-certified fragment.
    keys = [skew_key(3), skew_key(12), skew_key(40)]
    owners = sorted({system.shard_of_key(key) for key in keys})
    record = system.invoke(multi_get(keys))
    values = record.result.value["values"]
    print(f"  multi_get across shards {owners} at one consistent cut:")
    for key in keys:
        print(f"    {key} (shard {system.shard_of_key(key)}) -> {values[key]!r}")
    client = system.clients[0]
    assert len(owners) > 1, "expected the split to spread the demo keys"
    assert client.cross_shard_completed >= 1
    print(f"  cross-shard markers ordered: "
          f"{system.message_queues[0].cross_shard_markers}, client epoch "
          f"cursor: {client.epoch}")


def main() -> None:
    config = SystemConfig.sharded(num_shards=2, num_clients=2,
                                  checkpoint_interval=8)
    system = ShardedSystem(config, KeyValueStore, seed=1)

    print("Deployment:")
    print(f"  agreement replicas : {config.num_agreement_nodes}  (3f+1, f={config.f})")
    print(f"  execution clusters : {config.num_execution_clusters} shards "
          f"x {config.num_execution_nodes} replicas  (2g+1, g={config.g})")
    print(f"  partitioning       : {config.sharding.strategy}")
    print()

    cities = {"lisbon": "PT", "austin": "US", "nagoya": "JP",
              "bergen": "NO", "quito": "EC", "dakar": "SN"}
    print("Storing six keys (the router picks each key's shard):")
    for key, value in cities.items():
        record = system.invoke(put(key, value))
        print(f"  put {key:<8} -> shard {system.shard_of_key(key)}   "
              f"latency={record.latency_ms:.2f} virtual ms")

    print()
    print("Each shard executed only its own slice of the agreed sequence:")
    for shard, executed in enumerate(system.requests_executed_by_shard()):
        replica = system.execution_node(shard, 0)
        keys = sorted(replica.app.snapshot())
        print(f"  shard {shard}: {executed} requests executed, state keys = {keys}")

    print()
    print("Crashing one execution replica in each shard (per-shard g=1 bound)...")
    system.crash_execution(0, 0)
    system.crash_execution(1, 2)
    for key, value in cities.items():
        record = system.invoke(get(key))
        assert record.result.value["value"] == value
        print(f"  get {key:<8} -> {record.result.value['value']}   "
              f"latency={record.latency_ms:.2f} virtual ms")

    print()
    print(f"All replies correct with one replica down per shard; "
          f"total requests executed: {system.total_requests_executed()}.")
    print(f"Per-shard load counters: {system.shard_load_total()}   "
          f"partition-map epoch: {system.partition_epoch()} "
          f"(hash partitioning never rebalances)")

    print()
    rebalancing_demo()


if __name__ == "__main__":
    main()
