#!/usr/bin/env python3
"""Sharded key-value store: one agreement cluster, two execution clusters.

Builds the sharded architecture (``repro.sharding``): 4 agreement replicas
order every request, a deterministic hash partitioner routes each ordered
request to the execution cluster owning its key, and each shard's 3 replicas
execute, checkpoint, and answer independently.  The demo stores keys across
both shards, shows that each shard holds only its own slice of the state,
crashes one execution replica *in each shard* (within the per-shard ``g = 1``
bound), and shows the service still answering correctly.

Run with:  python examples/sharded_kvstore.py
"""

from repro import ShardedSystem, SystemConfig
from repro.apps.kvstore import KeyValueStore, get, put


def main() -> None:
    config = SystemConfig.sharded(num_shards=2, num_clients=2,
                                  checkpoint_interval=8)
    system = ShardedSystem(config, KeyValueStore, seed=1)

    print("Deployment:")
    print(f"  agreement replicas : {config.num_agreement_nodes}  (3f+1, f={config.f})")
    print(f"  execution clusters : {config.num_execution_clusters} shards "
          f"x {config.num_execution_nodes} replicas  (2g+1, g={config.g})")
    print(f"  partitioning       : {config.sharding.strategy}")
    print()

    cities = {"lisbon": "PT", "austin": "US", "nagoya": "JP",
              "bergen": "NO", "quito": "EC", "dakar": "SN"}
    print("Storing six keys (the router picks each key's shard):")
    for key, value in cities.items():
        record = system.invoke(put(key, value))
        print(f"  put {key:<8} -> shard {system.shard_of_key(key)}   "
              f"latency={record.latency_ms:.2f} virtual ms")

    print()
    print("Each shard executed only its own slice of the agreed sequence:")
    for shard, executed in enumerate(system.requests_executed_by_shard()):
        replica = system.execution_node(shard, 0)
        keys = sorted(replica.app.snapshot())
        print(f"  shard {shard}: {executed} requests executed, state keys = {keys}")

    print()
    print("Crashing one execution replica in each shard (per-shard g=1 bound)...")
    system.crash_execution(0, 0)
    system.crash_execution(1, 2)
    for key, value in cities.items():
        record = system.invoke(get(key))
        assert record.result.value["value"] == value
        print(f"  get {key:<8} -> {record.result.value['value']}   "
              f"latency={record.latency_ms:.2f} virtual ms")

    print()
    print(f"All replies correct with one replica down per shard; "
          f"total requests executed: {system.total_requests_executed()}.")


if __name__ == "__main__":
    main()
