#!/usr/bin/env python3
"""A Byzantine fault tolerant NFS service (the paper's macro-benchmark app).

Replicates the in-memory NFS-like file service across the separated
architecture and runs a shortened Andrew-style workload against it, comparing
three deployments:

* an unreplicated server (no fault tolerance),
* the coupled BASE-style baseline (4 combined replicas),
* the separated architecture with the privacy firewall.

It also demonstrates the oblivious nondeterminism handling from Section 3.1.4:
file handles and timestamps are derived from the values the agreement cluster
picked, so all execution replicas agree on them without ever seeing the file
contents (in the firewall configuration they cannot even read the requests).

Run with:  python examples/replicated_nfs.py
"""

from repro import CoupledSystem, SeparatedSystem, SystemConfig, UnreplicatedSystem
from repro.apps.nfs import NfsService, nfs_create, nfs_getattr, nfs_mkdir, nfs_read, nfs_write
from repro.config import CryptoCosts
from repro.workloads import AndrewScale, run_andrew

#: the paper assumes hardware-accelerated threshold signatures for NFS runs
ACCELERATED = CryptoCosts().scaled(0.1)
SCALE = AndrewScale(directories=2, files_per_directory=2, compile_ms_per_file=1.0)


def demo_file_operations() -> None:
    print("-- basic replicated file operations (separated architecture) --")
    system = SeparatedSystem(SystemConfig.separate_different_mac(), NfsService, seed=3)
    system.invoke(nfs_mkdir("/project"))
    system.invoke(nfs_create("/project/report.txt"))
    system.invoke(nfs_write("/project/report.txt", 0, 512, data="quarterly numbers"))
    record = system.invoke(nfs_read("/project/report.txt", 0, 512))
    print(f"  read back: {record.result.value['data']!r}")
    attrs = system.invoke(nfs_getattr("/project/report.txt")).result.value["attributes"]
    print(f"  file handle (derived from agreed nondeterminism): {attrs['handle']}")
    handles = set()
    for node in system.execution_nodes:
        result = node.app.execute(nfs_getattr("/project/report.txt"),
                                  nondet=__import__("repro").NonDetInput.empty())
        handles.add(result.value["attributes"]["handle"])
    print(f"  all {len(system.execution_nodes)} replicas agree on the handle: "
          f"{len(handles) == 1}")
    print()


def demo_andrew_comparison() -> None:
    print("-- shortened Andrew workload across deployments (virtual ms) --")
    systems = {
        "no replication": UnreplicatedSystem(
            SystemConfig(f=0, g=0, crypto=ACCELERATED), NfsService, seed=4),
        "BASE (coupled)": CoupledSystem(
            SystemConfig.base_coupled(crypto=ACCELERATED), NfsService, seed=4),
        "privacy firewall": SeparatedSystem(
            SystemConfig.privacy_firewall(crypto=ACCELERATED), NfsService, seed=4),
    }
    results = {}
    for label, system in systems.items():
        results[label] = run_andrew(system, label=label, iterations=1, scale=SCALE)
    header = f"  {'deployment':<18} " + " ".join(f"ph{p:>8}" for p in range(1, 6)) + "      total"
    print(header)
    for label, result in results.items():
        phases = " ".join(f"{result.phase_ms[p]:>9.1f}" for p in range(1, 6))
        print(f"  {label:<18} {phases} {result.total_ms:>10.1f}")
    base = results["BASE (coupled)"].total_ms
    firewall = results["privacy firewall"].total_ms
    print(f"\n  firewall / BASE total time: {firewall / base:.2f}x "
          "(paper reports ~1.16x on its hardware)")


def main() -> None:
    demo_file_operations()
    demo_andrew_comparison()


if __name__ == "__main__":
    main()
