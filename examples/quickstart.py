#!/usr/bin/env python3
"""Quickstart: replicate a tiny counter service with separated agreement/execution.

Builds the paper's architecture (4 agreement replicas with message queues,
3 execution replicas, MAC-authenticated certificates) on the simulated
network, issues a few requests, and prints the replies and their virtual
latencies.  Then it crashes one execution replica and shows that the service
keeps answering correctly -- the core of the paper's claim that only
``2g + 1`` execution replicas are needed to tolerate ``g`` faults.

Run with:  python examples/quickstart.py
"""

from repro import SeparatedSystem, SystemConfig
from repro.apps.counter import CounterService, increment, read_counter


def main() -> None:
    config = SystemConfig.separate_different_mac(num_clients=2)
    system = SeparatedSystem(config, CounterService, seed=1)

    print("Deployment:")
    print(f"  agreement replicas : {config.num_agreement_nodes}  (3f+1, f={config.f})")
    print(f"  execution replicas : {config.num_execution_nodes}  (2g+1, g={config.g})")
    print()

    print("Issuing five increments from client C0:")
    for i in range(5):
        record = system.invoke(increment(1))
        print(f"  increment -> counter={record.result.value}   "
              f"latency={record.latency_ms:.2f} virtual ms   seq={record.seq}")

    print()
    print("Crashing execution replica E0 (within the g=1 fault bound)...")
    system.crash_execution(0)
    for i in range(3):
        record = system.invoke(increment(1))
        print(f"  increment -> counter={record.result.value}   "
              f"latency={record.latency_ms:.2f} virtual ms")

    final = system.invoke(read_counter())
    print()
    print(f"Final counter value: {final.result.value} (expected 8)")
    print("Crypto operations performed by the server side:")
    for op, count in sorted(system.crypto_op_totals().items()):
        print(f"  {op:<24} {count}")


if __name__ == "__main__":
    main()
