#!/usr/bin/env python3
"""A confidential key-value store behind the privacy firewall.

This example builds the full privacy-firewall deployment from Section 4 of
the paper: threshold-signed reply certificates, an ``(h+1) x (h+1)`` filter
array between the agreement and execution clusters, and end-to-end encrypted
request/reply bodies that only clients and execution nodes can read.

It then plays the adversary twice:

1. one execution replica is made Byzantine and reports corrupted values --
   the reply quorum masks it and clients keep seeing correct data;
2. another replica tries to leak plaintext reply bodies -- the tampered
   replies cannot gather a threshold signature, so correct filters drop them,
   and a network auditor confirms that nothing readable ever crossed the
   firewall boundary.

Run with:  python examples/confidential_kvstore.py
"""

from repro import SeparatedSystem, SystemConfig
from repro.apps.kvstore import KeyValueStore, get, put
from repro.faults import CorruptReplyBehaviour, LeakPlaintextBehaviour, make_byzantine
from repro.firewall.confidentiality import ConfidentialityAuditor


def build_system(seed: int = 7) -> SeparatedSystem:
    config = SystemConfig.privacy_firewall(num_clients=2)
    return SeparatedSystem(config, KeyValueStore, seed=seed)


def install_auditor(system: SeparatedSystem) -> ConfidentialityAuditor:
    sources = ([node.node_id for node in system.firewall.nodes]
               + [replica.node_id for replica in system.agreement_replicas])
    destinations = ([client.node_id for client in system.clients]
                    + [replica.node_id for replica in system.agreement_replicas])
    auditor = ConfidentialityAuditor(sources, destinations)
    auditor.install(system.network)
    return auditor


def main() -> None:
    system = build_system()
    auditor = install_auditor(system)
    firewall = system.firewall
    print("Privacy firewall deployment:")
    print(f"  filter grid        : {len(firewall.rows)} rows x {len(firewall.rows[0])} columns")
    print(f"  total machines     : {system.config.total_server_machines}")
    print()

    print("Storing confidential records...")
    system.invoke(put("alice/ssn", "123-45-6789"))
    system.invoke(put("bob/diagnosis", "classified"))
    record = system.invoke(get("alice/ssn"))
    print(f"  client reads alice/ssn -> {record.result.value['value']!r} "
          f"({record.latency_ms:.1f} virtual ms)")
    print()

    print("Adversary 1: execution replica E1 reports corrupted values")
    make_byzantine(system, CorruptReplyBehaviour(system.execution_nodes[1].node_id))
    record = system.invoke(get("bob/diagnosis"))
    print(f"  client still reads    -> {record.result.value['value']!r}")
    print()

    # A fresh deployment for the second adversary: each deployment tolerates
    # one faulty execution replica (g = 1), and the previous one already has one.
    print("Adversary 2: execution replica E2 strips encryption to leak plaintext")
    system = build_system(seed=8)
    auditor = install_auditor(system)
    system.invoke(put("alice/ssn", "123-45-6789"))
    leak = make_byzantine(system, LeakPlaintextBehaviour(system.execution_nodes[2].node_id))
    system.invoke(get("alice/ssn"))
    system.run(200.0)
    print(f"  tampered messages sent by E2 : {leak.messages_affected}")
    print(f"  plaintext observed below the firewall boundary: "
          f"{'NONE' if auditor.clean else [l.description for l in auditor.leaks]}")
    print()
    print("Output-set confidentiality held: every reply that crossed the "
          "boundary was encrypted and matched the agreed execution.")


if __name__ == "__main__":
    main()
