#!/usr/bin/env python3
"""Fault-tolerance walkthrough: crashes, Byzantine replies, and view changes.

Shows the failure behaviour the paper's architecture promises:

1. crash one execution replica         -> masked (2g+1 majority still answers);
2. make one execution replica lie      -> masked (replies need g+1 matching votes);
3. crash the agreement primary         -> a view change elects a new primary and
                                           the pending request still completes;
4. crash a second execution replica    -> the fault bound is exceeded, so the
                                           system stops answering (safety over
                                           liveness) rather than returning a
                                           wrong result.

Run with:  python examples/fault_tolerance_demo.py
"""

from repro import LivenessTimeoutError, SeparatedSystem, SystemConfig
from repro.apps.counter import CounterService, increment, read_counter
from repro.faults import CorruptReplyBehaviour, make_byzantine


def main() -> None:
    config = SystemConfig.separate_different_mac(num_clients=2)
    system = SeparatedSystem(config, CounterService, seed=9)
    print(f"Deployment: {config.num_agreement_nodes} agreement replicas, "
          f"{config.num_execution_nodes} execution replicas (f=g=1)\n")

    print("[1] Crash execution replica E0")
    system.crash_execution(0)
    record = system.invoke(increment(1))
    print(f"    request still completes: counter={record.result.value}")
    # Bring E0 back (it catches up from its peers) so that later steps stay
    # within the one-fault bound the deployment was sized for.
    system.execution_nodes[0].recover()
    system.run(200.0)
    print("    E0 recovered and caught up from its peers\n")

    print("[2] Execution replica E1 starts lying about results")
    behaviour = make_byzantine(system, CorruptReplyBehaviour(system.execution_nodes[1].node_id))
    record = system.invoke(increment(1))
    print(f"    corrupted replies sent: {behaviour.messages_affected}, "
          f"client still sees counter={record.result.value}\n")

    print("[3] Crash the agreement primary A0 (forces a view change)")
    system.crash_agreement(0)
    record = system.invoke(increment(1), timeout_ms=60_000.0)
    views = {replica.view for replica in system.agreement_replicas if not replica.crashed}
    print(f"    request completed in view {max(views)} "
          f"(was view 0); counter={record.result.value}\n")

    print("[4] Crash a second execution replica (exceeds the g=1 bound)")
    # E1 is still Byzantine; crashing E2 leaves only one correct execution
    # replica, so no g+1 = 2 matching correct replies can be collected.
    system.crash_execution(2)
    try:
        system.invoke(increment(1), timeout_ms=2_000.0)
        print("    unexpected: request completed")
    except LivenessTimeoutError:
        print("    request does NOT complete -- the system refuses to return a "
              "result it cannot vouch for (safety preserved, liveness lost)")

    print("\nCounter value observed by clients never skipped or repeated an "
          "increment while faults stayed within the tolerated bounds.")


if __name__ == "__main__":
    main()
