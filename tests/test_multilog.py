"""Multi-log ordering tests.

The safety-critical properties of the partitioned ordering plane:

* a cross-group marker (multi-shard read or write transaction spanning log
  groups) is released at one cross-log cut even when a touched log changes
  view mid-coordination -- the marker commits atomically under the new
  primary or not at all;
* a Byzantine coordinating primary cannot wedge or corrupt the cut: a
  silent coordinator is fallen over (every touched log's backups collate
  the cut themselves), and a tampered cut broadcast is rejected by the
  binding certificates and released through each queue's own assembly;
* a shard moving between log groups (`propose_log_map_change`) preserves
  exactly-once execution for traffic racing the move -- the epoch-versioned
  LogMap cut retargets clients and execution feeds without re-executing or
  losing any request;
* the `multilog` fuzz scenario replays bit-identically, so adversarial
  schedules over the coordination machinery are corpus material;
* proactive primary rotation (the `rotation_interval_checkpoints` knob)
  rotates every log's primary on schedule without deposing anyone and
  without costing more than the failover SLO in throughput.
"""

from __future__ import annotations

import dataclasses

import pytest

from conftest import CHEAP_CRYPTO, FAST_TIMERS
from repro.apps.kvstore import KeyValueStore, get, put, transaction
from repro.config import CrossShardConfig, SystemConfig
from repro.faults import FaultInjector, FaultPlan
from repro.net.faults import LinkFault
from repro.fuzz import FaultSchedule, ScheduleEvent, run_schedule
from repro.fuzz.oracles import ExactlyOnceOracle
from repro.multilog import MultiLogSystem
from repro.workloads import equal_range_boundaries, seed_operations
from repro.workloads.crossshard import audit_key
from repro.workloads.skew import skew_key

KEY_SPACE = 64
NUM_LOGS = 2
NUM_SHARDS = 4


def make_system(num_logs=NUM_LOGS, num_shards=NUM_SHARDS, num_clients=4,
                seed=33, **overrides):
    kwargs = dict(
        num_clients=num_clients, pipeline_depth=16, checkpoint_interval=8,
        bundle_size=1, timers=FAST_TIMERS, crypto=CHEAP_CRYPTO,
        cross_shard=CrossShardConfig(enabled=True))
    kwargs.update(overrides)
    config = SystemConfig.multilog_sharded(
        num_logs=num_logs, num_shards=num_shards, strategy="range",
        range_boundaries=equal_range_boundaries(KEY_SPACE, num_shards),
        **kwargs)
    return MultiLogSystem(config, KeyValueStore, seed=seed)


def seed_system(system):
    for operation in seed_operations(KEY_SPACE, system.num_shards):
        system.invoke(operation)


def cross_group_txn(stamp, num_shards=NUM_SHARDS):
    """A write-only transaction stamping every shard's audit key."""
    return transaction(reads={}, writes={
        audit_key(KEY_SPACE, num_shards, shard): stamp
        for shard in range(num_shards)})


def audit_value(system, shard):
    """The audit stamp on every correct replica of ``shard`` (must agree)."""
    key = audit_key(KEY_SPACE, system.num_shards, shard)
    values = {node.app.snapshot().get(key)
              for node in system.execution_cluster(shard) if not node.crashed}
    assert len(values) == 1, f"replicas of shard {shard} diverge on {key!r}"
    return values.pop()


def all_queues(system):
    return list(system.message_queues)


def key_on(system, shard):
    """A key owned by ``shard`` at log epoch 0."""
    return skew_key((KEY_SPACE * (2 * shard + 1)) // (2 * system.num_shards))


# ---------------------------------------------------------------------- #
# Construction and single-group flow.
# ---------------------------------------------------------------------- #


class TestConstruction:
    def test_refuses_single_log(self):
        from repro.errors import ConfigurationError
        config = SystemConfig.multilog_sharded(
            num_logs=1, num_shards=2, strategy="range",
            range_boundaries=equal_range_boundaries(KEY_SPACE, 2))
        with pytest.raises(ConfigurationError):
            MultiLogSystem(config, KeyValueStore)

    def test_single_group_requests_stay_in_their_log(self):
        system = make_system()
        record = system.invoke(put(key_on(system, 0), "a"))
        assert record.result.error is None
        record = system.invoke(put(key_on(system, 3), "b"))
        assert record.result.error is None
        assert system.invoke(get(key_on(system, 0))).result.value["value"] == "a"
        assert system.invoke(get(key_on(system, 3))).result.value["value"] == "b"
        # Neither request spanned log groups, so no coordination ran.
        assert all(queue.cross_log_markers == 0 for queue in all_queues(system))


# ---------------------------------------------------------------------- #
# Marker atomicity across a view change in one touched log.
# ---------------------------------------------------------------------- #


class TestViewChangeAtomicity:
    def test_cross_group_txn_survives_view_change_in_touched_log(self):
        system = make_system()
        seed_system(system)
        client = system.clients[0]
        before = len(client.completed)
        # Crash log 1's primary before the marker arrives: log 1 can only
        # order its leg of the marker after a view change, so the cut is
        # necessarily assembled across the old view (log 0's binding) and
        # the new one (log 1's), and the view change is guaranteed.
        system.log_primary(1).crash()
        client.submit(cross_group_txn("vc-stamp"))
        system.run_until(lambda: len(client.completed) == before + 1, 30_000.0,
                         "cross-group txn after view change")
        record = client.completed[-1]
        assert record.result.error is None
        assert record.result.value.get("committed") is True
        # Atomic release: every shard of every group applied the stamp,
        # and replicas within each shard agree.
        for shard in range(system.num_shards):
            assert audit_value(system, shard) == "vc-stamp"
        # The touched log really did change view.
        survivors = [replica for replica in system.log_replicas[1]
                     if not replica.crashed]
        assert max(replica.view for replica in survivors) > 0


# ---------------------------------------------------------------------- #
# Byzantine coordinating primary: fallover and corrupt-cut rejection.
# ---------------------------------------------------------------------- #


class TestByzantineCoordinator:
    def test_silent_coordinator_falls_over(self):
        system = make_system()
        seed_system(system)
        # The coordinator is the lowest touched log's primary (log 0).
        system.log_primary(0).local.suppress_cut_broadcast = True
        record = system.invoke(cross_group_txn("quiet"), timeout_ms=30_000.0)
        assert record.result.value.get("committed") is True
        # Let the backups' fallover timers fire: one of them collates and
        # broadcasts the cut the silent coordinator withheld.
        system.run(2_000.0)
        assert sum(queue.cut_fallovers for queue in all_queues(system)) > 0
        for shard in range(system.num_shards):
            assert audit_value(system, shard) == "quiet"

    def test_corrupt_cut_broadcast_rejected_and_released(self):
        system = make_system()
        seed_system(system)
        coordinator = system.log_primary(0)
        coordinator.local.corrupt_cut_broadcast = True
        # Slow the log-0 backups' bindings toward one log-1 backup: the
        # tampered cut (fast link from the coordinator) reaches it while it
        # is still holding -- a released queue skips cut verification
        # entirely, so only a still-holding one exercises the rejection.
        victim = next(replica for replica in system.log_replicas[1]
                      if not replica.is_primary)
        injector = FaultInjector(system)
        plan = FaultPlan()
        for replica in system.log_replicas[0]:
            if replica is not coordinator:
                plan.link_fault(replica.node_id, victim.node_id,
                                LinkFault(extra_delay_ms=60.0), at_ms=0.0)
        injector.install(plan)
        record = system.invoke(cross_group_txn("tamper"), timeout_ms=30_000.0)
        assert record.result.value.get("committed") is True
        system.run(2_000.0)
        # The tampered cut was rejected against the f+1-signer binding
        # certificates; the slow queue released through its own assembly.
        assert sum(queue.invalid_cuts for queue in all_queues(system)) > 0
        for shard in range(system.num_shards):
            assert audit_value(system, shard) == "tamper"


# ---------------------------------------------------------------------- #
# Exactly-once across a shard moving between log groups.
# ---------------------------------------------------------------------- #


class TestLogMapChange:
    def test_exactly_once_across_shard_move(self):
        system = make_system()
        seed_system(system)
        moving = 1  # owned by log 0 initially; moves to log 1
        clients = system.clients
        # Traffic over the moving shard (distinct values, so the final
        # state pins down which writes executed) plus other-shard noise.
        operations = []
        for index in range(40):
            shard = (moving, 0, 3)[index % 3]
            operations.append((shard, put(key_on(system, shard), f"v{index}")))
        for index, (shard, operation) in enumerate(operations):
            # One client owns the moving shard's writes, so their commit
            # order (and thus the key's final value) is the submission
            # order; the rest spread the noise traffic.
            if shard == moving:
                clients[0].submit(operation)
            else:
                clients[1 + index % (len(clients) - 1)].submit(operation)
        system.run(5.0)
        moved = False
        deadline = system.now + 20_000.0
        while not moved and system.now < deadline:
            moved = system.propose_log_map_change(moving, 1)
            if not moved:
                system.run(10.0)
        assert moved, "log-map change was never accepted"
        expected = len(seed_operations(KEY_SPACE, system.num_shards)) + len(
            operations)
        system.run_until(lambda: system.total_completed() >= expected,
                         30_000.0, "traffic across the shard move")
        system.run(500.0)  # quiesce retransmissions
        # The LogMap advanced one epoch and every queue reached it.
        assert system.log_registry.latest.log_of(moving) == 1
        assert all(queue.log_epoch == 1 for queue in all_queues(system))
        # Exactly-once: the oracle audits duplicate completions and
        # replies no cluster stands behind.
        violations = ExactlyOnceOracle().check(system, completed_all=True)
        assert violations == [], [v.detail for v in violations]
        # The moved shard's replicas agree on the last committed write.
        last_value = f"v{max(i for i in range(40) if i % 3 == 0)}"
        values = {node.app.snapshot().get(key_on(system, moving))
                  for node in system.execution_cluster(moving)
                  if not node.crashed}
        assert values == {last_value}
        # And the new owner serves reads for the moved shard.
        record = system.invoke(get(key_on(system, moving)))
        assert record.result.value["value"] == last_value


# ---------------------------------------------------------------------- #
# Fuzz scenario: bit-identical replay over the coordination machinery.
# ---------------------------------------------------------------------- #

MULTILOG_SCHEDULE = FaultSchedule(
    scenario="multilog", seed=3, workload_seed=5, num_requests=30,
    events=(ScheduleEvent(kind="crash", at_ms=20.0, duration_ms=120.0,
                          node="agreement:1"),
            ScheduleEvent(kind="log_move", at_ms=60.0, key_index=1,
                          owner=1)))


class TestMultilogFuzzScenario:
    def test_schedule_completes_with_invariants(self):
        result = run_schedule(MULTILOG_SCHEDULE)
        assert result.completed_all
        assert result.ok, [v.to_json_dict() for v in result.violations]
        # The schedule exercised the coordination machinery, not just the
        # per-log fast path.
        assert result.stats["cross_log_markers"] > 0
        assert result.stats["cuts_broadcast"] > 0
        assert result.stats["log_epoch"] == 1  # the log_move gene landed

    def test_bit_identical_replay(self):
        first = run_schedule(MULTILOG_SCHEDULE)
        second = run_schedule(MULTILOG_SCHEDULE)
        assert second.replay_digest == first.replay_digest
        assert second.fingerprint == first.fingerprint

    def test_log_move_is_noop_gene_on_single_log_scenarios(self):
        schedule = FaultSchedule(
            scenario="sharded", seed=0, workload_seed=0, num_requests=10,
            events=(ScheduleEvent(kind="log_move", at_ms=10.0, key_index=0,
                                  owner=1),))
        result = run_schedule(schedule)
        assert result.completed_all
        assert result.ok


# ---------------------------------------------------------------------- #
# Proactive primary rotation.
# ---------------------------------------------------------------------- #

#: planned rotations may cost at most this fraction of fault-free
#: throughput (the failover SLO the reactive path is gated on)
ROTATION_SLO = 0.8


def _drive_single_group(system, num_requests):
    """Submit single-group traffic; returns virtual time to complete it."""
    base = system.total_completed()
    for index in range(num_requests):
        shard = index % system.num_shards
        operation = put(key_on(system, shard), f"r{index}")
        system.clients[index % len(system.clients)].submit(operation)
    start = system.now
    system.run_until(
        lambda: system.total_completed() >= base + num_requests,
        120_000.0, "rotation workload")
    return system.now - start


class TestProactiveRotation:
    def test_each_log_rotates_without_deposing(self):
        timers = dataclasses.replace(FAST_TIMERS,
                                     rotation_interval_checkpoints=2)
        system = make_system(timers=timers)
        _drive_single_group(system, 160)
        for log in range(system.num_logs):
            replicas = system.log_replicas[log]
            assert sum(r.planned_rotations for r in replicas) > 0, \
                f"log {log} never rotated"
            assert max(r.view for r in replicas) > 0
            # Planned rotations skip the deposed-marking: the outgoing
            # primary stays in the rotation for future views.
            assert sum(r.primaries_deposed for r in replicas) == 0

    def test_rotation_throughput_within_failover_slo(self):
        elapsed = {}
        for label, interval in (("steady", None), ("rotating", 2)):
            timers = dataclasses.replace(
                FAST_TIMERS, rotation_interval_checkpoints=interval)
            system = make_system(timers=timers)
            elapsed[label] = _drive_single_group(system, 160)
        # Same workload, same seeds: planned rotations may not stretch the
        # completion time beyond the failover SLO's throughput floor.
        assert elapsed["rotating"] <= elapsed["steady"] / ROTATION_SLO, (
            f"rotation cost too high: {elapsed['rotating']:.1f}ms vs "
            f"{elapsed['steady']:.1f}ms steady")
