"""Privacy-firewall integration tests (Section 4 of the paper).

These tests check the two halves of the confidentiality argument:

* **filtering** -- minority/corrupt replies from faulty execution nodes never
  reach clients, because a correct filter only forwards replies carrying a
  complete threshold-signed certificate over the agreed reply body;
* **restriction** -- nodes below the correct cut (agreement nodes, filters,
  and the network between them) only ever see encrypted request and reply
  bodies, so even a compromised agreement node cannot reveal application
  data.
"""

import pytest

from conftest import make_config
from repro.apps.counter import CounterService, increment
from repro.apps.kvstore import KeyValueStore, get, put
from repro.config import AuthenticationScheme
from repro.core import SeparatedSystem
from repro.errors import LivenessTimeoutError, TopologyError
from repro.faults import CorruptReplyBehaviour, LeakPlaintextBehaviour, make_byzantine
from repro.firewall.confidentiality import ConfidentialityAuditor
from repro.messages.reply import BatchReply, ClientReply
from repro.messages.request import EncryptedBody, RequestEnvelope
from repro.util.ids import Role


def firewall_system(app_factory, seed=41, **overrides):
    config = make_config(authentication=AuthenticationScheme.THRESHOLD,
                         use_privacy_firewall=True, **overrides)
    return SeparatedSystem(config, app_factory, seed=seed)


def install_auditor(system):
    """Audit everything sent from the firewall boundary towards clients and
    agreement nodes (the region an attacker below the correct cut can see)."""
    sources = ([node.node_id for node in system.firewall.nodes]
               + [replica.node_id for replica in system.agreement_replicas])
    destinations = ([client.node_id for client in system.clients]
                    + [replica.node_id for replica in system.agreement_replicas])
    auditor = ConfidentialityAuditor(sources, destinations)
    auditor.install(system.network)
    return auditor


class TestFirewallOperation:
    def test_end_to_end_through_the_firewall(self):
        system = firewall_system(CounterService)
        values = [system.invoke(increment(1)).result.value for _ in range(4)]
        assert values == [1, 2, 3, 4]

    def test_filters_forward_requests_and_replies(self):
        system = firewall_system(CounterService)
        system.invoke(increment(1))
        system.run(50.0)
        assert any(node.requests_forwarded > 0 for node in system.firewall.nodes)
        assert any(node.replies_forwarded > 0 for node in system.firewall.nodes)

    def test_topology_blocks_client_to_execution(self):
        system = firewall_system(CounterService)
        client = system.clients[0]
        execution = system.execution_nodes[0]
        assert not system.network.topology.allows(client.node_id, execution.node_id)
        with pytest.raises(TopologyError):
            system.network.send(client.node_id, execution.node_id,
                                RequestEnvelope(certificate=None))  # type: ignore[arg-type]

    def test_topology_blocks_agreement_to_execution(self):
        system = firewall_system(CounterService)
        replica = system.agreement_replicas[0]
        execution = system.execution_nodes[0]
        assert not system.network.topology.allows(replica.node_id, execution.node_id)

    def test_tolerates_one_crashed_filter(self):
        system = firewall_system(CounterService)
        system.crash_firewall(0, 0)
        values = [system.invoke(increment(1)).result.value for _ in range(3)]
        assert values == [1, 2, 3]
        assert system.firewall.correct_cut_exists()
        assert system.firewall.correct_path_exists()

    def test_crashing_a_whole_row_breaks_availability(self):
        """With h + 1 = 2 faulty filters in one row there is no correct path;
        the system stops answering (but never leaks or lies)."""
        system = firewall_system(CounterService)
        system.crash_firewall(1, 0)
        system.crash_firewall(1, 1)
        assert not system.firewall.correct_path_exists()
        with pytest.raises(LivenessTimeoutError):
            system.invoke(increment(1), timeout_ms=2_000.0)

    def test_filter_and_execution_fault_together_are_tolerated(self):
        system = firewall_system(CounterService)
        system.crash_firewall(0, 1)
        system.crash_execution(0)
        values = [system.invoke(increment(1)).result.value for _ in range(3)]
        assert values == [1, 2, 3]


class TestConfidentiality:
    def test_request_and_reply_bodies_are_encrypted_below_the_firewall(self):
        system = firewall_system(KeyValueStore)
        auditor = install_auditor(system)
        system.invoke(put("secret-key", "secret-value"))
        system.invoke(get("secret-key"))
        system.run(100.0)
        assert auditor.clean, [leak.description for leak in auditor.leaks]
        assert auditor.reply_observations, "auditor should have seen reply traffic"

    def test_clients_still_read_their_replies(self):
        system = firewall_system(KeyValueStore)
        system.invoke(put("k", "v"))
        record = system.invoke(get("k"))
        assert record.result.value == {"value": "v", "found": True}

    def test_agreement_nodes_cannot_open_reply_bodies(self):
        system = firewall_system(KeyValueStore)
        system.invoke(put("k", "v"))
        system.run(100.0)
        cached = system.message_queues[0].cache.get(system.clients[0].node_id)
        assert cached is not None
        assert isinstance(cached.reply.result, EncryptedBody)
        assert not cached.reply.result.can_open(Role.AGREEMENT)
        assert not cached.reply.result.can_open(Role.FIREWALL)

    def test_corrupt_execution_replies_are_filtered_not_delivered(self):
        """A faulty execution node sends corrupted reply bodies: its share no
        longer matches the quorum, the threshold signature is formed from the
        correct replicas, and clients only ever see the correct answer."""
        system = firewall_system(CounterService)
        liar = system.execution_nodes[0].node_id
        behaviour = make_byzantine(system, CorruptReplyBehaviour(liar))
        values = [system.invoke(increment(1)).result.value for _ in range(4)]
        assert values == [1, 2, 3, 4]
        assert behaviour.messages_affected > 0

    def test_plaintext_leak_attempt_is_blocked_by_the_correct_cut(self):
        """A faulty execution node strips encryption from its replies.  The
        tampered body cannot gather a threshold quorum, so correct filters
        drop it and no plaintext crosses the boundary."""
        system = firewall_system(KeyValueStore)
        leaker = system.execution_nodes[0].node_id
        behaviour = make_byzantine(system, LeakPlaintextBehaviour(leaker))
        auditor = install_auditor(system)
        system.invoke(put("credit-card", "4111-1111"))
        system.invoke(get("credit-card"))
        system.run(100.0)
        assert behaviour.messages_affected > 0
        assert auditor.clean, [leak.description for leak in auditor.leaks]

    def test_output_set_matches_reference_execution(self):
        """Output-set confidentiality: every reply body that crossed the
        boundary matches what a single correct unreplicated server produces
        for the agreed request sequence."""
        system = firewall_system(KeyValueStore)
        auditor = install_auditor(system)
        operations = [put("a", 1), put("b", 2), get("a"), get("b")]
        records = [system.invoke(operation) for operation in operations]
        system.run(100.0)

        from repro.apps.kvstore import KeyValueStore as Reference
        from repro.crypto.digest import digest
        from repro.statemachine.nondet import NonDetInput

        reference = Reference()
        reference_digests = {}
        client = system.clients[0].node_id
        for record, operation in zip(records, operations):
            expected = reference.execute(operation, NonDetInput.empty())
            assert record.result.value == expected.value
            reference_digests[(client, record.timestamp)] = digest(
                EncryptedBody(record.result,
                              readers=frozenset({Role.CLIENT, Role.EXECUTION})
                              ).to_wire())
        # Observed ciphertext digests must be consistent per (client, request):
        # the firewall never lets two different bodies through for one request.
        for (obs_client, timestamp), digests in auditor.observed_result_digests().items():
            assert len(digests) == 1

    def test_correct_cut_and_path_predicates(self):
        system = firewall_system(CounterService)
        assert system.firewall.correct_cut_exists()
        assert system.firewall.correct_path_exists()
        system.crash_firewall(0, 0)
        system.crash_firewall(1, 1)
        # One fault per row: still a correct path (diagonal) but no fully
        # correct row -- with h=1 this configuration exceeds the bound.
        assert system.firewall.correct_path_exists()
        assert not system.firewall.correct_cut_exists()
