"""Tests for the workload generators and the analysis (Figure 4) cost model."""

import pytest

from conftest import make_config
from repro.analysis import (
    BASE_COST_MODEL,
    PRIVACY_COST_MODEL,
    SEPARATE_COST_MODEL,
    format_table,
    relative_cost,
    relative_cost_curve,
    summarize_latencies,
)
from repro.analysis.cost_model import crossover_app_processing_ms
from repro.analysis.metrics import ThroughputSummary, percentile
from repro.apps.counter import CounterService
from repro.apps.nfs import NfsService
from repro.apps.null_service import NullService
from repro.config import CryptoCosts
from repro.core import SeparatedSystem, UnreplicatedSystem
from repro.workloads import (
    AndrewScale,
    andrew_phase_operations,
    run_andrew,
    run_latency_benchmark,
    run_open_loop,
)


class TestCostModel:
    def test_base_matches_hand_computation(self):
        # relativeCost = (4*app + 8*0.2 + 36*0.2/batch) / app
        assert relative_cost(BASE_COST_MODEL, 10.0, 1) == pytest.approx(
            (4 * 10.0 + 1.6 + 7.2) / 10.0)

    def test_separate_beats_base_without_firewall_everywhere(self):
        """Paper: 'Without the privacy firewall overhead, our separate
        architecture has a lower cost than BASE for all request sizes.'"""
        for app_ms in (1, 2, 5, 10, 50, 100):
            for batch in (1, 10, 100):
                assert relative_cost(SEPARATE_COST_MODEL, app_ms, batch) < \
                    relative_cost(BASE_COST_MODEL, app_ms, batch)

    def test_asymptotic_advantage_is_one_third(self):
        """As application processing dominates, Separate costs 3 execution
        replicas against BASE's 4 -- a 33% saving."""
        ratio = (relative_cost(BASE_COST_MODEL, 10_000.0, 10)
                 / relative_cost(SEPARATE_COST_MODEL, 10_000.0, 10))
        assert ratio == pytest.approx(4 / 3, rel=0.01)

    def test_privacy_firewall_expensive_without_batching(self):
        """Paper: 'With small requests and without batching, the privacy
        firewall does greatly increase cost.'"""
        assert relative_cost(PRIVACY_COST_MODEL, 1.0, 1) > \
            2 * relative_cost(BASE_COST_MODEL, 1.0, 1)

    def test_privacy_crossover_near_5ms_at_batch_10(self):
        """Paper: with bundles of 10, the privacy firewall costs less than
        BASE once requests take more than about 5 ms."""
        crossover = crossover_app_processing_ms(PRIVACY_COST_MODEL, BASE_COST_MODEL,
                                                batch_size=10)
        assert 2.0 < crossover < 8.0
        assert relative_cost(PRIVACY_COST_MODEL, 10.0, 10) < \
            relative_cost(BASE_COST_MODEL, 10.0, 10)

    def test_privacy_crossover_below_1ms_at_batch_100(self):
        """Paper: with bundles of 100 the crossover drops to ~0.2 ms."""
        crossover = crossover_app_processing_ms(PRIVACY_COST_MODEL, BASE_COST_MODEL,
                                                batch_size=100)
        assert crossover < 1.0

    def test_batching_reduces_cost(self):
        assert relative_cost(PRIVACY_COST_MODEL, 1.0, 100) < \
            relative_cost(PRIVACY_COST_MODEL, 1.0, 10) < \
            relative_cost(PRIVACY_COST_MODEL, 1.0, 1)

    def test_curve_generation(self):
        curve = relative_cost_curve(SEPARATE_COST_MODEL, 10, [1.0, 10.0, 100.0])
        assert len(curve) == 3
        assert curve[0].relative_cost > curve[-1].relative_cost

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            relative_cost(BASE_COST_MODEL, 0.0, 1)
        with pytest.raises(ValueError):
            relative_cost(BASE_COST_MODEL, 1.0, 0)

    def test_custom_crypto_costs(self):
        cheap = CryptoCosts(mac_ms=0.0, threshold_share_ms=0.0, threshold_verify_ms=0.0)
        assert relative_cost(PRIVACY_COST_MODEL, 1.0, 1, cheap) == pytest.approx(3.0)


class TestMetrics:
    def test_summary_statistics(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.samples == 5
        assert summary.min_ms == 1.0
        assert summary.max_ms == 100.0
        assert summary.mean_ms == pytest.approx(22.0)
        assert summary.p95_ms == 100.0

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_percentile_requires_samples(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_throughput_summary(self):
        summary = ThroughputSummary(completed=50, window_ms=1_000.0)
        assert summary.requests_per_second == pytest.approx(50.0)
        assert ThroughputSummary(completed=5, window_ms=0.0).requests_per_second == 0.0

    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.5], ["b", 2.0]], title="T")
        assert "name" in text and "1.50" in text and text.startswith("T")


class TestWorkloads:
    def test_latency_benchmark_reports_statistics(self):
        system = SeparatedSystem(make_config(), NullService, seed=61)
        result = run_latency_benchmark(system, label="test", requests=10, warmup=2)
        assert result.samples == 10
        assert 0 < result.min_ms <= result.mean_ms <= result.max_ms
        assert result.row()

    def test_latency_grows_with_reply_size(self):
        small = run_latency_benchmark(SeparatedSystem(make_config(), NullService, seed=62),
                                      label="small", request_bytes=40, reply_bytes=40,
                                      requests=8, warmup=2)
        large = run_latency_benchmark(SeparatedSystem(make_config(), NullService, seed=62),
                                      label="large", request_bytes=40, reply_bytes=65536,
                                      requests=8, warmup=2)
        assert large.mean_ms > small.mean_ms

    def test_open_loop_reports_throughput(self):
        system = SeparatedSystem(make_config(num_clients=8), NullService, seed=63)
        result = run_open_loop(system, offered_load_rps=200.0, duration_ms=500.0,
                               drain_ms=500.0)
        assert result.completed > 0
        assert result.achieved_throughput_rps > 0
        assert result.mean_response_ms > 0

    def test_andrew_phase_operations_cover_all_phases(self):
        scale = AndrewScale(directories=2, files_per_directory=2)
        for phase in range(1, 6):
            operations = andrew_phase_operations(phase, 0, scale)
            assert operations
        with pytest.raises(ValueError):
            andrew_phase_operations(6, 0, scale)

    def test_andrew_runs_against_unreplicated_nfs(self):
        system = UnreplicatedSystem(make_config(f=0, g=0), NfsService, seed=64)
        result = run_andrew(system, label="norep", iterations=1,
                            scale=AndrewScale(directories=2, files_per_directory=2))
        assert set(result.phase_ms) == {1, 2, 3, 4, 5}
        assert result.total_ms > 0
        assert result.row()

    def test_andrew_runs_against_separated_nfs(self):
        system = SeparatedSystem(make_config(), NfsService, seed=65)
        result = run_andrew(system, label="separated", iterations=1,
                            scale=AndrewScale(directories=2, files_per_directory=2))
        assert result.total_ms > 0
        # Every correct execution replica holds the same file tree afterwards.
        trees = {tuple(node.app.tree()) for node in system.execution_nodes}
        assert len(trees) == 1
