"""Tests for utilities: node ids, canonical encoding, quorum arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.util.encoding import canonical_encode, estimate_size
from repro.util.ids import (
    NodeId,
    Role,
    agreement_id,
    client_id,
    execution_id,
    firewall_id,
    server_id,
)
from repro.util.quorum import (
    agreement_cluster_size,
    agreement_quorum,
    coupled_reply_quorum,
    execution_cluster_size,
    firewall_grid_size,
    has_quorum,
    max_agreement_faults,
    max_execution_faults,
    reply_quorum,
)


class TestNodeIds:
    def test_names(self):
        assert agreement_id(0).name == "A0"
        assert execution_id(2).name == "E2"
        assert client_id(3).name == "C3"
        assert firewall_id(1, 0).name == "F1.0"
        assert server_id().name == "S0"

    def test_firewall_requires_row(self):
        with pytest.raises(ValueError):
            NodeId(Role.FIREWALL, 0)

    def test_non_firewall_rejects_row(self):
        with pytest.raises(ValueError):
            NodeId(Role.CLIENT, 0, row=1)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            NodeId(Role.CLIENT, -1)

    def test_ordering_is_total_and_deterministic(self):
        nodes = [execution_id(1), agreement_id(0), client_id(5),
                 firewall_id(0, 1), firewall_id(1, 0), agreement_id(2)]
        ordered = sorted(nodes)
        assert ordered == sorted(reversed(nodes))
        assert len(set(nodes)) == len(nodes)

    def test_equality_and_hash(self):
        assert agreement_id(1) == agreement_id(1)
        assert agreement_id(1) != execution_id(1)
        assert len({agreement_id(1), agreement_id(1)}) == 1


encodable = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.binary(max_size=20)
    | st.floats(allow_nan=False, allow_infinity=False),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestCanonicalEncoding:
    def test_deterministic_for_dict_ordering(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})

    def test_distinguishes_types(self):
        assert canonical_encode(1) != canonical_encode("1")
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(b"x") != canonical_encode("x")
        assert canonical_encode(None) != canonical_encode(False)

    def test_distinguishes_nesting(self):
        assert canonical_encode([1, [2]]) != canonical_encode([[1], 2])
        assert canonical_encode([]) != canonical_encode([[]])

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_estimate_size_positive(self):
        assert estimate_size({"key": "value"}) > 0

    @given(encodable)
    @settings(max_examples=80, deadline=None)
    def test_encoding_is_deterministic(self, value):
        assert canonical_encode(value) == canonical_encode(value)

    @given(encodable, encodable)
    @settings(max_examples=80, deadline=None)
    def test_distinct_values_encode_differently(self, a, b):
        if canonical_encode(a) == canonical_encode(b):
            # Injectivity: equal encodings only for equal values (ints/floats
            # that compare equal, like 1 and 1.0, are still distinct types).
            assert type(a) == type(b) or a == b


class TestQuorums:
    def test_cluster_sizes(self):
        assert agreement_cluster_size(1) == 4
        assert execution_cluster_size(1) == 3
        assert agreement_quorum(1) == 3
        assert reply_quorum(1) == 2
        assert coupled_reply_quorum(1) == 2
        assert firewall_grid_size(1) == (2, 2)

    def test_zero_fault_degenerate_cases(self):
        assert agreement_cluster_size(0) == 1
        assert execution_cluster_size(0) == 1
        assert reply_quorum(0) == 1

    def test_negative_inputs_rejected(self):
        for fn in (agreement_cluster_size, execution_cluster_size, agreement_quorum,
                   reply_quorum, coupled_reply_quorum):
            with pytest.raises(ConfigurationError):
                fn(-1)

    def test_max_faults_inverse_of_cluster_size(self):
        for f in range(5):
            assert max_agreement_faults(agreement_cluster_size(f)) == f
        for g in range(5):
            assert max_execution_faults(execution_cluster_size(g)) == g

    def test_has_quorum_counts_distinct_members(self):
        nodes = [agreement_id(i) for i in range(4)]
        assert has_quorum(nodes[:3], 3)
        assert not has_quorum([nodes[0], nodes[0], nodes[0]], 2)
        assert has_quorum(nodes, 3, universe=nodes[:3])
        assert not has_quorum(nodes[:3], 3, universe=nodes[:2])

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_execution_cluster_majority_property(self, g):
        """2g+1 replicas: any g+1 subset is a majority and overlaps any other."""
        size = execution_cluster_size(g)
        quorum = reply_quorum(g)
        assert 2 * quorum > size
