"""Tests for the verified-certificate cache (the verification fast path).

Covers the satellite requirements: hit/miss accounting, charge-only-on-miss,
no cross-node leakage, Byzantine forgeries still rejected after a legitimate
certificate over the same statement was cached, and crypto-op counters
reflecting cached hits -- plus an end-to-end equivalence check that the fast
path changes no observable protocol result.
"""

import pytest

from conftest import CHEAP_CRYPTO, make_config
from repro.apps.kvstore import KeyValueStore, get as kv_get, put as kv_put
from repro.config import AuthenticationScheme, PerfConfig
from repro.crypto.cache import VerifiedCertificateCache
from repro.crypto.certificate import Authenticator, Certificate
from repro.crypto.keys import Keystore
from repro.crypto.provider import CryptoProvider
from repro.messages.request import ClientRequest
from repro.sharding import ShardedSystem
from repro.statemachine.interface import Operation
from repro.util.ids import agreement_id, client_id, execution_id


def sample_request(tag=0):
    return ClientRequest(operation=Operation(kind="null", args={"tag": tag}),
                         timestamp=1, client=client_id(0))


def recording_provider(keystore, node, perf=None):
    charges, ops = [], []
    provider = CryptoProvider(node, keystore, CHEAP_CRYPTO,
                              charge=charges.append, record=ops.append,
                              perf=perf)
    return provider, charges, ops


class TestCacheUnit:
    def test_bounded_lru_eviction(self):
        cache = VerifiedCertificateCache(capacity=2)
        cache.add(("a",))
        cache.add(("b",))
        cache.add(("c",))
        assert len(cache) == 2
        assert not cache.seen(("a",))
        assert cache.seen(("c",))

    def test_hit_miss_counters(self):
        cache = VerifiedCertificateCache()
        assert not cache.seen(("x",))
        cache.add(("x",))
        assert cache.seen(("x",))
        assert cache.hits == 1
        assert cache.misses == 1


class TestHitMissAccounting:
    def test_repeat_authenticator_verification_hits(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        verifier, charges, ops = recording_provider(keystore, agreement_id(0))
        request = sample_request()
        auth = signer.mac_authenticator(request, [agreement_id(0)])

        assert verifier.verify_mac(request, auth)
        assert ops.count("mac_verify") == 1
        charges_after_miss = list(charges)

        assert verifier.verify_mac(request, auth)
        # The hit is recorded but charges no virtual time at all (the digest
        # is memoised too, so not even hashing time is re-charged).
        assert ops.count("mac_verify") == 1
        assert ops.count("mac_verify_cached") == 1
        assert charges == charges_after_miss
        assert verifier.cache.hits == 1

    def test_repeat_certificate_verification_hits(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        verifier, charges, ops = recording_provider(keystore, agreement_id(1))
        request = sample_request()
        certificate = signer.new_certificate(
            request, AuthenticationScheme.MAC, [agreement_id(1)])

        assert verifier.verify_certificate(certificate, 1, [client_id(0)])
        charges_after_miss = list(charges)
        assert verifier.verify_certificate(certificate, 1, [client_id(0)])
        assert "certificate_cached" in ops
        assert charges == charges_after_miss

    def test_cache_disabled_recharges(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        verifier, _, ops = recording_provider(
            keystore, agreement_id(0),
            perf=PerfConfig(verified_cert_cache=False, digest_memo=False))
        assert verifier.cache is None
        request = sample_request()
        auth = signer.mac_authenticator(request, [agreement_id(0)])
        assert verifier.verify_mac(request, auth)
        assert verifier.verify_mac(request, auth)
        assert ops.count("mac_verify") == 2
        assert "mac_verify_cached" not in ops


class TestNoCrossNodeLeakage:
    def test_each_node_pays_for_its_own_first_verification(self, keystore):
        """A node must not benefit from another node's verification."""
        signer, _, _ = recording_provider(keystore, client_id(0))
        node_a, _, ops_a = recording_provider(keystore, agreement_id(0))
        node_b, _, ops_b = recording_provider(keystore, agreement_id(1))
        request = sample_request()
        auth = signer.mac_authenticator(request, [agreement_id(0), agreement_id(1)])

        assert node_a.verify_mac(request, auth)
        assert node_a.verify_mac(request, auth)
        # B's cache is empty even though A has verified the same authenticator.
        assert node_b.cache.hits == 0
        assert node_b.verify_mac(request, auth)
        assert ops_b.count("mac_verify") == 1
        assert "mac_verify_cached" not in ops_b
        # And B pays its own digest charge despite A having hashed the message.
        assert ops_b.count("digest") == 1


class TestByzantineForgery:
    def test_forged_authenticator_rejected_after_legitimate_cache(self, keystore):
        """Caching a legitimate certificate must not admit a forgery over the
        same statement claiming a *different* signer."""
        signer, _, _ = recording_provider(keystore, client_id(0))
        verifier, _, _ = recording_provider(keystore, agreement_id(0))
        request = sample_request()
        legit = signer.new_certificate(request, AuthenticationScheme.MAC,
                                       [agreement_id(0)])
        assert verifier.verify_certificate(legit, 1, [client_id(0)])

        forged = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        forged.add(Authenticator(
            signer=client_id(1), scheme=AuthenticationScheme.MAC,
            payload_digest=verifier.payload_digest(request),
            token={agreement_id(0).name: b"\x00" * 32}))
        assert not verifier.verify_certificate(forged, 1, [client_id(1)])
        # Repeating the forgery still fails: failures are never cached.
        assert not verifier.verify_certificate(forged, 1, [client_id(1)])

    def test_forgery_cannot_raise_quorum_count(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        verifier, _, _ = recording_provider(keystore, execution_id(0))
        request = sample_request()
        certificate = signer.new_certificate(request, AuthenticationScheme.MAC,
                                             [execution_id(0)])
        assert verifier.verify_certificate(certificate, 1)
        # Add a forged second authenticator: the cached fact for the first
        # signer must not make the forged one count toward a 2-quorum.
        certificate.add(Authenticator(
            signer=client_id(1), scheme=AuthenticationScheme.MAC,
            payload_digest=verifier.payload_digest(request),
            token={execution_id(0).name: b"\x01" * 32}))
        assert not verifier.verify_certificate(certificate, 2)

    def test_forged_different_payload_rejected(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        verifier, _, _ = recording_provider(keystore, agreement_id(0))
        auth = signer.mac_authenticator(sample_request(0), [agreement_id(0)])
        assert verifier.verify_mac(sample_request(0), auth)
        # Same signer, cached success -- but a different payload misses.
        assert not verifier.verify_mac(sample_request(1), auth)


class TestEndToEndEquivalence:
    @staticmethod
    def _run(perf: PerfConfig):
        from repro.config import ShardingConfig

        config = make_config(num_clients=2, perf=perf,
                             sharding=ShardingConfig(num_shards=2))
        system = ShardedSystem(config, KeyValueStore, seed=11)
        operations = [kv_put("alpha", "1"), kv_put("beta", "2"),
                      kv_get("alpha"), kv_get("beta"), kv_get("missing")]
        results = [system.invoke(op, client_index=i % 2).result.value
                   for i, op in enumerate(operations)]
        return system, results

    def test_fast_path_changes_no_results_and_hits(self):
        fast_system, fast_results = self._run(PerfConfig())
        slow_system, slow_results = self._run(
            PerfConfig(verified_cert_cache=False, digest_memo=False,
                       shard_verify_owned_only=False))
        assert fast_results == slow_results
        hits = sum(replica.crypto.cache.hits
                   for replica in fast_system.agreement_replicas)
        assert hits > 0
        # The cached hits show up in the crypto-op counters.
        totals = fast_system.crypto_op_totals()
        assert any(op.endswith("_cached") for op in totals)


class TestColocatedCacheSharing:
    """Deployment.SAME shares one cache between co-located roles: a machine
    trusts its own verifications, so a fact proven while playing the
    agreement role is a hit when the same machine's execution role checks
    the same certificate."""

    def test_cross_role_hit_with_shared_cache(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        agreement_role, _, agreement_ops = recording_provider(
            keystore, agreement_id(0))
        execution_role, execution_charges, execution_ops = recording_provider(
            keystore, execution_id(0))
        execution_role.cache = agreement_role.cache  # one machine, one cache

        request = sample_request()
        certificate = signer.new_certificate(
            request, AuthenticationScheme.MAC, [agreement_id(0), execution_id(0)])
        assert agreement_role.verify_certificate(certificate, 1, [client_id(0)])
        assert agreement_ops.count("mac_verify") == 1

        charges_before = list(execution_charges)
        assert execution_role.verify_certificate(certificate, 1, [client_id(0)])
        # The execution role never re-ran the MAC check: the whole-certificate
        # fact proven by the co-located agreement role was a cache hit (the
        # per-authenticator facts are shared the same way).  Only its one-time
        # digest of the payload is charged, never the MAC cost.
        assert execution_ops.count("mac_verify") == 0
        assert execution_ops.count("certificate_cached") == 1
        new_charges = execution_charges[len(charges_before):]
        assert sum(new_charges) < CHEAP_CRYPTO.mac_ms

    def test_separate_caches_pay_twice(self, keystore):
        signer, _, _ = recording_provider(keystore, client_id(0))
        agreement_role, _, _ = recording_provider(keystore, agreement_id(0))
        execution_role, _, execution_ops = recording_provider(
            keystore, execution_id(0))

        request = sample_request()
        certificate = signer.new_certificate(
            request, AuthenticationScheme.MAC, [agreement_id(0), execution_id(0)])
        assert agreement_role.verify_certificate(certificate, 1, [client_id(0)])
        assert execution_role.verify_certificate(certificate, 1, [client_id(0)])
        assert execution_ops.count("mac_verify") == 1  # paid its own check

    def test_same_deployment_shares_and_different_does_not(self):
        from repro.config import Deployment
        from repro.core import SeparatedSystem

        same = SeparatedSystem(make_config(deployment=Deployment.SAME),
                               KeyValueStore, seed=21)
        for replica, node in zip(same.agreement_replicas, same.execution_nodes):
            assert node.crypto.cache is replica.crypto.cache
        same.invoke(kv_put("k", "v"))
        # The execution roles benefited from agreement-role verifications.
        cached_ops = sum(
            node.stats.crypto_ops.get("mac_verify_cached", 0)
            + node.stats.crypto_ops.get("certificate_cached", 0)
            for node in same.execution_nodes)
        assert cached_ops > 0

        different = SeparatedSystem(make_config(), KeyValueStore, seed=21)
        for replica, node in zip(different.agreement_replicas,
                                 different.execution_nodes):
            assert node.crypto.cache is not replica.crypto.cache

    def test_sharing_disabled_by_switch(self):
        from repro.config import Deployment
        from repro.core import SeparatedSystem

        system = SeparatedSystem(
            make_config(deployment=Deployment.SAME,
                        perf=PerfConfig(share_colocated_cache=False)),
            KeyValueStore, seed=22)
        for replica, node in zip(system.agreement_replicas,
                                 system.execution_nodes):
            assert node.crypto.cache is not replica.crypto.cache
