"""Sharded execution tests (``repro.sharding``).

Covers the properties the subsystem's safety rests on: partitioner
determinism (every correct participant maps a key to the same shard),
misroute rejection at the execution replicas and at the clients, per-shard
checkpoint independence, and safety with one Byzantine execution node *per
shard* -- the fault bound the per-shard ``g + 1`` reply quorum buys.
"""

import dataclasses

import pytest

from conftest import make_config
from repro.apps.kvstore import KeyValueStore, delete, extract_key, get, put
from repro.config import AuthenticationScheme, ShardingConfig
from repro.errors import ConfigurationError
from repro.faults.byzantine import CorruptReplyBehaviour, make_byzantine
from repro.messages.agreement import OrderedBatch
from repro.messages.reply import BatchReplyBody, ClientReply
from repro.net.message import Message
from repro.sharding import (
    HashPartitioner,
    KeyRangePartitioner,
    ShardedBatch,
    ShardedSystem,
    make_partitioner,
)


def sharded_config(num_shards=2, **overrides):
    defaults = dict(sharding=ShardingConfig(num_shards=num_shards))
    defaults.update(overrides)
    return make_config(**defaults)


def keys_of_shard(system, shard, count, universe=200):
    """The first ``count`` probe keys owned by ``shard``."""
    keys = [f"key{i}" for i in range(universe)
            if system.shard_of_key(f"key{i}") == shard]
    assert len(keys) >= count, "probe universe too small"
    return keys[:count]


class TestPartitioners:
    def test_hash_partitioner_is_deterministic_across_instances(self):
        """Two independently built partitioners (different replicas, different
        processes) must agree on every key -- routing is agreement-free only
        because it is a pure function of the key."""
        first = HashPartitioner(4)
        second = HashPartitioner(4)
        for i in range(200):
            key = f"user-{i}"
            assert first.shard_of_key(key) == second.shard_of_key(key)
            assert 0 <= first.shard_of_key(key) < 4

    def test_hash_partitioner_spreads_keys(self):
        partitioner = HashPartitioner(4)
        hit = {partitioner.shard_of_key(f"key-{i}") for i in range(100)}
        assert hit == {0, 1, 2, 3}

    def test_keyless_operations_route_to_shard_zero(self):
        assert HashPartitioner(4).shard_of_key(None) == 0
        assert KeyRangePartitioner(["m"]).shard_of_key(None) == 0

    def test_key_range_partitioner(self):
        partitioner = KeyRangePartitioner(["h", "p"])
        assert partitioner.num_shards == 3
        assert partitioner.shard_of_key("apple") == 0
        assert partitioner.shard_of_key("h") == 1  # boundary belongs right
        assert partitioner.shard_of_key("melon") == 1
        assert partitioner.shard_of_key("zebra") == 2

    def test_key_range_partitioner_rejects_unsorted_boundaries(self):
        with pytest.raises(ConfigurationError):
            KeyRangePartitioner(["p", "h"])

    def test_make_partitioner_from_config(self):
        hashed = make_partitioner(ShardingConfig(num_shards=4))
        assert isinstance(hashed, HashPartitioner) and hashed.num_shards == 4
        ranged = make_partitioner(ShardingConfig(
            num_shards=2, strategy="range", range_boundaries=("m",)))
        assert isinstance(ranged, KeyRangePartitioner)
        assert ranged.shard_of_key("a") == 0 and ranged.shard_of_key("z") == 1

    def test_kvstore_key_extraction(self):
        assert extract_key(put("k", 1)) == "k"
        assert extract_key(get("k")) == "k"
        assert extract_key(delete("k")) == "k"
        from repro.apps.kvstore import compare_and_swap, list_keys
        assert extract_key(compare_and_swap("k", 1, 2)) == "k"
        assert extract_key(list_keys("pre")) == "pre"
        assert extract_key(list_keys()) is None

    def test_sharding_config_validation(self):
        with pytest.raises(ConfigurationError):
            ShardingConfig(num_shards=0).validate()
        with pytest.raises(ConfigurationError):
            ShardingConfig(num_shards=2, strategy="modulo").validate()
        with pytest.raises(ConfigurationError):
            ShardingConfig(num_shards=3, strategy="range",
                           range_boundaries=("a",)).validate()
        with pytest.raises(ConfigurationError):
            make_config(use_privacy_firewall=True,
                        authentication=AuthenticationScheme.THRESHOLD,
                        sharding=ShardingConfig(num_shards=2))


class TestShardedEndToEnd:
    def test_keys_route_to_owning_shard_only(self):
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=31)
        keys0 = keys_of_shard(system, 0, 4)
        keys1 = keys_of_shard(system, 1, 4)
        for i, key in enumerate(keys0 + keys1):
            record = system.invoke(put(key, i))
            assert record.result.value == {"stored": True}
        system.run(100.0)
        # Each shard executed exactly its own requests and holds only its keys.
        assert system.requests_executed_by_shard() == [4, 4]
        for shard, keys in ((0, keys0), (1, keys1)):
            for node in system.execution_cluster(shard):
                assert set(node.app.snapshot()) == set(keys)

    def test_reads_return_routed_writes(self):
        system = ShardedSystem(sharded_config(num_shards=4), KeyValueStore, seed=32)
        for i in range(12):
            system.invoke(put(f"key{i}", i * 10), client_index=i % 2)
        for i in range(12):
            record = system.invoke(get(f"key{i}"), client_index=i % 2)
            assert record.result.value["value"] == i * 10

    def test_mixed_shard_bundles_execute_each_request_once(self):
        """With bundle_size > 1 a batch can touch several shards: every owning
        shard receives the full (verifiable) batch and executes only its own
        subset, so nothing is lost or double-executed."""
        config = sharded_config(num_clients=4, bundle_size=2)
        system = ShardedSystem(config, KeyValueStore, seed=33)
        for i in range(12):
            system.submit(put(f"key{i}", i), client_index=i % 4)
        system.run_until(lambda: system.total_completed() >= 12, 60_000.0)
        assert sum(system.requests_executed_by_shard()) == 12
        for i in range(12):
            record = system.invoke(get(f"key{i}"), client_index=i % 4)
            assert record.result.value["value"] == i

    def test_threshold_authentication_per_shard(self):
        config = sharded_config(authentication=AuthenticationScheme.THRESHOLD)
        system = ShardedSystem(config, KeyValueStore, seed=34)
        for i in range(6):
            system.invoke(put(f"key{i}", i))
        for i in range(6):
            assert system.invoke(get(f"key{i}")).result.value["value"] == i


class TestMisrouteRejection:
    def _captured_envelope(self, system):
        """A valid routed batch for shard 0, rebuilt from a replica's log."""
        key = keys_of_shard(system, 0, 1)[0]
        system.invoke(put(key, "v"))
        node = system.execution_node(0, 0)
        local = node.recent_batches[node.max_executed]
        batch = OrderedBatch(seq=local.global_seq, view=local.view,
                             request_certificates=local.full_request_certificates,
                             agreement_certificate=local.agreement_certificate,
                             nondet=local.nondet)
        return ShardedBatch(shard=0, shard_seq=local.seq, batch=batch)

    def test_wrong_shard_envelope_is_rejected(self):
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=35)
        envelope = self._captured_envelope(system)
        victim = system.execution_node(1, 0)
        executed_before = victim.requests_executed
        victim.handle_sharded_batch(system.agreement_ids[0], envelope)  # shard 0's
        assert victim.misroutes == 1
        assert victim.requests_executed == executed_before

    def test_relabelled_envelope_is_rejected(self):
        """A Byzantine agreement node cannot make shard 1 execute shard 0's
        requests by relabelling the envelope: the replica re-derives ownership
        with its own router and finds nothing it owns."""
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=36)
        envelope = self._captured_envelope(system)
        forged = ShardedBatch(shard=1, shard_seq=1, batch=envelope.batch)
        victim = system.execution_node(1, 0)
        executed_before = victim.requests_executed
        for agreement_id in system.agreement_ids:  # even with "f+1 votes"
            victim.handle_sharded_batch(agreement_id, forged)
        assert victim.misroutes >= 1
        assert victim.requests_executed == executed_before
        assert 1 not in victim.pending

    def test_forged_shard_seq_needs_f_plus_one_vouchers(self):
        """shard_seq is not covered by the agreement certificate, so a single
        Byzantine agreement node must not be able to bind a genuine batch to
        a wrong slot: bindings are accepted only with f + 1 matching votes."""
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=43)
        envelope = self._captured_envelope(system)
        victim = system.execution_node(0, 0)
        # Replay the (genuine, already executed) batch at a future slot,
        # repeatedly, from one agreement node: never accepted.
        forged = ShardedBatch(shard=0, shard_seq=envelope.shard_seq + 3,
                              batch=envelope.batch)
        byzantine = system.agreement_ids[0]
        for _ in range(3):
            victim.handle_sharded_batch(byzantine, forged)
        assert forged.shard_seq not in victim.pending
        assert forged.shard_seq not in victim._route_accepted
        # A second distinct agreement node vouching for the same binding
        # reaches f + 1 = 2 and the batch enters the pipeline.
        victim.handle_sharded_batch(system.agreement_ids[1], forged)
        assert forged.shard_seq in victim.pending

    def test_byzantine_agreement_router_cannot_scramble_a_shard(self):
        """End to end: one agreement node relabels every envelope it sends
        with a wrong slot; the other 3 correct nodes' matching envelopes form
        the f + 1 quorum, the forged bindings never do, and the shard executes
        the agreed order."""
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=44)
        liar = system.agreement_ids[1]

        def skew_slot(source, destination, message):
            if source != liar or not isinstance(message, ShardedBatch):
                return None
            return ShardedBatch(shard=message.shard,
                                shard_seq=message.shard_seq + 2,
                                batch=message.batch)

        system.network.add_tap(skew_slot)
        for i in range(8):
            record = system.invoke(put(f"key{i}", i))
            assert record.result.value == {"stored": True}
        for i in range(8):
            assert system.invoke(get(f"key{i}")).result.value["value"] == i
        # No forged slot was ever accepted: every executed slot is contiguous
        # and every replica of a shard agrees on what it executed.
        for shard in range(system.num_shards):
            executed = {node.max_executed for node in system.execution_cluster(shard)}
            assert len(executed) == 1
            for node in system.execution_cluster(shard):
                assert not node.pending

    def test_raw_ordered_batch_is_rejected(self):
        """Unrouted batches carry no shard-local sequence number and must not
        enter a shard's pipeline."""
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=37)
        envelope = self._captured_envelope(system)
        victim = system.execution_node(1, 1)
        victim.on_message(system.agreement_ids[0], envelope.batch)
        assert victim.misroutes == 1

    def test_client_rejects_reply_claiming_wrong_shard(self):
        """A reply relabelled with the wrong shard id is dropped by the client
        (quorums must come from the owning shard), and the request still
        completes from the correct replicas' replies."""
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=38)
        key = keys_of_shard(system, 0, 1)[0]
        liar = system.execution_node(0, 0).node_id

        def relabel(source, destination, message):
            if source != liar or not isinstance(message, ClientReply):
                return None
            body = dataclasses.replace(message.body, shard=1)
            return ClientReply(reply=message.reply, body=body,
                               certificate=message.certificate)

        system.network.add_tap(relabel)
        record = system.invoke(put(key, "v"))
        assert record.result.value == {"stored": True}
        assert system.clients[0].misrouted_replies >= 1


class TestPerShardFaultTolerance:
    def test_checkpoints_are_per_shard_and_independent(self):
        """Each shard checkpoints its own subsequence: digests match within a
        shard, and a Byzantine replica in shard 0 does not disturb shard 1's
        checkpoint lifecycle."""
        config = sharded_config(checkpoint_interval=4)
        system = ShardedSystem(config, KeyValueStore, seed=39)
        make_byzantine(system, CorruptReplyBehaviour(system.execution_ids[0]))
        for shard in (0, 1):
            for i, key in enumerate(keys_of_shard(system, shard, 6)):
                record = system.invoke(put(key, i))
                assert record.result.value == {"stored": True}
        system.run(300.0)
        for shard in (0, 1):
            correct = [node for node in system.execution_cluster(shard)
                       if node.node_id != system.execution_ids[0]]
            digests = set()
            for node in correct:
                assert node.stable_checkpoint is not None
                assert node.stable_checkpoint.seq >= 4
                assert node.stable_checkpoint.proof.count() >= config.checkpoint_quorum
                digests.add((node.stable_checkpoint.seq, node.stable_checkpoint.digest))
            # g + 1 correct replicas of one shard agree on the checkpoint.
            assert len({digest for _, digest in digests}) == 1

    def test_one_byzantine_execution_node_per_shard_is_masked(self):
        """The acceptance bound: with ``g = 1`` per shard, one reply-corrupting
        replica in *every* shard is masked by the per-shard ``g + 1`` quorum."""
        system = ShardedSystem(sharded_config(), KeyValueStore, seed=40)
        behaviours = [
            make_byzantine(system, CorruptReplyBehaviour(
                system.execution_cluster(shard)[shard % 3].node_id))
            for shard in range(system.num_shards)
        ]
        for i in range(10):
            record = system.invoke(put(f"key{i}", i), client_index=i % 2)
            assert record.result.value == {"stored": True}
        for i in range(10):
            record = system.invoke(get(f"key{i}"), client_index=i % 2)
            assert record.result.value["value"] == i
        # The attack actually ran: corrupted replies were sent and discarded.
        assert any(b.messages_affected > 0 for b in behaviours)

    def test_crashed_shard_replica_recovers_via_state_transfer(self):
        """A replica that misses a stretch of its shard's subsequence catches
        up from a *same-shard* peer's stable checkpoint; the other shard's
        lifecycle is untouched."""
        config = sharded_config(checkpoint_interval=4)
        system = ShardedSystem(config, KeyValueStore, seed=41)
        keys0 = keys_of_shard(system, 0, 12)
        keys1 = keys_of_shard(system, 1, 3)
        lagging = system.execution_node(0, 1)
        lagging.crash()
        for i, key in enumerate(keys0[:10]):
            system.invoke(put(key, i))
        for i, key in enumerate(keys1):
            system.invoke(put(key, i))
        lagging.recover()
        for i, key in enumerate(keys0[10:]):
            system.invoke(put(key, 100 + i))
        system.run_until(
            lambda: lagging.max_executed >= system.execution_node(0, 0).max_executed,
            timeout_ms=30_000.0, description="lagging shard replica catches up")
        assert lagging.state_transfers > 0
        assert lagging.app.checkpoint() == system.execution_node(0, 0).app.checkpoint()
        # Shard 1 never saw shard 0's hiccup.
        assert all(node.state_transfers == 0
                   for node in system.execution_cluster(1))

    def test_crash_one_replica_per_shard_preserves_liveness(self):
        system = ShardedSystem(sharded_config(num_shards=2), KeyValueStore, seed=42)
        system.crash_execution(0, 0)
        system.crash_execution(1, 1)
        for i in range(8):
            record = system.invoke(put(f"key{i}", i))
            assert record.result.value == {"stored": True}
        for i in range(8):
            assert system.invoke(get(f"key{i}")).result.value["value"] == i
