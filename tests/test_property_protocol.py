"""Property-based end-to-end tests of the replication protocol.

Hypothesis generates random operation scripts (and random fault choices
within the tolerated bounds); the properties are the paper's safety claims:
the replicated system returns exactly the results a single correct server
would, and execution replicas never diverge.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import make_config
from repro.apps.kvstore import KeyValueStore, compare_and_swap, delete, get, put
from repro.config import AuthenticationScheme
from repro.core import CoupledSystem, SeparatedSystem
from repro.faults import CorruptReplyBehaviour, make_byzantine
from repro.statemachine.nondet import NonDetInput


def script_strategy(max_size=12):
    keys = st.sampled_from(["a", "b", "c"])
    values = st.integers(min_value=0, max_value=9)
    return st.lists(
        st.one_of(
            st.tuples(st.just("put"), keys, values),
            st.tuples(st.just("get"), keys, values),
            st.tuples(st.just("delete"), keys, values),
            st.tuples(st.just("cas"), keys, values),
        ),
        min_size=1, max_size=max_size,
    )


def to_operation(step):
    kind, key, value = step
    if kind == "put":
        return put(key, value)
    if kind == "get":
        return get(key)
    if kind == "delete":
        return delete(key)
    return compare_and_swap(key, value, value + 1)


def reference_results(script):
    reference = KeyValueStore()
    return [reference.execute(to_operation(step), NonDetInput.empty()).value
            for step in script]


SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestLinearizability:
    @given(script=script_strategy())
    @SETTINGS
    def test_separated_system_matches_reference(self, script):
        system = SeparatedSystem(make_config(), KeyValueStore, seed=71)
        results = [system.invoke(to_operation(step)).result.value for step in script]
        assert results == reference_results(script)

    @given(script=script_strategy(max_size=8))
    @SETTINGS
    def test_separated_system_with_crashed_execution_node(self, script):
        system = SeparatedSystem(make_config(), KeyValueStore, seed=72)
        system.crash_execution(0)
        results = [system.invoke(to_operation(step)).result.value for step in script]
        assert results == reference_results(script)

    @given(script=script_strategy(max_size=8))
    @SETTINGS
    def test_separated_system_with_byzantine_execution_node(self, script):
        system = SeparatedSystem(make_config(), KeyValueStore, seed=73)
        make_byzantine(system, CorruptReplyBehaviour(system.execution_nodes[1].node_id))
        results = [system.invoke(to_operation(step)).result.value for step in script]
        assert results == reference_results(script)

    @given(script=script_strategy(max_size=8))
    @SETTINGS
    def test_coupled_baseline_matches_reference(self, script):
        system = CoupledSystem(make_config(), KeyValueStore, seed=74)
        results = [system.invoke(to_operation(step)).result.value for step in script]
        assert results == reference_results(script)


class TestReplicaConvergence:
    @given(script=script_strategy())
    @SETTINGS
    def test_execution_replicas_converge(self, script):
        system = SeparatedSystem(make_config(), KeyValueStore, seed=75)
        for step in script:
            system.invoke(to_operation(step))
        system.run(100.0)
        checkpoints = {node.app.checkpoint() for node in system.execution_nodes}
        assert len(checkpoints) == 1

    @given(script=script_strategy(max_size=6),
           client_split=st.integers(min_value=0, max_value=1))
    @SETTINGS
    def test_two_clients_interleaved_still_converge(self, script, client_split):
        system = SeparatedSystem(make_config(), KeyValueStore, seed=76)
        for index, step in enumerate(script):
            client_index = (index + client_split) % 2
            system.invoke(to_operation(step), client_index=client_index)
        system.run(100.0)
        checkpoints = {node.app.checkpoint() for node in system.execution_nodes}
        assert len(checkpoints) == 1
