"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import LivenessTimeoutError, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.process import Process
from repro.sim.rand import DeterministicRandom
from repro.sim.scheduler import Scheduler
from repro.net.message import Message
from repro.net.network import Network
from repro.util.ids import client_id, server_id


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advances_monotonically(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_cannot_start_negative(self):
        with pytest.raises(SimulationError):
            VirtualClock(start=-1.0)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(9.0, lambda: order.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert order == ["a", "b", "c"]

    def test_same_time_fires_in_schedule_order(self):
        queue = EventQueue()
        order = []
        for i in range(5):
            queue.push(1.0, lambda i=i: order.append(i))
        while queue.pop() is not None:
            pass
        # callbacks were not invoked above; re-check ordering via sequence field
        queue2 = EventQueue()
        events = [queue2.push(1.0, lambda: None) for _ in range(5)]
        assert [e.sequence for e in events] == sorted(e.sequence for e in events)

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        event.cancel()
        while True:
            popped = queue.pop()
            if popped is None:
                break
            popped.callback()
        assert fired == [2]

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_bool_and_peek(self):
        queue = EventQueue()
        assert not queue
        queue.push(3.0, lambda: None)
        assert queue
        assert queue.peek_time() == 3.0

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        assert len(queue) == 10
        for event in events[:4]:
            event.cancel()
        assert len(queue) == 6
        while queue.pop() is not None:
            pass
        assert len(queue) == 0

    def test_double_cancel_and_cancel_after_pop_keep_count_exact(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        other = queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1
        popped = queue.pop()
        assert popped is other
        popped.cancel()  # cancelling a popped event must not underflow
        assert len(queue) == 0

    def test_compaction_bounds_heap_growth(self):
        """Mass-cancelled retransmit timers are compacted out of the heap."""
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None, label="retransmit")
                  for i in range(400)]
        for i, event in enumerate(events):
            if i % 8 != 0:
                event.cancel()
        live = len(queue)
        assert live == 50
        # Lazy deletion alone would leave 400 entries; compaction keeps the
        # heap within a constant factor of the live count.
        assert queue.heap_size <= 2 * live + 64
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(popped)
        assert len(popped) == live


class TestScheduler:
    def test_call_after_advances_clock(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_after(10.0, lambda: fired.append(scheduler.now))
        scheduler.run()
        assert fired == [10.0]
        assert scheduler.now == 10.0

    def test_timer_scheduled_for_current_instant_is_active(self):
        """A zero-delay timer is active until the scheduler actually runs
        it -- liveness is explicit event state, not a time comparison."""
        scheduler = Scheduler()
        fired = []
        timer = scheduler.call_after(0.0, lambda: fired.append(scheduler.now))
        assert timer.active
        scheduler.step()
        assert fired == [0.0]
        assert not timer.active

    def test_timer_active_survives_clock_noise(self):
        """An unfired, uncancelled timer stays active even if the clock has
        crept a hair past its deadline (the old ``now - 1e-9`` comparison
        misreported exactly this case)."""
        scheduler = Scheduler()
        timer = scheduler.call_after(1.0, lambda: None)
        scheduler.clock.advance_to(1.0 + 1e-12)
        assert timer.active
        timer.cancel()
        assert not timer.active

    def test_timer_checked_from_simultaneous_event_is_active(self):
        """Two events at the same instant: while the first runs, the second
        (same deadline, unfired) must still report active."""
        scheduler = Scheduler()
        seen = []
        second = {}

        def first():
            seen.append(second["timer"].active)

        def runs_later():
            seen.append("fired")

        first_timer = scheduler.call_at(5.0, first)
        second["timer"] = scheduler.call_at(5.0, runs_later)
        scheduler.run()
        assert seen == [True, "fired"]
        assert not first_timer.active

    def test_run_until_time_bound(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_after(5.0, lambda: fired.append("early"))
        scheduler.call_after(50.0, lambda: fired.append("late"))
        scheduler.run(until=10.0)
        assert fired == ["early"]
        assert scheduler.now == 10.0

    def test_run_until_predicate(self):
        scheduler = Scheduler()
        state = {"done": False}
        scheduler.call_after(3.0, lambda: state.update(done=True))
        scheduler.run_until(lambda: state["done"], timeout=100.0)
        assert state["done"]

    def test_run_until_raises_on_timeout(self):
        scheduler = Scheduler()
        scheduler.call_after(500.0, lambda: None)
        with pytest.raises(LivenessTimeoutError):
            scheduler.run_until(lambda: False, timeout=10.0)

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler()
        scheduler.call_after(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.call_at(1.0, lambda: None)

    def test_timer_cancellation(self):
        scheduler = Scheduler()
        fired = []
        timer = scheduler.call_after(5.0, lambda: fired.append(1))
        timer.cancel()
        scheduler.run()
        assert fired == []

    def test_chained_events(self):
        scheduler = Scheduler()
        trace = []

        def first():
            trace.append(("first", scheduler.now))
            scheduler.call_after(2.0, second)

        def second():
            trace.append(("second", scheduler.now))

        scheduler.call_after(1.0, first)
        scheduler.run()
        assert trace == [("first", 1.0), ("second", 3.0)]


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(42)
        b = DeterministicRandom(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_forks_are_independent(self):
        root = DeterministicRandom(1)
        fork_a = root.fork("net")
        fork_b = root.fork("workload")
        seq_b = [fork_b.random() for _ in range(5)]
        # Consuming from fork_a must not change fork_b's future values.
        root2 = DeterministicRandom(1)
        fa2 = root2.fork("net")
        fb2 = root2.fork("workload")
        for _ in range(100):
            fa2.random()
        assert seq_b == [fb2.random() for _ in range(5)]

    def test_chance_extremes(self):
        rng = DeterministicRandom(3)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_uniform_bounds(self):
        rng = DeterministicRandom(5)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_exponential_non_negative(self):
        rng = DeterministicRandom(5)
        assert rng.exponential(0.0) == 0.0
        assert all(rng.exponential(2.0) >= 0.0 for _ in range(50))


class _EchoMessage(Message):
    def __init__(self, text: str) -> None:
        self.text = text

    def payload_fields(self):
        return {"text": self.text}


class _EchoProcess(Process):
    def __init__(self, node_id, scheduler, cost_ms=0.0):
        super().__init__(node_id, scheduler)
        self.received = []
        self.cost_ms = cost_ms

    def on_message(self, sender, message):
        self.received.append((sender, message.text, self.now))
        self.charge(self.cost_ms)


class TestProcess:
    def _build(self, cost_ms=0.0):
        scheduler = Scheduler(seed=1)
        network = Network(scheduler)
        a = _EchoProcess(client_id(0), scheduler, cost_ms)
        b = _EchoProcess(server_id(0), scheduler, cost_ms)
        network.register(a)
        network.register(b)
        return scheduler, network, a, b

    def test_send_and_receive(self):
        scheduler, network, a, b = self._build()
        a.send(b.node_id, _EchoMessage("hello"))
        scheduler.run()
        assert len(b.received) == 1
        assert b.received[0][1] == "hello"
        assert b.stats.messages_received == 1
        assert a.stats.messages_sent == 1

    def test_processing_cost_serializes_the_node(self):
        scheduler, network, a, b = self._build(cost_ms=10.0)
        a.send(b.node_id, _EchoMessage("one"))
        a.send(b.node_id, _EchoMessage("two"))
        scheduler.run()
        assert len(b.received) == 2
        first_time = b.received[0][2]
        second_time = b.received[1][2]
        # The second message cannot start processing until the first's 10 ms
        # charge has elapsed.
        assert second_time >= first_time + 10.0
        assert b.stats.busy_ms == pytest.approx(20.0)

    def test_crashed_node_receives_nothing(self):
        scheduler, network, a, b = self._build()
        b.crash()
        a.send(b.node_id, _EchoMessage("lost"))
        scheduler.run()
        assert b.received == []

    def test_crashed_node_sends_nothing(self):
        scheduler, network, a, b = self._build()
        a.crash()
        a.send(b.node_id, _EchoMessage("lost"))
        scheduler.run()
        assert b.received == []

    def test_timers_respect_busy_time(self):
        scheduler, network, a, b = self._build(cost_ms=5.0)
        fired = []
        a.send(b.node_id, _EchoMessage("work"))
        b.set_timer(0.01, lambda: fired.append(b.now))
        scheduler.run()
        assert len(fired) == 1

    def test_negative_charge_rejected(self):
        scheduler, network, a, b = self._build()
        with pytest.raises(SimulationError):
            a.charge(-1.0)

    def test_utilization(self):
        scheduler, network, a, b = self._build(cost_ms=10.0)
        a.send(b.node_id, _EchoMessage("one"))
        scheduler.run()
        assert 0.0 < b.stats.utilization(scheduler.now + 100.0) <= 1.0
