"""Fault-injection coverage for execution-cluster recovery (Section 3.3).

The existing recovery tests assert that a lagging replica converges; these
assert *how*: a replica that misses more than a checkpoint interval's worth
of traffic must catch up through the state-transfer path
(``ExecutionNode.handle_state_transfer``), not by replaying batches its
peers have already garbage-collected, and the bounded per-sequence reply
cache (``_trim_reply_cache``) must keep serving correct replies across the
recovery.
"""

from conftest import make_config
from repro.apps.counter import CounterService, increment, read_counter
from repro.apps.kvstore import KeyValueStore, get, put
from repro.core import SeparatedSystem


class TestStateTransferPath:
    def test_crash_mid_run_recovers_through_state_transfer(self):
        """Crash an execution node mid-run for > checkpoint_interval requests:
        it must observe at least one state transfer and converge to its peers'
        application state."""
        config = make_config(checkpoint_interval=4, pipeline_depth=8)
        system = SeparatedSystem(config, KeyValueStore, seed=71)
        system.invoke(put("warm", 0))
        lagging = system.execution_nodes[1]
        lagging.crash()
        # Miss two full checkpoint intervals so peers have a stable checkpoint
        # strictly newer than the crash point.
        for i in range(9):
            system.invoke(put(f"key{i}", i))
        lagging.recover()
        system.invoke(put("after", 1))
        system.run_until(
            lambda: lagging.max_executed >= system.execution_nodes[0].max_executed,
            timeout_ms=30_000.0, description="recovered replica catches up")
        assert lagging.state_transfers > 0
        assert lagging.app.checkpoint() == system.execution_nodes[0].app.checkpoint()

    def test_post_recovery_replies_match_peers(self):
        """After recovery the node participates in new quorums and its reply
        table matches what the clients actually observed."""
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, CounterService, seed=72)
        lagging = system.execution_nodes[2]
        lagging.crash()
        for _ in range(9):
            system.invoke(increment(1))
        lagging.recover()
        system.invoke(increment(1))
        system.run_until(
            lambda: lagging.max_executed >= system.execution_nodes[0].max_executed,
            timeout_ms=30_000.0, description="recovered replica catches up")
        assert lagging.state_transfers > 0
        record = system.invoke(read_counter())
        assert record.result.value == 10
        system.run(100.0)
        # The recovered node's last reply to client 0 matches the reply the
        # client accepted (same timestamp, same result).
        client = system.clients[0].node_id
        recovered_reply = lagging.reply_table[client]
        peer_reply = system.execution_nodes[0].reply_table[client]
        assert recovered_reply.timestamp == peer_reply.timestamp
        assert recovered_reply.result.value == peer_reply.result.value

    def test_reply_cache_stays_bounded_across_recovery(self):
        """The per-sequence reply cache is trimmed to the pipeline window even
        while the node is absorbing a state transfer and replaying batches."""
        config = make_config(checkpoint_interval=4, pipeline_depth=4)
        system = SeparatedSystem(config, CounterService, seed=73)
        lagging = system.execution_nodes[0]
        lagging.crash()
        for _ in range(12):
            system.invoke(increment(1))
        lagging.recover()
        for _ in range(8):
            system.invoke(increment(1))
        system.run_until(
            lambda: lagging.max_executed >= system.execution_nodes[1].max_executed,
            timeout_ms=30_000.0, description="recovered replica catches up")
        assert lagging.state_transfers > 0
        for node in system.execution_nodes:
            assert len(node.replies_by_seq) <= 2 * config.pipeline_depth + 1
