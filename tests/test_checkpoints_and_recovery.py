"""Checkpointing, garbage collection, and state-transfer tests (Section 3.3)."""

import pytest

from conftest import make_config
from repro.apps.counter import CounterService, increment, read_counter
from repro.apps.kvstore import KeyValueStore, get, put
from repro.core import SeparatedSystem


class TestExecutionCheckpoints:
    def test_checkpoints_become_stable(self):
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, CounterService, seed=51)
        for _ in range(9):
            system.invoke(increment(1))
        system.run(100.0)
        for node in system.execution_nodes:
            assert node.stable_checkpoint is not None
            assert node.stable_checkpoint.seq >= 4
            assert node.stable_checkpoint.proof is not None
            # Proof of stability carries at least g + 1 = 2 authenticators.
            assert node.stable_checkpoint.proof.count() >= config.checkpoint_quorum

    def test_garbage_collection_bounds_state(self):
        config = make_config(checkpoint_interval=4, pipeline_depth=4)
        system = SeparatedSystem(config, CounterService, seed=52)
        for _ in range(20):
            system.invoke(increment(1))
        system.run(200.0)
        for node in system.execution_nodes:
            stable = node.stable_checkpoint.seq
            assert all(seq >= stable for seq in node.checkpoints)
            assert all(seq > stable for seq in node.pending)
            # The per-sequence reply cache is trimmed to a bounded window.
            assert len(node.replies_by_seq) <= 2 * config.pipeline_depth + 1

    def test_checkpoint_digests_match_across_replicas(self):
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, KeyValueStore, seed=53)
        for i in range(8):
            system.invoke(put(f"k{i}", i))
        system.run(200.0)
        digests = {node.stable_checkpoint.seq: set() for node in system.execution_nodes}
        for node in system.execution_nodes:
            digests[node.stable_checkpoint.seq].add(node.stable_checkpoint.digest)
        for seq, values in digests.items():
            assert len(values) == 1

    def test_agreement_log_garbage_collection(self):
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, CounterService, seed=54)
        for _ in range(12):
            system.invoke(increment(1))
        system.run(200.0)
        for replica in system.agreement_replicas:
            assert replica.log.stable_seq >= 4
            assert replica.log.size() <= 2 * config.checkpoint_interval + 4


class TestStateTransfer:
    def test_crashed_and_recovered_node_catches_up(self):
        """A node that misses a stretch of requests recovers from a peer's
        stable checkpoint (or fetches the missing batches) and converges."""
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, CounterService, seed=55)
        system.invoke(increment(1))
        # Take one execution replica down for a while.
        lagging = system.execution_nodes[0]
        lagging.crash()
        for _ in range(10):
            system.invoke(increment(1))
        lagging.recover()
        # More traffic plus time for fetch/state-transfer to complete.
        for _ in range(6):
            system.invoke(increment(1))
        system.run_until(
            lambda: lagging.max_executed >= system.execution_nodes[1].max_executed - 1,
            timeout_ms=30_000.0, description="lagging replica catches up")
        assert lagging.app.checkpoint() == system.execution_nodes[1].app.checkpoint()

    def test_recovered_node_participates_in_new_requests(self):
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, CounterService, seed=56)
        lagging = system.execution_nodes[2]
        lagging.crash()
        for _ in range(8):
            system.invoke(increment(1))
        lagging.recover()
        for _ in range(8):
            system.invoke(increment(1))
        final = system.invoke(read_counter())
        assert final.result.value == 16
        system.run(200.0)
        assert lagging.max_executed > 8

    def test_exactly_once_across_recovery(self):
        """Re-executing after recovery must not double-apply operations."""
        config = make_config(checkpoint_interval=4)
        system = SeparatedSystem(config, CounterService, seed=57)
        lagging = system.execution_nodes[1]
        lagging.crash()
        for _ in range(6):
            system.invoke(increment(1))
        lagging.recover()
        system.invoke(increment(1))
        final = system.invoke(read_counter())
        assert final.result.value == 7
