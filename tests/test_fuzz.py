"""Byzantine fuzzing harness tests.

Covers the schedule genome (serialisation, digests, mutation determinism),
the per-link and time-bounded fault plumbing the schedules compile to, the
invariant oracles, fixed regression schedules for the two named races
(crash during a range handoff, partition during a cross-shard vote), the
planted-bug acceptance demonstration (weakened reply quorum is found,
shrunk, and replays bit-identically; the intact quorum masks the same
attack), and the corpus/report artifact contracts CI relies on.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.apps.kvstore import KeyValueStore
from repro.config import NetworkConfig
from repro.faults import FaultInjector, FaultPlan, make_behaviour
from repro.fuzz import (
    BoundedProgressOracle,
    ExactlyOnceOracle,
    FaultSchedule,
    NoProgressDetector,
    RunContext,
    ScheduleEvent,
    explore,
    load_corpus,
    mutate,
    replay_corpus,
    run_schedule,
    save_corpus,
    save_schedule,
    scenario,
    seed_schedules,
)
from repro.net.faults import LinkFault, NetworkFaultModel
from repro.net.message import CorruptedMessage
from repro.sharding.system import ShardedSystem
from repro.sim.rand import DeterministicRandom
from repro.util.ids import agreement_id

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
import validate_schema  # noqa: E402  (benchmarks/ is not a package)


#: the planted-bug attack: one replica lies (re-signs corrupted replies) for
#: the whole run; g + 1 matching authenticators mask it, g accept it
LYING_SCHEDULE = FaultSchedule(
    scenario="sharded", seed=0, workload_seed=0, num_requests=30,
    events=(ScheduleEvent(kind="byzantine", at_ms=0.0, duration_ms=440.0,
                          node="execution:0:0", strategy="lying_reply"),))

#: named race 1: a split fires, then the handoff source crashes mid-transfer
CRASH_DURING_HANDOFF = FaultSchedule(
    scenario="rebalance", seed=5, workload_seed=5, num_requests=30,
    events=(ScheduleEvent(kind="map_change", at_ms=15.0, op="split",
                          key_index=16, owner=1),
            ScheduleEvent(kind="crash", at_ms=20.0, duration_ms=60.0,
                          node="execution:0:0")))

#: named race 2: an asymmetric partition cuts an agreement node off from a
#: shard while cross-shard votes are being gathered
PARTITION_DURING_VOTE = FaultSchedule(
    scenario="crossshard", seed=3, workload_seed=3, num_requests=24,
    events=(ScheduleEvent(kind="partition", at_ms=8.0, duration_ms=40.0,
                          a="agreement:0", b="execution:1:0"),))

#: ordering-plane attack: the view-0 primary sends per-backup conflicting
#: PRE-PREPAREs; no conflicting batch may ever gather a commit quorum
EQUIVOCATING_PRIMARY = FaultSchedule(
    scenario="sharded", seed=2, workload_seed=2, num_requests=30,
    events=(ScheduleEvent(kind="byzantine", at_ms=10.0, duration_ms=400.0,
                          node="agreement:0", strategy="equivocating_primary"),))

#: ordering-plane attack: the primary orders only what it likes; backup
#: forwarding and per-request deadlines must escalate to a view change
CENSORING_PRIMARY = FaultSchedule(
    scenario="sharded", seed=4, workload_seed=4, num_requests=30,
    events=(ScheduleEvent(kind="byzantine", at_ms=10.0, duration_ms=400.0,
                          node="agreement:0", strategy="censoring_primary"),))

#: ordering-plane attack: the primary stays just under the view-change
#: timer, degrading throughput without triggering a clean crash signal
SLOW_PRIMARY = FaultSchedule(
    scenario="sharded", seed=6, workload_seed=6, num_requests=30,
    events=(ScheduleEvent(kind="byzantine", at_ms=10.0, duration_ms=400.0,
                          node="agreement:0", strategy="slow_primary"),))


class TestScheduleGenome:
    def test_json_roundtrip_preserves_digest(self):
        restored = FaultSchedule.from_json(CRASH_DURING_HANDOFF.to_json())
        assert restored == CRASH_DURING_HANDOFF
        assert restored.digest() == CRASH_DURING_HANDOFF.digest()

    def test_digest_is_sensitive_to_every_gene(self):
        base = LYING_SCHEDULE
        assert base.without_event(0).digest() != base.digest()
        reseeded = FaultSchedule(scenario=base.scenario, seed=base.seed + 1,
                                 workload_seed=base.workload_seed,
                                 num_requests=base.num_requests,
                                 events=base.events)
        assert reseeded.digest() != base.digest()

    def test_validation_rejects_malformed_events(self):
        bad_kind = FaultSchedule(
            scenario="sharded",
            events=(ScheduleEvent(kind="meteor", at_ms=0.0),))
        assert bad_kind.validate()
        negative = FaultSchedule(
            scenario="sharded",
            events=(ScheduleEvent(kind="crash", at_ms=-1.0,
                                  node="execution:0:0"),))
        assert negative.validate()
        with pytest.raises(ValueError):
            run_schedule(bad_kind)

    def test_mutation_is_deterministic_and_valid(self):
        spec = scenario("rebalance")
        parent = seed_schedules("rebalance", num_requests=20)[-1]
        mutants_a = []
        rng = random.Random(42)
        for _ in range(50):
            parent = mutate(parent, rng, spec)
            assert parent.validate() == []
            mutants_a.append(parent.digest())
        parent = seed_schedules("rebalance", num_requests=20)[-1]
        rng = random.Random(42)
        mutants_b = [
            (parent := mutate(parent, rng, spec)).digest() for _ in range(50)]
        assert mutants_a == mutants_b


class TestFaultPlumbing:
    def test_link_fault_is_directional(self):
        """Satellite: (src, dst) overrides degrade only that direction."""
        model = NetworkFaultModel(NetworkConfig(),
                                  DeterministicRandom(0, "test-link"))
        a, b = agreement_id(0), agreement_id(1)
        model.set_link_fault(a, b, LinkFault(drop_probability=1.0))
        message = CorruptedMessage("probe", 64)
        assert model.plan(a, b, message).dropped
        assert not model.plan(b, a, message).dropped
        model.clear_link_fault(a, b)
        assert not model.plan(a, b, message).dropped

    def test_link_fault_adds_directed_delay(self):
        model = NetworkFaultModel(NetworkConfig(min_delay_ms=0.1,
                                                max_delay_ms=0.1),
                                  DeterministicRandom(0, "test-delay"))
        a, b = agreement_id(0), agreement_id(1)
        model.set_link_fault(a, b, LinkFault(extra_delay_ms=50.0))
        message = CorruptedMessage("probe", 64)
        slow = model.plan(a, b, message).deliveries[0][0]
        fast = model.plan(b, a, message).deliveries[0][0]
        assert slow >= 50.0 > fast

    def test_byzantine_window_installs_and_uninstalls(self):
        """Satellite: behaviours attach at ``at_ms`` and detach at
        ``until_ms`` in virtual time, not for the whole run."""
        spec = scenario("sharded")
        system = ShardedSystem(spec.make_config(), KeyValueStore, seed=0)
        node = system.shard_execution_ids[0][0]
        behaviour = make_behaviour("lying_reply", node)
        injector = FaultInjector(system)
        plan = FaultPlan()
        plan.byzantine(behaviour, at_ms=10.0, until_ms=30.0)
        injector.install(plan)
        system.run(5.0)
        assert not behaviour.installed
        system.run(10.0)
        assert behaviour.installed
        assert behaviour in injector.active_behaviours
        system.run(20.0)
        assert not behaviour.installed
        assert injector.active_behaviours == []


class TestOracles:
    def test_exactly_once_flags_duplicate_completion(self):
        def record(timestamp):
            return SimpleNamespace(
                timestamp=timestamp,
                result=SimpleNamespace(error=None, value="v"))

        client = SimpleNamespace(node_id="C0",
                                 completed=[record(1), record(1)],
                                 cross_shard_completed=0)
        violations = ExactlyOnceOracle().check(
            SimpleNamespace(clients=[client]), completed_all=False)
        assert any("twice" in v.detail for v in violations)

    def test_exactly_once_flags_reordered_completions(self):
        def record(timestamp):
            return SimpleNamespace(
                timestamp=timestamp,
                result=SimpleNamespace(error=None, value="v"))

        client = SimpleNamespace(node_id="C0",
                                 completed=[record(2), record(1)],
                                 cross_shard_completed=0)
        violations = ExactlyOnceOracle().check(
            SimpleNamespace(clients=[client]), completed_all=False)
        assert any("order" in v.detail for v in violations)

    def test_benign_run_passes_every_oracle(self):
        result = run_schedule(FaultSchedule(scenario="sharded",
                                            num_requests=20))
        assert result.completed_all
        assert result.violations == []


class TestFixedSchedules:
    def test_crash_during_range_handoff(self):
        """The handoff source crashing mid-transfer must not lose state or
        strand the new epoch; the run is bit-identically replayable."""
        first = run_schedule(CRASH_DURING_HANDOFF)
        assert first.completed_all
        assert first.violations == []
        assert first.stats["epoch"] >= 1
        assert first.stats["handoffs"] >= 1
        second = run_schedule(CRASH_DURING_HANDOFF)
        assert second.replay_digest == first.replay_digest

    def test_partition_during_cross_shard_vote(self):
        """An asymmetric cut during vote gathering must delay, never split,
        the cross-shard decision."""
        first = run_schedule(PARTITION_DURING_VOTE)
        assert first.completed_all
        assert first.violations == []
        second = run_schedule(PARTITION_DURING_VOTE)
        assert second.replay_digest == first.replay_digest

    def test_lying_replica_is_masked_by_intact_quorum(self):
        result = run_schedule(LYING_SCHEDULE)
        assert result.completed_all
        assert result.violations == []

    def test_lying_replica_caught_with_weakened_quorum(self):
        result = run_schedule(LYING_SCHEDULE, weaken_reply_quorum=True)
        assert any(v.oracle == "reply-table-audit"
                   for v in result.violations)


class TestOrderingPlaneAttacks:
    def test_equivocating_primary_never_commits_conflicting_values(self):
        """Equivocation splits the prepare quorums, so nothing conflicting
        commits; the deposed primary's window ends and every request lands."""
        first = run_schedule(EQUIVOCATING_PRIMARY)
        assert first.completed_all
        assert first.violations == []
        assert first.stats["view_changes"] >= 1
        second = run_schedule(EQUIVOCATING_PRIMARY)
        assert second.replay_digest == first.replay_digest

    def test_censoring_primary_is_deposed_and_requests_complete(self):
        """Backup forwarding plus per-request deadlines escalate censorship
        to a view change; the starved requests complete under the successor."""
        first = run_schedule(CENSORING_PRIMARY)
        assert first.completed_all
        assert first.violations == []
        assert first.stats["view_changes"] >= 1
        second = run_schedule(CENSORING_PRIMARY)
        assert second.replay_digest == first.replay_digest

    def test_slow_primary_degrades_but_never_starves(self):
        """A primary riding just under the view-change timer costs latency
        only -- every request still completes and no invariant breaks."""
        result = run_schedule(SLOW_PRIMARY)
        assert result.completed_all
        assert result.violations == []

    def test_censoring_without_defence_starves_requests(self):
        """The liveness twin of the planted reply-quorum bug: with the
        censorship-resistant request path switched off, a censoring primary
        starves requests past the healed-liveness horizon and the
        bounded-progress oracle flags it."""
        result = run_schedule(CENSORING_PRIMARY,
                              disable_forwarding_defence=True)
        assert not result.completed_all
        assert any(v.oracle == "bounded-progress" for v in result.violations)
        assert result.stats["longest_stall_ms"] > 0

    def test_planted_liveness_bug_found_shrunk_and_replayed(self):
        """Acceptance demonstration (liveness): with forwarding defence
        disabled, the campaign finds a bounded-progress violation within
        budget, shrinks it, and the shrunk schedule replays bit-identically."""
        report = explore("sharded", budget=12, seed=1, num_requests=30,
                         disable_forwarding_defence=True)
        assert report.findings
        finding = report.findings[0]
        assert any(v.oracle == "bounded-progress"
                   for v in finding.run.violations)
        assert finding.shrunk.result.violations
        assert len(finding.shrunk.schedule.events) <= \
            len(finding.run.schedule.events)
        assert finding.replays_bit_identically
        report_json = report.to_json_dict()
        assert validate_schema.validate_fuzz_report(report_json) == []
        assert report_json["pass"] is False


class TestLivenessOracles:
    def test_bounded_progress_is_inert_without_context(self):
        oracle = BoundedProgressOracle(horizon_ms=100.0)
        assert oracle.check(SimpleNamespace(), completed_all=False) == []

    def test_bounded_progress_is_inert_when_complete_or_under_horizon(self):
        oracle = BoundedProgressOracle(horizon_ms=1000.0)
        context = RunContext(healed_at_ms=0.0, final_time_ms=5000.0,
                             expected=10, completed=10)
        assert oracle.check(SimpleNamespace(), completed_all=True,
                            context=context) == []
        short = RunContext(healed_at_ms=0.0, final_time_ms=500.0,
                           expected=10, completed=3)
        assert oracle.check(SimpleNamespace(), completed_all=False,
                            context=short) == []

    def test_bounded_progress_flags_starvation_past_horizon(self):
        oracle = BoundedProgressOracle(horizon_ms=1000.0)
        context = RunContext(healed_at_ms=100.0, final_time_ms=2000.0,
                             expected=10, completed=4)
        violations = oracle.check(SimpleNamespace(), completed_all=False,
                                  context=context)
        assert len(violations) == 1
        assert violations[0].oracle == "bounded-progress"
        assert "6 of 10" in violations[0].detail

    def test_no_progress_detector_tracks_longest_stall(self):
        detector = NoProgressDetector()
        detector.sample(0.0, 0)
        detector.sample(50.0, 0)      # 50ms stall
        detector.sample(100.0, 2)     # progress resets the window
        detector.sample(400.0, 2)     # 300ms stall
        detector.sample(450.0, 5)
        assert detector.longest_stall_ms == 300.0


class TestReorderGene:
    def test_reorder_field_serialises_only_when_set(self):
        """Corpus digest stability: a zero reorder gene is omitted, so
        pre-existing seed files keep their content digests and file names."""
        plain = ScheduleEvent(kind="link_fault", at_ms=0.0, duration_ms=10.0,
                              a="agreement:0", b="agreement:1", drop=0.1)
        schedule = FaultSchedule(scenario="sharded", events=(plain,))
        assert "reorder" not in schedule.to_json_dict()["events"][0]
        reordering = ScheduleEvent(kind="link_fault", at_ms=0.0,
                                   duration_ms=10.0, a="agreement:0",
                                   b="agreement:1", reorder=0.4)
        with_gene = FaultSchedule(scenario="sharded", events=(reordering,))
        data = with_gene.to_json_dict()
        assert data["events"][0]["reorder"] == 0.4
        restored = FaultSchedule.from_json(with_gene.to_json())
        assert restored == with_gene
        assert restored.digest() == with_gene.digest()
        assert validate_schema.validate_schedule(data) == []

    def test_reorder_probability_is_validated(self):
        bad = FaultSchedule(
            scenario="sharded",
            events=(ScheduleEvent(kind="link_fault", at_ms=0.0,
                                  a="agreement:0", b="agreement:1",
                                  reorder=1.5),))
        assert any("reorder" in problem for problem in bad.validate())

    def test_reorder_delays_copies_behind_later_traffic(self):
        model = NetworkFaultModel(NetworkConfig(min_delay_ms=0.1,
                                                max_delay_ms=0.1),
                                  DeterministicRandom(0, "test-reorder"))
        a, b = agreement_id(0), agreement_id(1)
        model.set_link_fault(a, b, LinkFault(reorder_probability=1.0))
        message = CorruptedMessage("probe", 64)
        delayed = model.plan(a, b, message).deliveries[0][0]
        plain = model.plan(b, a, message).deliveries[0][0]
        assert delayed > plain


class TestExplorer:
    def test_intact_campaign_is_clean_with_growing_coverage(self):
        report = explore("sharded", budget=6, seed=1, num_requests=30)
        assert report.findings == []
        assert report.runs == 6
        history = report.coverage_history
        assert all(b >= a for a, b in zip(history, history[1:]))
        assert history[-1] > history[0]
        assert report.corpus  # novelty seeds were admitted
        assert validate_schema.validate_fuzz_report(report.to_json_dict()) == []

    def test_planted_bug_found_shrunk_and_replayed(self):
        """Acceptance demonstration: with the g-instead-of-g+1 reply quorum
        planted, the campaign finds a violation within budget, shrinks it,
        and the shrunk schedule replays bit-identically."""
        report = explore("sharded", budget=12, seed=1, num_requests=30,
                         weaken_reply_quorum=True)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert any(v.oracle == "reply-table-audit"
                   for v in finding.run.violations)
        assert finding.shrunk.result.violations
        assert len(finding.shrunk.schedule.events) <= \
            len(finding.run.schedule.events)
        assert finding.replays_bit_identically
        report_json = report.to_json_dict()
        assert validate_schema.validate_fuzz_report(report_json) == []
        assert report_json["pass"] is False


class TestCorpusAndArtifacts:
    def test_corpus_roundtrip_and_regression(self, tmp_path):
        seeds = seed_schedules("sharded", num_requests=20)[:2]
        paths = save_corpus(tmp_path, seeds)
        assert len(paths) == len(seeds)
        for path in paths:
            assert validate_schema.validate_schedule_file(path) == []
        assert load_corpus(tmp_path) == sorted(seeds,
                                               key=lambda s: s.digest()[:12])
        report = replay_corpus(tmp_path)
        assert report.ok
        assert report.seeds == len(seeds)

    def test_save_schedule_is_idempotent(self, tmp_path):
        first = save_schedule(tmp_path, LYING_SCHEDULE)
        second = save_schedule(tmp_path, LYING_SCHEDULE)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_schedule_schema_validator(self):
        assert validate_schema.validate_schedule(
            LYING_SCHEDULE.to_json_dict()) == []
        broken = LYING_SCHEDULE.to_json_dict()
        broken["events"][0]["kind"] = "meteor"
        del broken["scenario"]
        errors = validate_schema.validate_schedule(broken)
        assert any("meteor" in e for e in errors)
        assert any("scenario" in e for e in errors)

    def test_fuzz_report_schema_validator_rejects_drift(self):
        report = {"mode": "explore", "scenario": "sharded", "seed": 0,
                  "runs": 2, "coverage": 30, "coverage_history": [31, 30],
                  "corpus": [], "violations": [], "pass": True}
        errors = validate_schema.validate_fuzz_report(report)
        assert any("shrank" in e for e in errors)
        report["coverage_history"] = [29, 30]
        report["violations"] = [{"schedule": {"bogus": True}}]
        errors = validate_schema.validate_fuzz_report(report)
        assert any("pass" in e for e in errors)
