"""Observability: metrics registry, request tracing, critical-path analysis.

The tentpole invariants under test:

* instruments are correct (counters, gauges, upper-inclusive histogram
  buckets, nearest-rank quantiles) and their no-op twins do nothing;
* tracing is deterministic -- identical seeds produce identical span
  timestamps -- because every timestamp comes from the virtual clock;
* observability is strictly passive: enabling it leaves the virtual-time
  results of a run bit-identical (the CI overhead gate enforces the same
  property on every benchmark leg);
* the critical-path analyzer folds traces with min-time semantics, ignores
  incomplete traces, and always reports the six canonical stages;
* the artifact schema validator accepts what the benchmarks emit and
  rejects malformed results/traces.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
import validate_schema  # noqa: E402  (benchmarks/ is not a package)

from conftest import make_config
from repro.analysis.critical_path import (
    STAGES,
    critical_path_breakdown,
    format_critical_path_table,
    stage_durations,
)
from repro.analysis.metrics import percentile, summarize_latencies
from repro.apps.counter import CounterService, increment
from repro.config import ObservabilityConfig
from repro.core import SeparatedSystem
from repro.obs import MetricsRegistry, TraceEvent, Tracer, read_trace_jsonl
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
)

OBS_ON = ObservabilityConfig(metrics=True, tracing=True)


def obs_system(seed=21, observability=OBS_ON, **overrides):
    config = make_config(observability=observability, **overrides)
    return SeparatedSystem(config, CounterService, seed=seed)


# ---------------------------------------------------------------------- #
# Instruments.
# ---------------------------------------------------------------------- #


class TestInstruments:
    def test_counter_and_gauge(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_histogram_buckets_are_upper_inclusive(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 1.5, 10.0, 11.0):
            histogram.observe(value)
        buckets = histogram.snapshot()["buckets"]
        # A value exactly on a bound belongs to that bound's bucket.
        assert buckets == {"le_1": 2, "le_10": 2, "overflow": 1}

    def test_histogram_quantile_clamped_to_observed_max(self):
        histogram = Histogram("h", bounds=(1.0, 100.0))
        for value in (0.2, 0.4, 2.0):
            histogram.observe(value)
        # The rank-3 bucket is le_100, but the answer never exceeds the
        # observed maximum.
        assert histogram.quantile(0.999) == 2.0
        # Ranks inside a bucket answer with the bucket's upper bound.
        assert histogram.quantile(0.5) == 1.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_snapshot_shape(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(0.5)
        snapshot = histogram.snapshot()
        for field in ("count", "sum", "mean", "min", "max", "p50", "p99",
                      "p999", "buckets"):
            assert field in snapshot

    def test_registry_returns_same_instrument_per_name(self):
        registry = MetricsRegistry("A0")
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_disabled_registry_hands_out_shared_noops(self):
        registry = MetricsRegistry("A0", enabled=False)
        assert registry.counter("x") is NOOP_COUNTER
        assert registry.gauge("g") is NOOP_GAUGE
        assert registry.histogram("h") is NOOP_HISTOGRAM
        registry.register_probe("p", lambda: {"never": "called"})
        assert all(section == {} for section in registry.snapshot().values())

    def test_noop_instruments_do_nothing(self):
        NOOP_COUNTER.inc(100)
        NOOP_GAUGE.set(9.0)
        NOOP_HISTOGRAM.observe(5.0)
        assert NOOP_COUNTER.value == 0
        assert NOOP_GAUGE.value == 0.0
        assert NOOP_HISTOGRAM.count == 0

    def test_probes_are_lazy(self):
        registry = MetricsRegistry("A0")
        calls = []
        registry.register_probe("state", lambda: calls.append(1) or {"n": 1})
        assert calls == []
        assert registry.snapshot()["probes"]["state"] == {"n": 1}
        assert calls == [1]


# ---------------------------------------------------------------------- #
# Percentiles (satellite: nearest-rank bias fix).
# ---------------------------------------------------------------------- #


class TestPercentiles:
    def test_nearest_rank_indices(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.95) == 95
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 0.999) == 100
        assert percentile(samples, 1.0) == 100

    def test_small_sample_sets(self):
        assert percentile([7.0], 0.999) == 7.0
        # rank ceil(0.5 * 2) = 1 -> the first sample, the lower median
        assert percentile([1.0, 2.0], 0.5) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_latency_summary_has_p999(self):
        summary = summarize_latencies(float(i) for i in range(1, 1001))
        assert summary.p999_ms == 999.0
        assert summary.p99_ms == 990.0


# ---------------------------------------------------------------------- #
# Tracer.
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_capacity_drops_rather_than_grows(self):
        tracer = Tracer(enabled=True, capacity=2)
        for i in range(5):
            tracer.record("t", "submit", "C0", float(i))
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("t", "submit", "C0", 0.0)
        assert tracer.events() == []

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.record("C0:1", "submit", "C0", 0.0)
        tracer.record("C0:1", "reply", "C0", 4.5)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        assert read_trace_jsonl(path) == tracer.events()

    def test_identical_seeds_produce_identical_traces(self):
        runs = []
        for _ in range(2):
            system = obs_system(seed=33)
            for _ in range(5):
                system.invoke(increment(1))
            runs.append(system.trace_events())
        assert runs[0] == runs[1]
        assert runs[0]  # non-empty: the comparison is meaningful

    def test_different_seeds_diverge(self):
        traces = []
        for seed in (33, 34):
            system = obs_system(seed=seed)
            for _ in range(5):
                system.invoke(increment(1))
            traces.append(system.trace_events())
        assert traces[0] != traces[1]


# ---------------------------------------------------------------------- #
# Passivity: observability cannot perturb the simulation.
# ---------------------------------------------------------------------- #


class TestZeroOverhead:
    def test_virtual_time_results_identical_on_and_off(self):
        outcomes = {}
        for label, obs in (("off", ObservabilityConfig()), ("on", OBS_ON)):
            system = obs_system(seed=44, observability=obs)
            values = [system.invoke(increment(1)).result.value
                      for _ in range(8)]
            outcomes[label] = (values, system.scheduler.now,
                               system.scheduler.events_processed,
                               system.total_completed())
        assert outcomes["on"] == outcomes["off"]

    def test_disabled_system_exposes_empty_observability(self):
        system = obs_system(seed=44, observability=ObservabilityConfig())
        system.invoke(increment(1))
        assert system.metrics_snapshot() == {}
        assert system.trace_events() == []

    def test_enabled_system_surfaces_hot_path_metrics(self):
        system = obs_system(seed=44)
        for _ in range(4):
            system.invoke(increment(1))
        snapshot = system.metrics_snapshot()
        nodes = snapshot["nodes"]
        queue_counters = nodes["A0"]["counters"]
        assert queue_counters["queue.batches_sent"] == 4
        assert queue_counters["queue.replies_forwarded"] == 4
        assert "agreement.state" in nodes["A0"]["probes"]
        # Ad-hoc crypto counters (the *_cached tallies) ride along.
        assert "digest" in snapshot["crypto_ops"]
        assert "wire_cache" in snapshot["global"]


# ---------------------------------------------------------------------- #
# Critical-path analysis.
# ---------------------------------------------------------------------- #


def _trace(trace_id, *points):
    return [TraceEvent(trace_id, event, node, t_ms)
            for event, node, t_ms in points]


class TestCriticalPath:
    def test_stage_durations_fold_one_trace(self):
        events = _trace("C0:1",
                        ("submit", "C0", 0.0), ("admit", "A0", 1.0),
                        ("order", "A0", 3.0), ("commit", "A0", 6.0),
                        ("release", "A0", 6.5), ("execute", "E0", 8.0),
                        ("reply", "C0", 10.0))
        durations = stage_durations(events)
        assert durations["admit"] == [1.0]
        assert durations["batch"] == [2.0]
        assert durations["agree"] == [3.0]
        assert durations["release"] == [0.5]
        assert durations["execute"] == [1.5]
        assert durations["reply"] == [2.0]

    def test_min_time_folding_takes_earliest_occurrence(self):
        # Three replicas commit at different times; the fastest causal
        # path uses the earliest.
        events = _trace("C0:1",
                        ("submit", "C0", 0.0), ("admit", "A0", 1.0),
                        ("order", "A0", 2.0), ("commit", "A2", 9.0),
                        ("commit", "A0", 4.0), ("commit", "A1", 5.0),
                        ("release", "A0", 5.0), ("execute", "E0", 6.0),
                        ("reply", "C0", 7.0))
        assert stage_durations(events)["agree"] == [2.0]

    def test_incomplete_traces_are_excluded(self):
        complete = _trace("C0:1",
                          ("submit", "C0", 0.0), ("admit", "A0", 1.0),
                          ("order", "A0", 2.0), ("commit", "A0", 3.0),
                          ("release", "A0", 4.0), ("execute", "E0", 5.0),
                          ("reply", "C0", 6.0))
        in_flight = _trace("C0:2", ("submit", "C0", 5.0), ("admit", "A0", 6.0))
        breakdown = critical_path_breakdown(complete + in_flight)
        assert breakdown["traces"] == 1

    def test_breakdown_always_reports_all_six_stages(self):
        breakdown = critical_path_breakdown([])
        assert set(STAGES) <= set(breakdown["stages"])
        assert breakdown["traces"] == 0
        assert breakdown["dominant_stage"] == ""

    def test_dominant_stage_and_table(self):
        events = _trace("C0:1",
                        ("submit", "C0", 0.0), ("admit", "A0", 1.0),
                        ("order", "A0", 2.0), ("commit", "A0", 20.0),
                        ("release", "A0", 21.0), ("execute", "E0", 22.0),
                        ("reply", "C0", 23.0))
        breakdown = critical_path_breakdown(events)
        assert breakdown["dominant_stage"] == "agree"
        table = format_critical_path_table(breakdown)
        assert "agree <- dominant" in table

    def test_end_to_end_breakdown_from_live_system(self):
        system = obs_system(seed=55)
        for _ in range(6):
            system.invoke(increment(1))
        breakdown = system.critical_path()
        assert breakdown["traces"] == 6
        for stage in STAGES:
            assert breakdown["stages"][stage]["samples"] == 6
        # Stage durations must sum to the end-to-end reply latency.
        events = system.trace_events()
        first = min(e.t_ms for e in events if e.event == "submit")
        last = max(e.t_ms for e in events if e.event == "reply")
        total = sum(breakdown["stages"][stage]["mean_ms"] * 6
                    for stage in STAGES)
        assert total <= (last - first) * 6 + 1e-9


# ---------------------------------------------------------------------- #
# Artifact schema validation (satellite: CI fails on malformed output).
# ---------------------------------------------------------------------- #


def _valid_bench():
    stage = {"samples": 3, "mean_ms": 1.0, "p50_ms": 1.0, "p99_ms": 2.0,
             "p999_ms": 2.0, "max_ms": 2.0}
    return {
        "benchmark": "hotpath", "mode": "quick", "seed": 42,
        "workload_seed": 7, "pass": True,
        "critical_path": {
            "traces": 3, "dominant_stage": "reply", "dominant_mean_ms": 1.0,
            "stages": {name: dict(stage) for name in STAGES},
        },
    }


class TestSchemaValidation:
    def test_valid_bench_passes(self):
        assert validate_schema.validate_bench(_valid_bench()) == []

    def test_missing_stage_field_fails(self):
        results = _valid_bench()
        del results["critical_path"]["stages"]["agree"]["p999_ms"]
        errors = validate_schema.validate_bench(results)
        assert any("agree.p999_ms" in error for error in errors)

    def test_missing_critical_path_fails_unless_allowed(self):
        results = _valid_bench()
        del results["critical_path"]
        assert validate_schema.validate_bench(results)
        assert validate_schema.validate_bench(
            results, require_critical_path=False) == []

    def test_missing_required_top_level_field_fails(self):
        results = _valid_bench()
        del results["pass"]
        assert any("'pass'" in error
                   for error in validate_schema.validate_bench(results))

    def test_valid_trace_lines_pass(self):
        lines = ['{"trace_id": "C0:1", "event": "submit", "node": "C0", "t_ms": 0.0}',
                 '{"trace_id": "C0:1", "event": "reply", "node": "C0", "t_ms": 2.5}']
        assert validate_schema.validate_trace_lines(lines) == []

    def test_unknown_event_and_time_regression_fail(self):
        lines = ['{"trace_id": "t", "event": "teleport", "node": "C0", "t_ms": 1.0}',
                 '{"trace_id": "t", "event": "reply", "node": "C0", "t_ms": 0.5}']
        errors = validate_schema.validate_trace_lines(lines)
        assert any("unknown event" in error for error in errors)
        assert any("decreases" in error for error in errors)

    def test_empty_trace_fails(self):
        assert validate_schema.validate_trace_lines([])

    def test_exported_trace_validates(self, tmp_path):
        system = obs_system(seed=55)
        for _ in range(3):
            system.invoke(increment(1))
        path = tmp_path / "trace.jsonl"
        system.export_trace_jsonl(str(path))
        assert validate_schema.validate_trace_file(path) == []
