"""Fault-tolerance integration tests.

The paper's headline claims: the execution cluster masks up to ``g`` faulty
execution replicas with only ``2g + 1`` replicas; the agreement cluster masks
up to ``f`` faults with ``3f + 1`` replicas (including a faulty primary, via
view change); retransmission bridges lossy links between the clusters.
"""

import pytest

from conftest import make_config
from repro.apps.counter import CounterService, increment, read_counter
from repro.apps.kvstore import KeyValueStore, get, put
from repro.config import AuthenticationScheme, NetworkConfig
from repro.core import CoupledSystem, SeparatedSystem
from repro.errors import LivenessTimeoutError
from repro.faults import CorruptReplyBehaviour, FaultInjector, FaultPlan, make_byzantine


class TestCrashFaults:
    def test_progress_with_one_crashed_execution_node(self, config):
        system = SeparatedSystem(config, CounterService, seed=21)
        system.crash_execution(0)
        values = [system.invoke(increment(1)).result.value for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_no_progress_with_majority_of_execution_nodes_crashed(self, config):
        """With g + 1 = 2 of 3 execution replicas down, no reply certificate
        can be formed -- the bound is tight."""
        system = SeparatedSystem(config, CounterService, seed=22)
        system.crash_execution(0)
        system.crash_execution(1)
        with pytest.raises(LivenessTimeoutError):
            system.invoke(increment(1), timeout_ms=2_000.0)

    def test_progress_with_one_crashed_agreement_backup(self, config):
        system = SeparatedSystem(config, CounterService, seed=23)
        system.crash_agreement(2)  # a backup in view 0
        values = [system.invoke(increment(1)).result.value for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_crashed_primary_triggers_view_change_and_progress(self, config):
        system = SeparatedSystem(config, CounterService, seed=24)
        system.crash_agreement(0)  # the primary of view 0
        record = system.invoke(increment(1), timeout_ms=30_000.0)
        assert record.result.value == 1
        views = {replica.view for replica in system.agreement_replicas
                 if not replica.crashed}
        assert max(views) >= 1
        # The system keeps working in the new view.
        assert system.invoke(increment(1)).result.value == 2

    def test_crash_mid_run_preserves_linearizability(self, config):
        system = SeparatedSystem(config, KeyValueStore, seed=25)
        system.invoke(put("k", "before"))
        system.crash_execution(1)
        system.invoke(put("k", "after"))
        assert system.invoke(get("k")).result.value["value"] == "after"

    def test_fault_injector_schedules_crash_and_recovery(self, config):
        system = SeparatedSystem(config, CounterService, seed=26)
        injector = FaultInjector(system)
        target = system.execution_nodes[0].node_id
        plan = FaultPlan().crash(target, at_ms=0.0).recover(target, at_ms=100.0)
        injector.install(plan)
        system.run(150.0)
        assert not system.execution_nodes[0].crashed
        assert {event.kind for event in injector.applied} == {"crash", "recover"}
        assert system.invoke(increment(1)).result.value == 1

    def test_coupled_baseline_tolerates_one_crashed_replica(self, config):
        system = CoupledSystem(config, CounterService, seed=27)
        system.crash_replica(3)
        values = [system.invoke(increment(1)).result.value for _ in range(4)]
        assert values == [1, 2, 3, 4]


class TestViewChangeDefences:
    def test_escalation_delay_backs_off_exponentially_to_the_cap(self, config):
        system = SeparatedSystem(config, CounterService, seed=31)
        replica = system.agreement_replicas[1]
        timers = replica.config.timers
        delays = []
        for attempts in range(6):
            replica._view_change_attempts = attempts
            delays.append(replica._escalation_delay_ms())
        assert delays[0] == timers.view_change_ms * timers.view_change_backoff
        assert all(later >= earlier
                   for earlier, later in zip(delays, delays[1:]))
        assert delays[-1] == max(timers.view_change_backoff_cap_ms,
                                 timers.view_change_ms)

    def test_target_selection_skips_recently_deposed_primaries(self, config):
        system = SeparatedSystem(config, CounterService, seed=32)
        replica = system.agreement_replicas[1]
        assert replica.next_view_target(0) == 1
        replica._note_deposed(replica.primary_of(1), 0)
        assert replica.next_view_target(0) == 2
        assert replica.primaries_deposed == 1

    def test_deposed_skip_is_bounded_to_one_rotation(self, config):
        """If every candidate in the rotation was recently deposed,
        liveness beats placement: the immediate successor is used."""
        system = SeparatedSystem(config, CounterService, seed=33)
        replica = system.agreement_replicas[1]
        for view in range(len(replica.agreement_ids)):
            replica._note_deposed(replica.primary_of(view + 1), view)
        assert replica.next_view_target(0) == 1


class TestByzantineExecutionFaults:
    def test_corrupt_replies_from_one_node_are_masked(self, config):
        """A Byzantine execution node reports wrong results for everything;
        the g + 1 reply quorum means clients never accept its answer."""
        system = SeparatedSystem(config, CounterService, seed=31)
        liar = system.execution_nodes[0].node_id
        behaviour = make_byzantine(system, CorruptReplyBehaviour(liar))
        values = [system.invoke(increment(1)).result.value for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]
        assert behaviour.messages_affected > 0

    def test_corrupt_replies_masked_under_threshold_certificates(self):
        config = make_config(authentication=AuthenticationScheme.THRESHOLD)
        system = SeparatedSystem(config, CounterService, seed=32)
        liar = system.execution_nodes[2].node_id
        make_byzantine(system, CorruptReplyBehaviour(liar))
        values = [system.invoke(increment(1)).result.value for _ in range(4)]
        assert values == [1, 2, 3, 4]

    def test_two_liars_exceed_the_bound(self, config):
        """With g + 1 = 2 of 3 execution replicas lying consistently, the
        remaining correct replica cannot form a quorum: the request hangs
        rather than returning a wrong answer (safety over liveness)."""
        system = SeparatedSystem(config, CounterService, seed=33)
        make_byzantine(system, CorruptReplyBehaviour(system.execution_nodes[0].node_id))
        make_byzantine(system, CorruptReplyBehaviour(system.execution_nodes[1].node_id))
        with pytest.raises(LivenessTimeoutError):
            system.invoke(increment(1), timeout_ms=2_000.0)


class TestLossyNetwork:
    def test_progress_over_lossy_links(self):
        config = make_config(network=NetworkConfig(min_delay_ms=0.05, max_delay_ms=0.5,
                                                   drop_probability=0.08,
                                                   duplicate_probability=0.05,
                                                   reorder_probability=0.1))
        system = SeparatedSystem(config, CounterService, seed=34)
        values = [system.invoke(increment(1), timeout_ms=60_000.0).result.value
                  for _ in range(6)]
        assert values == [1, 2, 3, 4, 5, 6]

    def test_duplicated_messages_do_not_double_execute(self):
        config = make_config(network=NetworkConfig(min_delay_ms=0.05, max_delay_ms=0.3,
                                                   duplicate_probability=0.5))
        system = SeparatedSystem(config, CounterService, seed=35)
        for _ in range(5):
            system.invoke(increment(1), timeout_ms=60_000.0)
        final = system.invoke(read_counter(), timeout_ms=60_000.0)
        assert final.result.value == 5

    def test_partition_between_clusters_heals(self, config):
        system = SeparatedSystem(config, CounterService, seed=36)
        # Cut every agreement-to-execution link, then heal after 200 ms; the
        # message-queue retransmission timers must bridge the outage.
        for replica in system.agreement_replicas:
            for node in system.execution_nodes:
                system.network.faults.partition(replica.node_id, node.node_id)
        system.scheduler.call_after(200.0, system.network.faults.heal_all)
        record = system.invoke(increment(1), timeout_ms=30_000.0)
        assert record.result.value == 1
        assert sum(q.retransmissions for q in system.message_queues) > 0
