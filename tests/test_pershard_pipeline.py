"""Skew-aware concurrency tests (per-shard pipeline windows, out-of-order
shard delivery, per-shard bundle controllers, RTT-derived gather window).

The safety-critical properties:

* a stalled shard must not stall admission for other shards (the tentpole),
  while the global-watermark configuration retains the old conservative
  behaviour;
* shard-local sequence numbers stay deterministic across replicas no matter
  how far out of commit order batches are staged;
* misroute rejection at the execution replicas is unchanged by the
  per-shard frontier;
* a hot shard's bundle controller grows without inflating cold shards'
  bundle sizes (the shared low-load controller stays at the minimum).
"""

import pytest

from conftest import make_config
from repro.agreement.batching import AdaptiveBundleController, Batcher
from repro.apps.kvstore import KeyValueStore, extract_key, put
from repro.config import BatchingConfig, PipelineConfig, ShardingConfig, SystemConfig
from repro.errors import ConfigurationError, LivenessTimeoutError
from repro.messages.agreement import OrderedBatch
from repro.sharding import ShardedBatch, ShardedSystem
from repro.sharding.queue import ShardRouterQueue


def keys_of_shard(system, shard, count, universe=200):
    keys = [f"key{i}" for i in range(universe)
            if system.shard_of_key(f"key{i}") == shard]
    assert len(keys) >= count, "probe universe too small"
    return keys[:count]


def pershard_config(num_shards=2, depth=4, ooo=True, **overrides):
    defaults = dict(
        pipeline_depth=depth,
        sharding=ShardingConfig(num_shards=num_shards),
        pipeline=PipelineConfig(per_shard_depth=depth, ooo_shard_delivery=ooo,
                                rtt_gather=True),
    )
    defaults.update(overrides)
    return make_config(**defaults)


def global_config(num_shards=2, depth=4, **overrides):
    defaults = dict(
        pipeline_depth=depth,
        sharding=ShardingConfig(num_shards=num_shards),
        pipeline=PipelineConfig(),
    )
    defaults.update(overrides)
    return make_config(**defaults)


def batches_by_global_seq(system):
    """Reconstruct each OrderedBatch from the execution replicas' logs."""
    batches = {}
    for shard in range(system.num_shards):
        node = system.execution_node(shard, 0)
        for local in node.recent_batches.values():
            batches[local.global_seq] = OrderedBatch(
                seq=local.global_seq, view=local.view,
                request_certificates=local.full_request_certificates,
                agreement_certificate=local.agreement_certificate,
                nondet=local.nondet)
    return batches


class TestPipelineConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_config(pipeline=PipelineConfig(per_shard_depth=0))
        # None (global watermark) and positive depths are fine.
        make_config(pipeline=PipelineConfig())
        make_config(pipeline=PipelineConfig(per_shard_depth=1))

    def test_sharded_constructor_defaults_to_skew_aware(self):
        config = SystemConfig.sharded(4, pipeline_depth=8)
        assert config.pipeline.per_shard_depth == 8
        assert config.pipeline.ooo_shard_delivery
        assert config.pipeline.rtt_gather
        explicit = SystemConfig.sharded(4, pipeline=PipelineConfig())
        assert explicit.pipeline.per_shard_depth is None


class TestStalledShard:
    """The tentpole: one stalled shard must not throttle the others."""

    DEPTH = 4

    def _run(self, config, num_cold_ops):
        system = ShardedSystem(config, KeyValueStore, seed=51)
        hot_key = keys_of_shard(system, 0, 1)[0]
        cold_keys = keys_of_shard(system, 1, num_cold_ops)
        # Stall shard 0: with 2 of its 2g + 1 = 3 replicas crashed it can
        # never assemble a g + 1 reply certificate, so its batches stay
        # unanswered forever (agreement itself is unaffected).
        system.crash_execution(0, 1)
        system.crash_execution(0, 2)
        system.submit(put(hot_key, "stuck"), client_index=0)
        completed = 0
        try:
            for key in cold_keys:
                system.invoke(put(key, "v"), client_index=1, timeout_ms=1_500.0)
                completed += 1
        except LivenessTimeoutError:
            pass
        return completed

    def test_per_shard_windows_keep_cold_shard_flowing(self):
        num_ops = 3 * self.DEPTH
        completed = self._run(pershard_config(depth=self.DEPTH), num_ops)
        assert completed == num_ops

    def test_global_watermark_stalls_behind_the_hot_shard(self):
        """The baseline really has the pathology the tentpole removes: once
        the stalled shard-0 batch pins the contiguous answered frontier, the
        global window fills and shard-1 admission stops."""
        num_ops = 3 * self.DEPTH
        completed = self._run(global_config(depth=self.DEPTH), num_ops)
        assert completed < num_ops


class TestOutOfOrderDelivery:
    def _fresh_queue(self, system):
        return ShardRouterQueue(
            owner=system.agreement_replicas[0], config=system.config,
            shard_execution_ids=system.shard_execution_ids,
            client_ids=system.client_ids, router=system.router,
            shard_threshold_groups=system.shard_threshold_groups)

    def test_staging_order_does_not_change_shard_seq_assignment(self):
        """Replaying the same committed batches into two routers -- one in
        global order, one scrambled -- must produce identical per-shard
        frontiers: the assignment is a pure function of the committed
        prefix, which is what keeps it consistent across replicas whose
        commits complete in different orders."""
        system = ShardedSystem(pershard_config(), KeyValueStore, seed=52)
        keys = keys_of_shard(system, 0, 2) + keys_of_shard(system, 1, 2)
        for i, key in enumerate([keys[0], keys[2], keys[1], keys[3]]):
            system.invoke(put(key, f"v{i}"), client_index=i % 2)
        batches = batches_by_global_seq(system)
        assert len(batches) >= 4

        in_order = self._fresh_queue(system)
        scrambled = self._fresh_queue(system)
        seqs = sorted(batches)
        for seq in seqs:
            batch = batches[seq]
            in_order.stage_batch(seq=batch.seq, view=batch.view,
                                 request_certificates=batch.request_certificates,
                                 agreement_certificate=batch.agreement_certificate,
                                 nondet=batch.nondet)
        for seq in reversed(seqs):
            batch = batches[seq]
            scrambled.stage_batch(seq=batch.seq, view=batch.view,
                                  request_certificates=batch.request_certificates,
                                  agreement_certificate=batch.agreement_certificate,
                                  nondet=batch.nondet)
        assert scrambled._next_shard_seq == in_order._next_shard_seq
        assert set(scrambled.shard_pending) == set(in_order.shard_pending)
        for part, pending in in_order.shard_pending.items():
            assert (scrambled.shard_pending[part].batch.batch.seq
                    == pending.batch.batch.seq)

    def test_gapped_batch_is_buffered_until_the_prefix_commits(self):
        """A batch staged above a gap must not be released: the count of
        earlier same-shard batches -- hence its shard_seq -- is unknown
        until every earlier batch's content is fixed locally."""
        system = ShardedSystem(pershard_config(), KeyValueStore, seed=53)
        keys = keys_of_shard(system, 0, 1) + keys_of_shard(system, 1, 1)
        for i, key in enumerate(keys):
            system.invoke(put(key, f"v{i}"), client_index=i % 2)
        batches = batches_by_global_seq(system)
        first, second = sorted(batches)[:2]

        queue = self._fresh_queue(system)
        late = batches[second]
        queue.stage_batch(seq=late.seq, view=late.view,
                          request_certificates=late.request_certificates,
                          agreement_certificate=late.agreement_certificate,
                          nondet=late.nondet)
        assert queue._released_seq == 0
        assert not queue.shard_pending
        early = batches[first]
        queue.stage_batch(seq=early.seq, view=early.view,
                          request_certificates=early.request_certificates,
                          agreement_certificate=early.agreement_certificate,
                          nondet=early.nondet)
        assert queue._released_seq == second
        assert len(queue.shard_pending) == 2

    def test_shard_seq_assignment_identical_across_replicas_end_to_end(self):
        system = ShardedSystem(pershard_config(), KeyValueStore, seed=54)
        keys = keys_of_shard(system, 0, 3) + keys_of_shard(system, 1, 3)
        for i, key in enumerate(keys):
            system.invoke(put(key, f"v{i}"), client_index=i % 2)
        system.run(200.0)
        frontiers = [list(queue._next_shard_seq)
                     for queue in system.message_queues]
        assert all(frontier == frontiers[0] for frontier in frontiers)
        assert all(queue._released_seq == system.message_queues[0]._released_seq
                   for queue in system.message_queues)
        # Every shard executed exactly the batches its frontier released.
        for shard in range(system.num_shards):
            node = system.execution_node(shard, 0)
            assert node.max_executed == frontiers[0][shard]

    def test_misroute_rejection_unchanged_by_per_shard_frontier(self):
        system = ShardedSystem(pershard_config(), KeyValueStore, seed=55)
        key = keys_of_shard(system, 0, 1)[0]
        system.invoke(put(key, "v"))
        node = system.execution_node(0, 0)
        local = node.recent_batches[node.max_executed]
        batch = OrderedBatch(seq=local.global_seq, view=local.view,
                             request_certificates=local.full_request_certificates,
                             agreement_certificate=local.agreement_certificate,
                             nondet=local.nondet)
        victim = system.execution_node(1, 0)
        executed_before = victim.requests_executed
        # Shard 0's envelope delivered to shard 1: rejected outright.
        victim.handle_sharded_batch(system.agreement_ids[0],
                                    ShardedBatch(shard=0, shard_seq=local.seq,
                                                 batch=batch))
        assert victim.misroutes == 1
        # Relabelled for shard 1: the victim re-derives ownership and finds
        # nothing it owns, even with every agreement node "vouching".
        forged = ShardedBatch(shard=1, shard_seq=1, batch=batch)
        for agreement_id in system.agreement_ids:
            victim.handle_sharded_batch(agreement_id, forged)
        assert victim.misroutes >= 2
        assert victim.requests_executed == executed_before


def request_cert(timestamp):
    """A bare request certificate (the batcher never verifies)."""
    from repro.config import AuthenticationScheme
    from repro.crypto.certificate import Certificate
    from repro.messages.request import ClientRequest
    from repro.statemachine.interface import Operation
    from repro.util.ids import client_id

    return Certificate(
        payload=ClientRequest(operation=Operation(kind="null", args={}),
                              timestamp=timestamp, client=client_id(0)),
        scheme=AuthenticationScheme.MAC)


class TestPerShardBatching:
    def test_hot_shard_controller_grows_cold_stays_minimal(self):
        batching = BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=16)
        batcher = Batcher(
            controller=AdaptiveBundleController(batching),
            classifier=lambda cert: cert.payload.timestamp % 2,
            controller_factory=lambda: AdaptiveBundleController(batching))

        # Hot shard 1 (odd timestamps): repeated congested takes.
        for round_start in range(1, 40, 8):
            for timestamp in range(round_start, round_start + 8, 2):
                batcher.add(request_cert(timestamp))
            batcher.take(shard=1, in_flight=8)
        assert batcher.controller_for(1) is not batcher.controller
        assert batcher.bundle_size_for(1) > 1
        # Cold shard 0: single uncongested request, stays on the shared
        # low-load controller at the minimum bundle size.
        batcher.add(request_cert(2))
        taken = batcher.take(shard=0, in_flight=0)
        assert len(taken) == 1
        assert batcher.controller_for(0) is batcher.controller
        assert batcher.bundle_size_for(0) == 1
        assert batcher.bundle_size == 1  # shared controller never grew

    def test_batcher_fifo_across_shards_and_removal(self):
        from repro.util.ids import client_id

        batcher = Batcher(classifier=lambda cert: cert.payload.timestamp % 2)
        cert = request_cert
        for timestamp in (1, 2, 3, 4):
            assert batcher.add(cert(timestamp))
        assert not batcher.add(cert(1))  # duplicate suppressed
        assert len(batcher) == 4
        assert batcher.shards() == [1, 0]  # shard of the oldest head first
        pending = [c.payload.timestamp for c in batcher.pending_requests()]
        assert pending == [1, 2, 3, 4]  # arrival order across queues

        batcher.remove(client_id(0), 1)
        assert len(batcher) == 3
        assert batcher.shards() == [0, 1]
        taken = batcher.take()  # FIFO: shard 0's head (timestamp 2) is oldest
        assert [c.payload.timestamp for c in taken] == [2]
        assert batcher.contains(client_id(0), 3)
        assert not batcher.contains(client_id(0), 2)

    def test_rtt_gather_window_tracks_measured_round_trip(self):
        system = ShardedSystem(pershard_config(), KeyValueStore, seed=56)
        key = keys_of_shard(system, 0, 1)[0]
        for i in range(4):
            system.invoke(put(key, f"v{i}"))
        primary = system.agreement_replicas[0]
        assert primary._rtt_ewma is not None and primary._rtt_ewma > 0
        window = primary._gather_window()
        assert 0 < window <= system.config.timers.batch_timeout_ms
        # Without the switch the static gather_ms is used.
        static = ShardedSystem(global_config(), KeyValueStore, seed=56)
        assert (static.agreement_replicas[0]._gather_window()
                == static.config.batching.gather_ms)


class TestAcceptanceWindow:
    def test_far_future_slots_are_ignored_not_buffered(self):
        """A Byzantine agreement node replaying a genuine batch at an
        arbitrarily distant slot must not grow the vote/pending tables."""
        system = ShardedSystem(pershard_config(), KeyValueStore, seed=57)
        key = keys_of_shard(system, 0, 1)[0]
        system.invoke(put(key, "v"))
        node = system.execution_node(0, 0)
        local = node.recent_batches[node.max_executed]
        batch = OrderedBatch(seq=local.global_seq, view=local.view,
                             request_certificates=local.full_request_certificates,
                             agreement_certificate=local.agreement_certificate,
                             nondet=local.nondet)
        far = node.max_executed + 10_000
        flood = ShardedBatch(shard=0, shard_seq=far, batch=batch)
        for agreement_id in system.agreement_ids:
            node.handle_sharded_batch(agreement_id, flood)
        assert far not in node._route_votes
        assert far not in node.pending
        # A slot just inside the window is still buffered normally.
        near = ShardedBatch(shard=0, shard_seq=node.max_executed + 2,
                            batch=batch)
        for agreement_id in system.agreement_ids[:2]:
            node.handle_sharded_batch(agreement_id, near)
        assert node.max_executed + 2 in node.pending
