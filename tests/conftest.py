"""Shared fixtures for the test suite.

Tests use small fault thresholds (f = g = h = 1), a perfectly reliable
low-latency network unless a test explicitly injects faults, and short
timers so that liveness scenarios resolve quickly in virtual time.
"""

from __future__ import annotations

import pytest

from repro.config import (
    AuthenticationScheme,
    CryptoCosts,
    NetworkConfig,
    SystemConfig,
    TimerConfig,
)
from repro.crypto.keys import Keystore
from repro.sim.scheduler import Scheduler
from repro.util.ids import agreement_id, client_id, execution_id


FAST_TIMERS = TimerConfig(client_retransmit_ms=80.0, agreement_retransmit_ms=40.0,
                          execution_fetch_ms=20.0, view_change_ms=200.0,
                          batch_timeout_ms=1.0)

#: cheap crypto so protocol-heavy tests stay fast in virtual time
CHEAP_CRYPTO = CryptoCosts(mac_ms=0.05, signature_sign_ms=0.5, signature_verify_ms=0.1,
                           threshold_share_ms=1.0, threshold_combine_ms=0.2,
                           threshold_verify_ms=0.1)


def make_config(**overrides) -> SystemConfig:
    """A small, fast configuration for integration tests."""
    defaults = dict(
        f=1, g=1, h=1, num_clients=2, pipeline_depth=16, checkpoint_interval=8,
        bundle_size=1, timers=FAST_TIMERS, crypto=CHEAP_CRYPTO,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


@pytest.fixture
def config() -> SystemConfig:
    return make_config()


@pytest.fixture
def threshold_config() -> SystemConfig:
    return make_config(authentication=AuthenticationScheme.THRESHOLD)


@pytest.fixture
def firewall_config() -> SystemConfig:
    return make_config(authentication=AuthenticationScheme.THRESHOLD,
                       use_privacy_firewall=True)


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler(seed=7)


@pytest.fixture
def keystore() -> Keystore:
    return Keystore()


@pytest.fixture
def node_ids():
    """A small universe of node ids used by crypto/message unit tests."""
    return {
        "clients": [client_id(i) for i in range(2)],
        "agreement": [agreement_id(i) for i in range(4)],
        "execution": [execution_id(i) for i in range(3)],
    }
