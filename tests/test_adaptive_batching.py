"""Tests for adaptive (AIMD) bundle sizing.

Satellite requirements: bundles grow under open-loop overload, shrink when
the load goes away, never violate the batch-timeout latency bound, and the
whole trajectory is deterministic for a given seed.
"""

import dataclasses
import statistics

import pytest

from conftest import FAST_TIMERS, make_config
from repro.agreement.batching import (
    AdaptiveBundleController,
    Batcher,
    StaticBundleController,
    make_bundle_controller,
)
from repro.apps.kvstore import KeyValueStore
from repro.apps.null_service import NullService, null_operation
from repro.config import BatchingConfig, ShardingConfig, SystemConfig
from repro.core import SeparatedSystem
from repro.errors import ConfigurationError
from repro.sharding import ShardedSystem
from repro.workloads import run_multishard_workload

ADAPTIVE = BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=32)

#: a bundle-fill window long enough for bundles to actually form in tests
BATCH_5MS = dataclasses.replace(FAST_TIMERS, batch_timeout_ms=5.0)


class TestControllerUnit:
    def test_grows_additively_under_queue_backlog(self):
        controller = AdaptiveBundleController(ADAPTIVE)
        for expected in range(2, 6):
            controller.on_take(backlog_before=10, taken=1, in_flight=0)
            assert controller.current == expected

    def test_grows_under_pipeline_congestion(self):
        controller = AdaptiveBundleController(ADAPTIVE)
        # One request in flight plus a full take: concurrent demand (2)
        # exceeds the current bundle size (1), so the bundle grows.
        controller.on_take(backlog_before=1, taken=1, in_flight=1)
        assert controller.current == 2

    def test_full_take_with_idle_pipeline_is_neutral(self):
        controller = AdaptiveBundleController(ADAPTIVE)
        controller.on_take(backlog_before=1, taken=1, in_flight=0)
        assert controller.current == 1
        assert controller.increases == 0 and controller.decreases == 0

    def test_shrinks_multiplicatively_when_idle(self):
        controller = AdaptiveBundleController(ADAPTIVE)
        for _ in range(7):
            controller.on_take(backlog_before=20, taken=8, in_flight=0)
        grown = controller.current
        assert grown > 2
        controller.on_take(backlog_before=1, taken=1, in_flight=0)
        assert controller.current == max(1, int(grown * ADAPTIVE.decrease_factor))

    def test_partial_take_under_congestion_does_not_shrink(self):
        controller = AdaptiveBundleController(ADAPTIVE)
        for _ in range(5):
            controller.on_take(backlog_before=20, taken=4, in_flight=0)
        grown = controller.current
        assert grown > 4
        # A small timer-forced take while requests are still in flight is
        # the normal gathering step of a saturated loop, not light load.
        controller.on_take(backlog_before=2, taken=2,
                           in_flight=ADAPTIVE.congestion_requests)
        assert controller.current == grown

    def test_respects_bounds(self):
        config = BatchingConfig(mode="adaptive", min_bundle=2, max_bundle=4)
        controller = AdaptiveBundleController(config)
        for _ in range(10):
            controller.on_take(backlog_before=50, taken=2, in_flight=0)
        assert controller.current == 4
        for _ in range(10):
            controller.on_take(backlog_before=1, taken=1, in_flight=0)
        assert controller.current == 2

    def test_static_controller_never_moves(self):
        controller = StaticBundleController(3)
        controller.on_take(backlog_before=50, taken=3, in_flight=9)
        assert controller.current == 3

    def test_factory_selects_by_config(self):
        static = make_bundle_controller(make_config(bundle_size=4))
        assert isinstance(static, StaticBundleController)
        assert static.current == 4
        adaptive = make_bundle_controller(make_config(batching=ADAPTIVE))
        assert isinstance(adaptive, AdaptiveBundleController)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(mode="magic").validate()
        with pytest.raises(ConfigurationError):
            BatchingConfig(mode="adaptive", min_bundle=4, max_bundle=2).validate()
        with pytest.raises(ConfigurationError):
            BatchingConfig(decrease_factor=1.5).validate()

    def test_batcher_exposes_controller_size(self):
        batcher = Batcher(1, controller=AdaptiveBundleController(ADAPTIVE))
        assert batcher.bundle_size == 1
        batcher.controller.on_take(backlog_before=10, taken=1, in_flight=0)
        assert batcher.bundle_size == 2


def overload_system(seed=21, **overrides):
    """A separated null-service system that saturates under a burst."""
    config = make_config(num_clients=8, app_processing_ms=2.0,
                         timers=BATCH_5MS, batching=ADAPTIVE, **overrides)
    return SeparatedSystem(config, NullService, seed=seed)


def run_burst(system, num_requests=64, timeout_ms=120_000.0):
    for i in range(num_requests):
        system.submit(null_operation(tag=i), client_index=i % len(system.clients))
    system.run_until(lambda: system.total_completed() >= num_requests, timeout_ms,
                     description=f"{num_requests} burst completions")
    return system


class TestAdaptiveIntegration:
    def test_bundles_grow_under_overload(self):
        system = run_burst(overload_system())
        primary = system.agreement_replicas[0]
        assert primary.batcher.largest_batch > 1
        assert primary.batcher.controller.increases > 0
        # Bundling actually amortised agreement: fewer batches than requests.
        assert primary.batches_delivered < 64

    def test_bundles_shrink_when_load_stops(self):
        system = run_burst(overload_system())
        primary = system.agreement_replicas[0]
        grown = primary.batcher.controller.current
        assert grown > 1
        # Sparse follow-up traffic: one request at a time, fully drained.
        for i in range(8):
            system.invoke(null_operation(tag=1000 + i), client_index=0)
            system.run(50.0)
        assert primary.batcher.controller.current == 1
        assert primary.batcher.controller.decreases > 0

    def test_latency_bound_at_light_load(self):
        """At light load adaptive bundling must cost no extra latency even
        with a long bundle-fill timeout configured."""
        long_flush = dataclasses.replace(FAST_TIMERS, batch_timeout_ms=100.0)
        adaptive = SeparatedSystem(
            make_config(batching=ADAPTIVE, timers=long_flush), NullService, seed=5)
        static1 = SeparatedSystem(
            make_config(bundle_size=1), NullService, seed=5)
        adaptive_latencies = [adaptive.invoke(null_operation(tag=i)).latency_ms
                              for i in range(10)]
        static_latencies = [static1.invoke(null_operation(tag=i)).latency_ms
                            for i in range(10)]
        adaptive_p50 = statistics.median(adaptive_latencies)
        static_p50 = statistics.median(static_latencies)
        assert adaptive_p50 <= static_p50 * 1.10
        # And no single request waited anywhere near the 100 ms flush bound.
        assert max(adaptive_latencies) < static_p50 + long_flush.batch_timeout_ms

    def test_deterministic_for_a_seed(self):
        def trajectory(seed):
            system = run_burst(overload_system(seed=seed))
            primary = system.agreement_replicas[0]
            return (primary.batcher.total_batches,
                    primary.batcher.largest_batch,
                    primary.batcher.controller.current,
                    tuple(round(l, 9) for l in system.all_latencies_ms()))

        for seed in (3, 21):
            assert trajectory(seed) == trajectory(seed)

    def test_sharded_system_exercises_adaptive_batching(self):
        config = make_config(num_clients=8, app_processing_ms=1.0,
                             timers=BATCH_5MS, batching=ADAPTIVE,
                             sharding=ShardingConfig(num_shards=2))
        system = ShardedSystem(config, KeyValueStore, seed=13)
        result = run_multishard_workload(system, num_requests=64, key_space=32,
                                         distribution="uniform", seed=9)
        assert result.completed == 64
        primary = system.agreement_replicas[0]
        assert primary.batcher.largest_batch > 1
        # Both shards executed work carved from the grown bundles.
        assert all(count > 0 for count in result.requests_by_shard)
