"""Unit tests for agreement-library components: log, batching, local executor."""

import pytest

from repro.agreement.batching import Batcher
from repro.agreement.local import LocalExecutor, RetryOutcome
from repro.agreement.log import AgreementLog, LogEntry
from repro.config import AuthenticationScheme
from repro.crypto.keys import Keystore
from repro.crypto.provider import CryptoProvider
from repro.messages.agreement import CommitMsg, Prepare, PrePrepare
from repro.messages.request import ClientRequest
from repro.statemachine.interface import Operation
from repro.statemachine.nondet import NonDetInput
from repro.util.ids import agreement_id, client_id


def request_cert(keystore, client_index=0, timestamp=1):
    client = client_id(client_index)
    provider = CryptoProvider(client, keystore)
    request = ClientRequest(operation=Operation(kind="null"), timestamp=timestamp,
                            client=client)
    return provider.new_certificate(request, AuthenticationScheme.MAC, [agreement_id(0)])


class TestBatcher:
    def test_fifo_order(self):
        keystore = Keystore()
        batcher = Batcher(bundle_size=2)
        certs = [request_cert(keystore, 0, t) for t in range(1, 4)]
        for cert in certs:
            assert batcher.add(cert)
        assert batcher.take() == certs[:2]
        assert batcher.take() == certs[2:]
        assert not batcher.has_work()

    def test_duplicates_folded(self):
        keystore = Keystore()
        batcher = Batcher(bundle_size=4)
        cert = request_cert(keystore, 0, 1)
        assert batcher.add(cert)
        assert not batcher.add(request_cert(keystore, 0, 1))
        assert len(batcher) == 1

    def test_full_bundle_detection(self):
        keystore = Keystore()
        batcher = Batcher(bundle_size=3)
        for t in range(1, 3):
            batcher.add(request_cert(keystore, 0, t))
        assert not batcher.has_full_bundle()
        batcher.add(request_cert(keystore, 1, 1))
        assert batcher.has_full_bundle()

    def test_remove(self):
        keystore = Keystore()
        batcher = Batcher(bundle_size=4)
        batcher.add(request_cert(keystore, 0, 1))
        batcher.add(request_cert(keystore, 1, 1))
        batcher.remove(client_id(0), 1)
        assert len(batcher) == 1
        assert not batcher.contains(client_id(0), 1)

    def test_take_limit(self):
        keystore = Keystore()
        batcher = Batcher(bundle_size=10)
        for t in range(1, 6):
            batcher.add(request_cert(keystore, 0, t))
        assert len(batcher.take(limit=2)) == 2
        assert len(batcher) == 3

    def test_invalid_bundle_size(self):
        with pytest.raises(ValueError):
            Batcher(bundle_size=0)


class TestAgreementLog:
    def test_entry_creation_and_lookup(self):
        log = AgreementLog(checkpoint_interval=4)
        entry = log.entry(view=0, seq=1)
        assert entry is log.entry(view=0, seq=1)
        assert log.existing_entry(view=0, seq=2) is None

    def test_watermarks(self):
        log = AgreementLog(checkpoint_interval=4)
        assert log.low_watermark == 0
        assert log.high_watermark == 8
        assert log.in_watermarks(1)
        assert log.in_watermarks(8)
        assert not log.in_watermarks(0)
        assert not log.in_watermarks(9)

    def test_mark_stable_garbage_collects(self):
        log = AgreementLog(checkpoint_interval=4)
        for seq in range(1, 9):
            log.entry(0, seq)
        log.add_checkpoint_vote(4, agreement_id(0), b"d")
        log.mark_stable(4)
        assert log.stable_seq == 4
        assert log.existing_entry(0, 3) is None
        assert log.existing_entry(0, 5) is not None
        assert log.in_watermarks(12)

    def test_mark_stable_never_regresses(self):
        log = AgreementLog(checkpoint_interval=4)
        log.mark_stable(8)
        log.mark_stable(4)
        assert log.stable_seq == 8

    def test_checkpoint_support_counts_matching_digests(self):
        log = AgreementLog(checkpoint_interval=4)
        log.add_checkpoint_vote(4, agreement_id(0), b"d")
        log.add_checkpoint_vote(4, agreement_id(1), b"d")
        log.add_checkpoint_vote(4, agreement_id(2), b"other")
        assert log.checkpoint_support(4, b"d") == 2
        assert log.checkpoint_support(4, b"other") == 1

    def test_prepare_and_commit_counts(self):
        log = AgreementLog(checkpoint_interval=4)
        entry = log.entry(0, 1)
        digest = b"x" * 32
        for i in range(3):
            entry.prepares[agreement_id(i)] = Prepare(view=0, seq=1, batch_digest=digest,
                                                      replica=agreement_id(i))
        entry.prepares[agreement_id(3)] = Prepare(view=0, seq=1, batch_digest=b"y" * 32,
                                                  replica=agreement_id(3))
        assert entry.prepare_count(digest) == 3
        assert entry.prepare_count(b"y" * 32) == 1

    def test_prepared_entries_above_prefers_latest_view(self):
        log = AgreementLog(checkpoint_interval=4)
        keystore = Keystore()
        cert = request_cert(keystore)
        for view in (0, 1):
            entry = log.entry(view, 5)
            entry.prepared = True
            entry.pre_prepare = PrePrepare(view=view, seq=5, batch_digest=bytes([view]) * 32,
                                           requests=(cert,), nondet=NonDetInput.empty(),
                                           primary=agreement_id(view))
        found = log.prepared_entries_above(0)
        assert len(found) == 1
        assert found[0].view == 1


class TestLocalExecutorDefaults:
    class _Minimal(LocalExecutor):
        def execute_batch(self, seq, view, request_certificates,
                          agreement_certificate, nondet):
            return None

        def retry_hint(self, request_certificate):
            return RetryOutcome.NEED_ORDER

    def test_default_checkpoint_digest_depends_only_on_seq(self):
        executor = self._Minimal()
        assert executor.checkpoint_digest(4) == executor.checkpoint_digest(4)
        assert executor.checkpoint_digest(4) != executor.checkpoint_digest(8)

    def test_default_highest_ready_is_none(self):
        assert self._Minimal().highest_ready_seq() is None
