"""Tests for message formats, encrypted bodies, and nondeterminism handling."""

import pytest

from repro.config import AuthenticationScheme
from repro.crypto.certificate import Certificate
from repro.crypto.keys import Keystore
from repro.crypto.provider import CryptoProvider
from repro.errors import FirewallError, ProtocolError
from repro.messages.agreement import AgreementCertBody, OrderedBatch, PrePrepare
from repro.messages.reply import BatchReplyBody, ClientReply, ReplyBody
from repro.messages.request import ClientRequest, EncryptedBody, RequestEnvelope
from repro.statemachine.interface import Operation, OperationResult
from repro.statemachine.nondet import AbstractionLayer, NonDeterminismResolver, NonDetInput
from repro.util.ids import Role, agreement_id, client_id, execution_id


def make_request(encrypted=False, timestamp=1, tag=0):
    operation = Operation(kind="put", args={"key": "secret", "tag": tag}, body_size=128)
    body = operation
    if encrypted:
        body = EncryptedBody(operation, readers=frozenset({Role.CLIENT, Role.EXECUTION}))
    return ClientRequest(operation=body, timestamp=timestamp, client=client_id(0))


class TestEncryptedBody:
    def test_authorized_roles_can_open(self):
        body = EncryptedBody(Operation(kind="x"),
                             readers=frozenset({Role.CLIENT, Role.EXECUTION}))
        assert body.open(Role.CLIENT).kind == "x"
        assert body.open(Role.EXECUTION).kind == "x"

    def test_unauthorized_roles_raise(self):
        body = EncryptedBody(Operation(kind="x"),
                             readers=frozenset({Role.CLIENT, Role.EXECUTION}))
        for role in (Role.AGREEMENT, Role.FIREWALL):
            with pytest.raises(FirewallError):
                body.open(role)

    def test_wire_form_hides_contents(self):
        secret = Operation(kind="put", args={"password": "hunter2"})
        body = EncryptedBody(secret)
        wire = body.to_wire()
        assert "hunter2" not in str(wire)
        assert wire["encrypted"] is True

    def test_same_plaintext_same_digest(self):
        a = EncryptedBody(Operation(kind="x", args={"v": 1}))
        b = EncryptedBody(Operation(kind="x", args={"v": 1}))
        assert a.ciphertext_digest == b.ciphertext_digest


class TestRequestMessages:
    def test_request_authenticated_fields(self):
        request = make_request()
        fields = request.payload_fields()
        assert fields["t"] == 1
        assert fields["c"] == "C0"

    def test_padding_models_body_size(self):
        request = make_request()
        assert request.padding_bytes == 128
        assert request.wire_size() > 128

    def test_operation_visibility_by_role(self):
        request = make_request(encrypted=True)
        assert request.operation_for(Role.EXECUTION).kind == "put"
        with pytest.raises(FirewallError):
            request.operation_for(Role.AGREEMENT)

    def test_envelope_exposes_request(self):
        keystore = Keystore()
        client = CryptoProvider(client_id(0), keystore)
        request = make_request()
        cert = client.new_certificate(request, AuthenticationScheme.MAC, [agreement_id(0)])
        envelope = RequestEnvelope(certificate=cert)
        assert envelope.request is request
        assert envelope.wire_size() > 0


class TestReplyMessages:
    def _body(self, encrypted=False):
        result = OperationResult(value={"v": 1}, size=40)
        wrapped = result
        if encrypted:
            wrapped = EncryptedBody(result, readers=frozenset({Role.CLIENT, Role.EXECUTION}))
        reply = ReplyBody(view=0, seq=3, timestamp=1, client=client_id(0), result=wrapped)
        return BatchReplyBody(view=0, seq=3, replies=(reply,))

    def test_reply_for_client(self):
        body = self._body()
        assert body.reply_for(client_id(0)) is body.replies[0]
        assert body.reply_for(client_id(1)) is None

    def test_result_visibility(self):
        body = self._body(encrypted=True)
        reply = body.replies[0]
        assert reply.result_for(Role.CLIENT).value == {"v": 1}
        with pytest.raises(FirewallError):
            reply.result_for(Role.FIREWALL)

    def test_client_reply_padding(self):
        body = self._body()
        message = ClientReply(reply=body.replies[0], body=body,
                              certificate=Certificate(payload=body,
                                                      scheme=AuthenticationScheme.MAC))
        assert message.padding_bytes == 40


class TestOrderedBatch:
    def test_cert_body_accessor(self):
        keystore = Keystore()
        client = CryptoProvider(client_id(0), keystore)
        request = make_request()
        request_cert = client.new_certificate(request, AuthenticationScheme.MAC,
                                              [agreement_id(0)])
        body = AgreementCertBody(view=0, seq=1, batch_digest=b"d" * 32,
                                 nondet=NonDetInput.empty())
        agreement_cert = Certificate(payload=body, scheme=AuthenticationScheme.MAC)
        batch = OrderedBatch(seq=1, view=0, request_certificates=(request_cert,),
                             agreement_certificate=agreement_cert,
                             nondet=NonDetInput.empty())
        assert batch.cert_body.seq == 1
        assert batch.client_requests() == [request]
        assert batch.padding_bytes == 128


class TestNonDeterminismResolver:
    def test_propose_is_monotonic(self):
        resolver = NonDeterminismResolver()
        first = resolver.propose(100.0, b"a")
        second = resolver.propose(50.0, b"b")  # clock went backwards
        assert second.timestamp_ms >= first.timestamp_ms

    def test_propose_deterministic_bits(self):
        resolver = NonDeterminismResolver()
        a = resolver.propose(10.0, b"seed")
        b = NonDeterminismResolver().propose(10.0, b"seed")
        assert a.random_bits == b.random_bits

    def test_sanity_check_accepts_reasonable_proposal(self):
        resolver = NonDeterminismResolver(max_clock_skew_ms=100.0)
        proposal = NonDetInput(timestamp_ms=50.0, random_bits=b"\x01" * 16)
        assert resolver.sanity_check(proposal, now_ms=60.0)

    def test_sanity_check_rejects_future_timestamps(self):
        resolver = NonDeterminismResolver(max_clock_skew_ms=100.0)
        proposal = NonDetInput(timestamp_ms=500.0, random_bits=b"\x01" * 16)
        assert not resolver.sanity_check(proposal, now_ms=60.0)

    def test_sanity_check_rejects_wrong_length_bits(self):
        resolver = NonDeterminismResolver()
        proposal = NonDetInput(timestamp_ms=0.0, random_bits=b"\x01")
        assert not resolver.sanity_check(proposal, now_ms=0.0)

    def test_sanity_check_rejects_stale_timestamps(self):
        resolver = NonDeterminismResolver(max_clock_skew_ms=10.0)
        resolver.accept(NonDetInput(timestamp_ms=1000.0, random_bits=b"\x01" * 16))
        proposal = NonDetInput(timestamp_ms=10.0, random_bits=b"\x01" * 16)
        assert not resolver.sanity_check(proposal, now_ms=1000.0)


class TestAbstractionLayer:
    def test_requires_binding(self):
        layer = AbstractionLayer()
        with pytest.raises(ProtocolError):
            layer.timestamp()

    def test_derivations_are_deterministic(self):
        nondet = NonDetInput(timestamp_ms=5.0, random_bits=b"\x07" * 16)
        a = AbstractionLayer(nondet)
        b = AbstractionLayer(nondet)
        assert a.derive_handle("file:/x") == b.derive_handle("file:/x")
        assert a.derive_int("n", 100) == b.derive_int("n", 100)
        assert a.timestamp() == 5.0

    def test_different_labels_give_different_values(self):
        layer = AbstractionLayer(NonDetInput(timestamp_ms=0.0, random_bits=b"\x07" * 16))
        assert layer.derive_handle("a") != layer.derive_handle("b")

    def test_different_nondet_gives_different_values(self):
        a = AbstractionLayer(NonDetInput(timestamp_ms=0.0, random_bits=b"\x01" * 16))
        b = AbstractionLayer(NonDetInput(timestamp_ms=0.0, random_bits=b"\x02" * 16))
        assert a.derive_handle("x") != b.derive_handle("x")

    def test_derive_bytes_length(self):
        layer = AbstractionLayer(NonDetInput.empty())
        assert len(layer.derive_bytes("x", 40)) == 40

    def test_derive_int_range(self):
        layer = AbstractionLayer(NonDetInput.empty())
        for i in range(20):
            assert 0 <= layer.derive_int(f"label{i}", 7) < 7
        with pytest.raises(ValueError):
            layer.derive_int("x", 0)
