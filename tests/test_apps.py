"""Tests for the replicated applications (null server, counter, KV store, NFS)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.counter import CounterService, increment, read_counter
from repro.apps.kvstore import (
    KeyValueStore,
    compare_and_swap,
    delete,
    get,
    list_keys,
    put,
)
from repro.apps.nfs import (
    NfsService,
    nfs_create,
    nfs_getattr,
    nfs_lookup,
    nfs_mkdir,
    nfs_read,
    nfs_readdir,
    nfs_remove,
    nfs_rename,
    nfs_rmdir,
    nfs_write,
)
from repro.apps.null_service import NullService, null_operation
from repro.statemachine.nondet import NonDetInput

NONDET = NonDetInput(timestamp_ms=1234.0, random_bits=b"\x05" * 16)
OTHER_NONDET = NonDetInput(timestamp_ms=99.0, random_bits=b"\x09" * 16)


class TestNullService:
    def test_counts_executions(self):
        service = NullService()
        for i in range(3):
            result = service.execute(null_operation(tag=i), NONDET)
            assert result.value["count"] == i + 1

    def test_reply_size_modelled(self):
        service = NullService()
        result = service.execute(null_operation(reply_bytes=4096), NONDET)
        assert result.size == 4096

    def test_unknown_operation_is_an_error(self):
        service = NullService()
        result = service.execute(increment(), NONDET)
        assert result.error is not None

    def test_checkpoint_restore(self):
        service = NullService()
        service.execute(null_operation(), NONDET)
        data = service.checkpoint()
        other = NullService()
        other.restore(data)
        assert other.executed == 1


class TestCounterService:
    def test_increment_and_read(self):
        service = CounterService()
        assert service.execute(increment(2), NONDET).value == 2
        assert service.execute(increment(3), NONDET).value == 5
        assert service.execute(read_counter(), NONDET).value == 5

    def test_checkpoint_restore_roundtrip(self):
        service = CounterService()
        service.execute(increment(7), NONDET)
        restored = CounterService()
        restored.restore(service.checkpoint())
        assert restored.value == 7
        assert restored.operations_applied == 1

    def test_determinism_across_replicas(self):
        a, b = CounterService(), CounterService()
        operations = [increment(i) for i in range(10)]
        for operation in operations:
            assert a.execute(operation, NONDET).value == b.execute(operation, NONDET).value
        assert a.checkpoint() == b.checkpoint()


class TestKeyValueStore:
    def test_put_get_delete(self):
        store = KeyValueStore()
        store.execute(put("k", "v"), NONDET)
        assert store.execute(get("k"), NONDET).value == {"value": "v", "found": True}
        assert store.execute(delete("k"), NONDET).value == {"deleted": True}
        assert store.execute(get("k"), NONDET).value == {"value": None, "found": False}

    def test_cas_semantics(self):
        store = KeyValueStore()
        store.execute(put("k", 1), NONDET)
        assert store.execute(compare_and_swap("k", 1, 2), NONDET).value["swapped"]
        assert not store.execute(compare_and_swap("k", 1, 3), NONDET).value["swapped"]
        assert store.execute(get("k"), NONDET).value["value"] == 2

    def test_list_keys_prefix(self):
        store = KeyValueStore()
        for key in ("a/1", "a/2", "b/1"):
            store.execute(put(key, key), NONDET)
        assert store.execute(list_keys("a/"), NONDET).value["keys"] == ["a/1", "a/2"]

    def test_checkpoint_restore(self):
        store = KeyValueStore()
        store.execute(put("k", [1, 2, 3]), NONDET)
        restored = KeyValueStore()
        restored.restore(store.checkpoint())
        assert restored.snapshot() == {"k": [1, 2, 3]}

    @given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                              st.sampled_from(["a", "b", "c"]),
                              st.integers(min_value=0, max_value=5)),
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_matches_python_dict_model(self, script):
        """Property: the replicated KV store behaves exactly like a dict."""
        store = KeyValueStore()
        model = {}
        for kind, key, value in script:
            if kind == "put":
                store.execute(put(key, value), NONDET)
                model[key] = value
            elif kind == "get":
                result = store.execute(get(key), NONDET).value
                assert result["value"] == model.get(key)
                assert result["found"] == (key in model)
            else:
                result = store.execute(delete(key), NONDET).value
                assert result["deleted"] == (key in model)
                model.pop(key, None)
        assert store.snapshot() == model

    @given(st.lists(st.tuples(st.sampled_from(["put", "delete", "cas"]),
                              st.sampled_from(["x", "y"]),
                              st.integers(min_value=0, max_value=3)),
                    max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_replicas_stay_identical(self, script):
        """Property: two replicas applying the same operations in the same
        order produce identical checkpoints (determinism)."""
        a, b = KeyValueStore(), KeyValueStore()
        for kind, key, value in script:
            if kind == "put":
                operation = put(key, value)
            elif kind == "delete":
                operation = delete(key)
            else:
                operation = compare_and_swap(key, value, value + 1)
            a.execute(operation, NONDET)
            b.execute(operation, NONDET)
        assert a.checkpoint() == b.checkpoint()


class TestNfsService:
    def test_mkdir_create_write_read(self):
        fs = NfsService()
        assert fs.execute(nfs_mkdir("/src"), NONDET).error is None
        assert fs.execute(nfs_create("/src/a.c"), NONDET).error is None
        write = fs.execute(nfs_write("/src/a.c", 0, 100, data="hello"), NONDET)
        assert write.value["size"] == 100
        read = fs.execute(nfs_read("/src/a.c", 0, 100), NONDET)
        assert read.value["data"].startswith("hello")
        assert read.value["bytes"] == 100

    def test_lookup_and_getattr(self):
        fs = NfsService()
        fs.execute(nfs_mkdir("/d"), NONDET)
        attrs = fs.execute(nfs_getattr("/d"), NONDET).value["attributes"]
        assert attrs["type"] == "dir"
        assert fs.execute(nfs_lookup("/missing"), NONDET).error is not None

    def test_readdir_sorted(self):
        fs = NfsService()
        fs.execute(nfs_mkdir("/d"), NONDET)
        for name in ("c", "a", "b"):
            fs.execute(nfs_create(f"/d/{name}"), NONDET)
        assert fs.execute(nfs_readdir("/d"), NONDET).value["entries"] == ["a", "b", "c"]

    def test_remove_and_rmdir(self):
        fs = NfsService()
        fs.execute(nfs_mkdir("/d"), NONDET)
        fs.execute(nfs_create("/d/f"), NONDET)
        assert fs.execute(nfs_rmdir("/d"), NONDET).error is not None  # not empty
        fs.execute(nfs_remove("/d/f"), NONDET)
        assert fs.execute(nfs_rmdir("/d"), NONDET).error is None
        assert not fs.exists("/d")

    def test_rename_moves_subtree(self):
        fs = NfsService()
        fs.execute(nfs_mkdir("/old"), NONDET)
        fs.execute(nfs_create("/old/f"), NONDET)
        assert fs.execute(nfs_rename("/old", "/new"), NONDET).error is None
        assert fs.exists("/new/f")
        assert not fs.exists("/old")

    def test_create_requires_parent(self):
        fs = NfsService()
        assert fs.execute(nfs_create("/missing/f"), NONDET).error is not None

    def test_duplicate_create_is_error(self):
        fs = NfsService()
        fs.execute(nfs_create("/f"), NONDET)
        assert fs.execute(nfs_create("/f"), NONDET).error is not None

    def test_file_handles_come_from_agreed_nondeterminism(self):
        """Replicas given the same nondet inputs derive identical handles and
        timestamps; different inputs give different handles (the values are
        genuinely driven by the agreement cluster's choice)."""
        a, b, c = NfsService(), NfsService(), NfsService()
        a.execute(nfs_create("/f"), NONDET)
        b.execute(nfs_create("/f"), NONDET)
        c.execute(nfs_create("/f"), OTHER_NONDET)
        handle_a = a.execute(nfs_getattr("/f"), NONDET).value["attributes"]["handle"]
        handle_b = b.execute(nfs_getattr("/f"), NONDET).value["attributes"]["handle"]
        handle_c = c.execute(nfs_getattr("/f"), OTHER_NONDET).value["attributes"]["handle"]
        assert handle_a == handle_b
        assert handle_a != handle_c

    def test_timestamps_follow_agreed_clock(self):
        fs = NfsService()
        fs.execute(nfs_create("/f"), NONDET)
        attrs = fs.execute(nfs_getattr("/f"), NONDET).value["attributes"]
        assert attrs["mtime_ms"] == NONDET.timestamp_ms

    def test_checkpoint_restore_preserves_tree(self):
        fs = NfsService()
        fs.execute(nfs_mkdir("/d"), NONDET)
        fs.execute(nfs_create("/d/f"), NONDET)
        fs.execute(nfs_write("/d/f", 0, 64, data="abc"), NONDET)
        restored = NfsService()
        restored.restore(fs.checkpoint())
        assert restored.tree() == fs.tree()
        assert restored.execute(nfs_read("/d/f", 0, 64), NONDET).value["data"] == \
            fs.execute(nfs_read("/d/f", 0, 64), NONDET).value["data"]

    def test_replica_determinism_over_operation_sequence(self):
        operations = [nfs_mkdir("/p"), nfs_create("/p/a"), nfs_write("/p/a", 0, 32, data="x"),
                      nfs_read("/p/a"), nfs_create("/p/b"), nfs_remove("/p/a"),
                      nfs_readdir("/p")]
        a, b = NfsService(), NfsService()
        for operation in operations:
            ra = a.execute(operation, NONDET)
            rb = b.execute(operation, NONDET)
            assert ra.value == rb.value
        assert a.checkpoint() == b.checkpoint()
