"""Cross-shard operation tests.

The safety-critical properties of a consistent-cut operation:

* a multi-shard snapshot read returns values from one deterministic prefix
  of the agreed order -- the marker's sequence number -- no matter how many
  shards it spans (including all of them);
* a write transaction commits atomically (every touched shard applies its
  slice) or aborts atomically (no shard applies anything), with the
  read-set validated against certified peer-shard observations so every
  correct replica reaches the same decision;
* a marker racing a rebalance cut at the same position aborts
  deterministically -- every replica reports the stale pinned epoch
  identically -- and the client transparently retries on the new epoch;
* a Byzantine collator equivocating on the assembled reply is detected:
  the client trusts only the per-shard ``g + 1`` sub-certificates and
  re-derives the result from them;
* a collator that stops answering is not fatal: the client's
  retransmission makes every surviving touched cluster re-serve the
  assembled reply (fallover to the next-lowest shard).
"""

import pytest

from conftest import make_config
from repro.apps.kvstore import (
    KeyValueStore,
    extract_keys,
    get,
    multi_get,
    put,
    transaction,
)
from repro.config import (
    CrossShardConfig,
    PipelineConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError
from repro.sharding import (
    CrossShardReply,
    MapChange,
    ShardedSystem,
    cross_shard_request_of,
)
from repro.statemachine.nondet import NonDetInput
from repro.workloads import (
    audit_snapshot_consistency,
    equal_range_boundaries,
    mixed_cross_shard_operations,
    run_crossshard_window,
    seed_operations,
)
from repro.workloads.skew import skew_key

KEY_SPACE = 64


def make_system(num_shards=2, num_clients=4, seed=33, cross_shard=None,
                **overrides):
    config = make_config(
        num_clients=num_clients,
        sharding=ShardingConfig(
            num_shards=num_shards, strategy="range",
            range_boundaries=equal_range_boundaries(KEY_SPACE, num_shards)),
        pipeline=PipelineConfig(per_shard_depth=16, ooo_shard_delivery=True,
                                rtt_gather=True),
        cross_shard=cross_shard or CrossShardConfig(enabled=True),
        **overrides)
    return ShardedSystem(config, KeyValueStore, seed=seed)


def key_on(system, shard):
    """A key owned by ``shard`` at epoch 0."""
    num_shards = system.num_shards
    return skew_key((KEY_SPACE * (2 * shard + 1)) // (2 * num_shards))


def cluster_value(system, shard, key):
    """The value of ``key`` on every correct replica of ``shard`` (must agree)."""
    values = {node.app.snapshot().get(key)
              for node in system.execution_cluster(shard) if not node.crashed}
    assert len(values) == 1, f"replicas of shard {shard} diverge on {key!r}"
    return values.pop()


# ---------------------------------------------------------------------- #
# Application-level multi-key operations (unsharded semantics).
# ---------------------------------------------------------------------- #


class TestKvstoreMultiKey:
    def test_multi_get_and_txn_execute_locally(self):
        app = KeyValueStore()
        nondet = NonDetInput(timestamp_ms=0.0, random_bits=b"")
        app.execute(put("a", 1), nondet)
        app.execute(put("b", 2), nondet)
        read = app.execute(multi_get(["a", "b", "missing"]), nondet)
        assert read.value == {"values": {"a": 1, "b": 2, "missing": None}}
        committed = app.execute(transaction(reads={"a": 1}, writes={"b": 9}),
                                nondet)
        assert committed.value["committed"] is True
        assert app.snapshot()["b"] == 9
        aborted = app.execute(transaction(reads={"a": 999}, writes={"b": 0}),
                              nondet)
        assert aborted.value["committed"] is False
        assert aborted.value["observed"] == {"a": 1}
        assert app.snapshot()["b"] == 9

    def test_extract_keys_classifies_multi_key_kinds(self):
        assert extract_keys(multi_get(["b", "a"])) == ("a", "b")
        assert extract_keys(transaction(reads={"r": 1}, writes={"w": 2})) == \
            ("r", "w")
        assert extract_keys(put("k", 1)) is None
        assert extract_keys(get("k")) is None

    def test_cross_shard_request_of_requires_single_certificate(self):
        assert cross_shard_request_of(()) is None

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CrossShardConfig(max_keys=1).validate()
        with pytest.raises(ConfigurationError):
            CrossShardConfig(retry_limit=-1).validate()


# ---------------------------------------------------------------------- #
# Consistent-cut reads and transactions.
# ---------------------------------------------------------------------- #


class TestConsistentCut:
    def test_snapshot_read_across_two_shards(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, "L"))
        system.invoke(put(right, "R"))
        record = system.invoke(multi_get([left, right]))
        assert record.result.value == {"values": {left: "L", right: "R"}}
        assert system.message_queues[0].cross_shard_markers == 1

    def test_snapshot_read_spanning_all_shards(self):
        system = make_system(num_shards=4)
        keys = [key_on(system, shard) for shard in range(4)]
        for index, key in enumerate(keys):
            system.invoke(put(key, index))
        record = system.invoke(multi_get(keys))
        assert record.result.value == {
            "values": {key: index for index, key in enumerate(keys)}}
        # every cluster executed the marker exactly once
        for shard in range(4):
            executed = {node.cross_shard_executed
                        for node in system.execution_cluster(shard)}
            assert executed == {1}

    def test_transaction_commits_atomically_across_shards(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, "base"))
        record = system.invoke(transaction(reads={left: "base"},
                                           writes={left: "L2", right: "R2"}))
        assert record.result.value["committed"] is True
        assert cluster_value(system, 0, left) == "L2"
        assert cluster_value(system, 1, right) == "R2"

    def test_transaction_aborts_atomically_on_read_conflict(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, "actual"))
        record = system.invoke(transaction(reads={left: "expected-wrong"},
                                           writes={left: "NO", right: "NO"}))
        assert record.result.value["committed"] is False
        assert record.result.value["observed"] == {left: "actual"}
        assert cluster_value(system, 0, left) == "actual"
        assert cluster_value(system, 1, right) is None
        aborts = {node.cross_shard_aborts
                  for cluster in system.shard_execution_nodes
                  for node in cluster}
        assert aborts == {1}

    def test_write_only_transaction_needs_no_vote_round(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        record = system.invoke(transaction(reads={}, writes={left: 1, right: 2}))
        assert record.result.value["committed"] is True
        assert cluster_value(system, 0, left) == 1
        assert cluster_value(system, 1, right) == 2
        fetches = sum(node.vote_fetches
                      for cluster in system.shard_execution_nodes
                      for node in cluster)
        assert fetches == 0

    def test_single_shard_multi_get_routes_as_normal_request(self):
        system = make_system()
        key_a, key_b = skew_key(1), skew_key(2)  # both on shard 0
        system.invoke(put(key_a, "a"))
        system.invoke(put(key_b, "b"))
        record = system.invoke(multi_get([key_a, key_b]))
        assert record.result.value == {"values": {key_a: "a", key_b: "b"}}
        assert system.message_queues[0].cross_shard_markers == 0

    def test_disabled_cross_shard_fails_multi_shard_submission_locally(self):
        system = make_system(cross_shard=CrossShardConfig(enabled=False))
        record = system.invoke(multi_get([key_on(system, 0), key_on(system, 1)]))
        assert record.result.error is not None
        assert "disabled" in record.result.error
        # single-shard traffic is unaffected
        key = key_on(system, 0)
        system.invoke(put(key, "still-works"))
        assert system.invoke(get(key)).result.value["value"] == "still-works"

    def test_max_keys_bound_fails_locally_even_when_queued(self):
        system = make_system(cross_shard=CrossShardConfig(enabled=True,
                                                          max_keys=2))
        client = system.clients[0]
        too_many = [key_on(system, 0), key_on(system, 1), skew_key(1)]
        # Queue the oversized operation behind an outstanding one: the
        # failure happens inside the reply path, which must not raise.
        client.submit(put(key_on(system, 0), "x"))
        client.submit(multi_get(too_many))
        system.run_until(lambda: len(client.completed) == 2, 10_000.0,
                         description="queued oversized op fails locally")
        assert client.completed[-1].result.error is not None
        assert "max_keys" in client.completed[-1].result.error


# ---------------------------------------------------------------------- #
# A marker racing a rebalance cut.
# ---------------------------------------------------------------------- #


class TestEpochRace:
    def test_map_change_under_the_marker_aborts_and_retries(self):
        system = make_system()
        left, right = skew_key(4), skew_key(40)  # shards 0 and 1 at epoch 0
        system.invoke(put(left, "L"))
        system.invoke(put(right, "R"))
        # A cut the client has not heard about (it moves no keys -- the
        # upper half keeps its owner -- so the operation stays cross-shard
        # at epoch 1 and the stale pin is the only problem).
        primary = system.agreement_replicas[0]
        assert primary.propose_map_change(
            MapChange(kind="split", parent_epoch=0, key=skew_key(56), owner=1))
        system.run(300.0)
        assert system.partition_epoch() == 1
        client = system.clients[0]
        assert client.epoch == 0
        # The marker is released at epoch 1 while pinned to epoch 0: every
        # touched replica reports the same deterministic abort, the client
        # adopts the certified newer epoch and transparently retries.
        record = system.invoke(multi_get([left, right]))
        assert record.result.value == {"values": {left: "L", right: "R"}}
        assert client.cross_shard_retries == 1
        assert client.epoch == 1
        epoch_aborts = sum(node.cross_shard_epoch_aborts
                           for cluster in system.shard_execution_nodes
                           for node in cluster)
        assert epoch_aborts > 0

    def test_retry_preserves_timestamp_monotonicity_for_queued_requests(self):
        system = make_system()
        left, right = skew_key(4), skew_key(40)
        system.invoke(put(left, "L"))
        system.invoke(put(right, "R"))
        primary = system.agreement_replicas[0]
        assert primary.propose_map_change(
            MapChange(kind="split", parent_epoch=0, key=skew_key(56), owner=1))
        system.run(300.0)
        client = system.clients[0]
        done = len(client.completed)
        # A submission queued behind the epoch-aborting marker must still
        # execute after the transparent retry consumed a fresh timestamp.
        client.submit(multi_get([left, right]))
        client.submit(put(left, "after"))
        system.run_until(lambda: len(client.completed) == done + 2, 30_000.0,
                         description="queued request after an epoch retry")
        assert client.cross_shard_retries == 1
        assert client.completed[-2].result.value == {
            "values": {left: "L", right: "R"}}
        assert system.invoke(get(left)).result.value["value"] == "after"

    def test_retry_limit_bounds_transparent_retries(self):
        system = make_system(cross_shard=CrossShardConfig(enabled=True,
                                                          retry_limit=0))
        left, right = skew_key(4), skew_key(40)
        primary = system.agreement_replicas[0]
        assert primary.propose_map_change(
            MapChange(kind="split", parent_epoch=0, key=skew_key(56), owner=1))
        system.run(300.0)
        record = system.invoke(multi_get([left, right]))
        assert record.result.error is not None
        assert "retry limit" in record.result.error

    def test_merge_collapsing_the_operation_completes_normally(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)  # 16 and 48
        system.invoke(put(left, "L"))
        system.invoke(put(right, "R"))
        # Move shard 0's upper half (including ``left``) to shard 1: at
        # epoch 1 both keys live on shard 1, so the marker-to-be routes as
        # an ordinary single-shard request and the client must accept the
        # ordinary certified reply (the cross expectation collapses).
        primary = system.agreement_replicas[0]
        assert primary.propose_map_change(
            MapChange(kind="split", parent_epoch=0, key=skew_key(8), owner=1))
        system.run(400.0)
        assert system.shard_of_key(left) == 1
        client = system.clients[0]
        assert client.epoch == 0
        record = system.invoke(multi_get([left, right]))
        assert record.result.value == {"values": {left: "L", right: "R"}}
        assert client.epoch == 1
        assert system.message_queues[0].cross_shard_markers == 0


# ---------------------------------------------------------------------- #
# Byzantine collator and collator fallover.
# ---------------------------------------------------------------------- #


def _patch_collator_sends(system, shard, rewrite):
    """Intercept ``shard``'s outgoing assembled replies with ``rewrite``
    (return None to drop the message)."""
    for node in system.execution_cluster(shard):
        original = node.send

        def patched(destination, message, _original=original):
            if isinstance(message, CrossShardReply):
                message = rewrite(message)
                if message is None:
                    return
            _original(destination, message)

        node.send = patched


class TestCollatorFaults:
    def test_equivocating_collator_is_detected_via_sub_certificates(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, "truth"))
        system.invoke(put(right, "truth"))

        tampering = {"on": True}

        def tamper(message):
            if not tampering["on"]:
                return message
            forged = dict(message.assembled)
            forged[left] = "forged"
            return CrossShardReply(
                client=message.client, timestamp=message.timestamp,
                status=message.status, epoch=message.epoch,
                collator_shard=message.collator_shard,
                sub_certificates=message.sub_certificates,
                assembled=forged, sender=message.sender)

        _patch_collator_sends(system, 0, tamper)
        client = system.clients[0]
        done = len(client.completed)
        client.submit(multi_get([left, right]))
        system.run(60.0)
        # Before the first retransmission, only tampered replies arrived:
        # every one was rejected on sub-certificate evidence.
        assert client.collator_equivocations > 0
        assert len(client.completed) == done
        # The equivocating collator cannot block the operation either: the
        # client's retransmission makes the honest non-collator cluster
        # re-serve the genuine assembled reply (tampering stays on).
        system.run_until(lambda: len(client.completed) == done + 1, 10_000.0,
                         description="recovery from equivocating collator")
        assert tampering["on"]
        assert client.completed[-1].result.value == {
            "values": {left: "truth", right: "truth"}}
        assert client.collator_equivocations > 0

    def test_crashed_collator_falls_over_to_next_lowest_shard(self):
        system = make_system(num_shards=3)
        mid, high = key_on(system, 1), key_on(system, 2)
        system.invoke(put(mid, "M"))
        system.invoke(put(high, "H"))
        # The marker touches shards {1, 2}: shard 1 is the collator.  Its
        # replicas assemble but never deliver (a collator crashing after
        # the sub-reply broadcast); the client's retransmission makes the
        # duplicate marker re-serve the assembled reply from shard 2.
        _patch_collator_sends(system, 1, lambda message: None)
        client = system.clients[0]
        done = len(client.completed)
        client.submit(multi_get([mid, high]))
        system.run_until(lambda: len(client.completed) == done + 1, 20_000.0,
                         description="collator fallover")
        assert client.completed[-1].result.value == {
            "values": {mid: "M", high: "H"}}
        assert client.retransmissions > 0
        fallover_senders = sum(node.cross_shard_replies_sent
                               for node in system.execution_cluster(2))
        assert fallover_senders > 0


class TestByzantineFragments:
    def test_forged_high_timestamp_fragment_cannot_wedge_collation(self):
        from repro.config import AuthenticationScheme
        from repro.crypto.certificate import Certificate
        from repro.sharding import CrossShardSubReply, SubReplyBody

        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, "L"))
        system.invoke(put(right, "R"))
        # A Byzantine replica floods every node with a validly-MACed
        # fragment carrying an absurd timestamp; collation state is keyed
        # per (client, timestamp), so the forgery occupies one bounded
        # tentative slot and genuine operations assemble untouched.
        byz = system.execution_node(1, 0)
        everyone = [node for ids in system.shard_execution_ids for node in ids]
        body = SubReplyBody(client=system.clients[0].node_id,
                            timestamp=10 ** 9, shard=1, epoch=0, view=0,
                            op_seq=999, status="ok", values={})
        certificate = Certificate(payload=body,
                                  scheme=AuthenticationScheme.MAC)
        certificate.add(byz.crypto.mac_authenticator(body, everyone))
        forged = CrossShardSubReply(body=body, certificate=certificate,
                                    sender=byz.node_id)
        byz.multicast([node for node in everyone if node != byz.node_id],
                      forged)
        system.run(50.0)
        record = system.invoke(multi_get([left, right]))
        assert record.result.value == {"values": {left: "L", right: "R"}}


# ---------------------------------------------------------------------- #
# Exactly-once across client retransmissions.
# ---------------------------------------------------------------------- #


class TestExactlyOnce:
    def test_duplicate_markers_never_reexecute(self):
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, 0))
        # A committed increment-style transaction; then force duplicate
        # markers by replaying the client's own retransmission path.
        record = system.invoke(transaction(reads={left: 0},
                                           writes={left: 1, right: 1}))
        assert record.result.value["committed"] is True
        executed_before = {node.node_id: node.cross_shard_executed
                           for cluster in system.shard_execution_nodes
                           for node in cluster}
        system.run(500.0)
        executed_after = {node.node_id: node.cross_shard_executed
                          for cluster in system.shard_execution_nodes
                          for node in cluster}
        assert executed_before == executed_after
        assert cluster_value(system, 0, left) == 1


class TestMarkerAcrossViewChange:
    def test_in_flight_marker_survives_a_view_change(self):
        """A multi-shard snapshot read submitted just before the primary
        dies completes across the view change with an untorn snapshot,
        executing exactly once per touched cluster (the NEW-VIEW
        re-proposal or the client's retransmission re-orders the marker;
        dedup keeps it single-shot)."""
        system = make_system()
        left, right = key_on(system, 0), key_on(system, 1)
        system.invoke(put(left, "L"))
        system.invoke(put(right, "R"))
        client = system.clients[0]
        done = len(client.completed)
        client.submit(multi_get([left, right]))
        system.run(0.2)            # the marker's ordering is in flight
        system.crash_agreement(0)  # depose the primary mid-agreement
        system.run_until(lambda: len(client.completed) > done, 30_000.0,
                         description="marker completes across the view change")
        record = client.completed[-1]
        assert record.result.value == {"values": {left: "L", right: "R"}}
        live = [replica for replica in system.agreement_replicas
                if not replica.crashed]
        assert max(replica.view for replica in live) >= 1
        system.run(500.0)  # drain retransmitted duplicates
        for shard in (0, 1):
            executed = {node.cross_shard_executed
                        for node in system.execution_cluster(shard)}
            assert executed == {1}


# ---------------------------------------------------------------------- #
# The mixed workload and its snapshot audit.
# ---------------------------------------------------------------------- #


class TestWorkloadAudit:
    def test_mixed_run_is_snapshot_consistent(self):
        system = make_system(num_shards=4, num_clients=8)
        for operation in seed_operations(KEY_SPACE, 4):
            system.invoke(operation)
        operations = mixed_cross_shard_operations(
            400, key_space=KEY_SPACE, num_shards=4, multi_fraction=0.2,
            seed=5)
        result = run_crossshard_window(system, operations=operations,
                                       duration_ms=800.0, warmup_ms=100.0)
        system.run(5_000.0)
        audit = audit_snapshot_consistency(system.clients)
        assert result.completed > 0
        assert result.multi_completed > 0
        assert audit.audited_reads > 0
        assert audit.committed_txns > 0
        assert audit.consistent

    def test_workload_is_deterministic(self):
        ops_a = mixed_cross_shard_operations(100, num_shards=4, seed=9)
        ops_b = mixed_cross_shard_operations(100, num_shards=4, seed=9)
        assert [op.to_wire() for op in ops_a] == [op.to_wire() for op in ops_b]
