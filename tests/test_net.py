"""Tests for the simulated network: topology restriction and fault models."""

import pytest

from repro.config import NetworkConfig
from repro.errors import NetworkError, TopologyError
from repro.net.faults import NetworkFaultModel, PerfectNetworkFaults
from repro.net.message import CorruptedMessage, Message
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.process import Process
from repro.sim.rand import DeterministicRandom
from repro.sim.scheduler import Scheduler
from repro.util.ids import agreement_id, client_id, execution_id, firewall_id


class _Probe(Message):
    def __init__(self, size=16):
        self.size = size

    def payload_fields(self):
        return {"probe": True}

    def wire_size(self):
        return self.size


class _Sink(Process):
    def __init__(self, node_id, scheduler):
        super().__init__(node_id, scheduler)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


class TestTopology:
    def test_full_topology_allows_everything(self):
        topo = Topology.full()
        assert topo.allows(client_id(0), execution_id(2))

    def test_restricted_topology_blocks_unlisted_links(self):
        topo = Topology(fully_connected=False)
        topo.add_link(client_id(0), agreement_id(0))
        assert topo.allows(client_id(0), agreement_id(0))
        assert not topo.allows(client_id(0), execution_id(0))
        with pytest.raises(TopologyError):
            topo.check(client_id(0), execution_id(0))

    def test_self_links_always_allowed(self):
        topo = Topology(fully_connected=False)
        assert topo.allows(client_id(0), client_id(0))

    def test_privacy_firewall_topology_restrictions(self):
        clients = [client_id(0)]
        agreement = [agreement_id(i) for i in range(4)]
        execution = [execution_id(i) for i in range(3)]
        rows = [[firewall_id(0, 0), firewall_id(0, 1)],
                [firewall_id(1, 0), firewall_id(1, 1)]]
        topo = Topology.privacy_firewall(clients, agreement, rows, execution)

        # Clients may talk to agreement nodes only.
        assert topo.allows(clients[0], agreement[0])
        assert not topo.allows(clients[0], execution[0])
        assert not topo.allows(clients[0], rows[0][0])
        # Agreement nodes reach the bottom row but not execution directly.
        assert topo.allows(agreement[0], rows[0][0])
        assert not topo.allows(agreement[0], execution[0])
        # Adjacent filter rows are connected; rows do not skip levels.
        assert topo.allows(rows[0][0], rows[1][1])
        # Top row reaches execution nodes.
        assert topo.allows(rows[1][0], execution[1])
        assert not topo.allows(rows[0][0], execution[0])
        # Execution nodes talk among themselves (state transfer).
        assert topo.allows(execution[0], execution[2])

    def test_separate_clusters_topology(self):
        clients = [client_id(0)]
        agreement = [agreement_id(i) for i in range(4)]
        execution = [execution_id(i) for i in range(3)]
        topo = Topology.separate_clusters(clients, agreement, execution,
                                          allow_client_execution=False)
        assert topo.allows(clients[0], agreement[0])
        assert topo.allows(agreement[0], execution[0])
        assert not topo.allows(clients[0], execution[0])

    def test_neighbours(self):
        topo = Topology(fully_connected=False)
        topo.add_link(client_id(0), agreement_id(0))
        topo.add_link(client_id(0), agreement_id(1))
        assert topo.neighbours(client_id(0)) == [agreement_id(0), agreement_id(1)]


class TestFaultModels:
    def test_perfect_network_delivers_exactly_once(self):
        model = PerfectNetworkFaults(delay_ms=0.5)
        plan = model.plan(client_id(0), agreement_id(0), _Probe())
        assert not plan.dropped
        assert len(plan.deliveries) == 1

    def test_drop_probability_one_drops_everything(self):
        config = NetworkConfig(drop_probability=1.0)
        model = NetworkFaultModel(config, DeterministicRandom(1))
        plan = model.plan(client_id(0), agreement_id(0), _Probe())
        assert plan.dropped
        assert plan.deliveries == []

    def test_duplicate_probability_one_duplicates(self):
        config = NetworkConfig(duplicate_probability=1.0)
        model = NetworkFaultModel(config, DeterministicRandom(1))
        plan = model.plan(client_id(0), agreement_id(0), _Probe())
        assert len(plan.deliveries) == 2

    def test_corruption_replaces_payload(self):
        config = NetworkConfig(corrupt_probability=1.0)
        model = NetworkFaultModel(config, DeterministicRandom(1))
        plan = model.plan(client_id(0), agreement_id(0), _Probe())
        assert all(isinstance(msg, CorruptedMessage) for _, msg in plan.deliveries)

    def test_partition_blocks_link(self):
        model = PerfectNetworkFaults()
        model.partition(client_id(0), agreement_id(0))
        plan = model.plan(client_id(0), agreement_id(0), _Probe())
        assert plan.dropped
        model.heal(client_id(0), agreement_id(0))
        assert not model.plan(client_id(0), agreement_id(0), _Probe()).dropped

    def test_larger_messages_take_longer(self):
        model = PerfectNetworkFaults(delay_ms=0.1)
        small = model.plan(client_id(0), agreement_id(0), _Probe(size=100))
        large = model.plan(client_id(0), agreement_id(0), _Probe(size=100_000))
        assert large.deliveries[0][0] > small.deliveries[0][0]

    def test_delay_within_bounds(self):
        config = NetworkConfig(min_delay_ms=1.0, max_delay_ms=2.0)
        model = NetworkFaultModel(config, DeterministicRandom(2))
        for _ in range(50):
            delay = model.base_delay(0)
            assert 1.0 <= delay <= 2.0


class TestNetwork:
    def _build(self, topology=None):
        scheduler = Scheduler(seed=3)
        network = Network(scheduler, topology=topology)
        a = _Sink(client_id(0), scheduler)
        b = _Sink(agreement_id(0), scheduler)
        network.register(a)
        network.register(b)
        return scheduler, network, a, b

    def test_delivery(self):
        scheduler, network, a, b = self._build()
        network.send(a.node_id, b.node_id, _Probe())
        scheduler.run()
        assert len(b.received) == 1

    def test_double_registration_rejected(self):
        scheduler, network, a, b = self._build()
        with pytest.raises(NetworkError):
            network.register(_Sink(client_id(0), scheduler))

    def test_unknown_destination_is_ignored(self):
        scheduler, network, a, b = self._build()
        network.send(a.node_id, execution_id(7), _Probe())
        scheduler.run()  # no exception

    def test_topology_enforced_on_send(self):
        topo = Topology(fully_connected=False)
        topo.add_link(client_id(0), agreement_id(0))
        scheduler, network, a, b = self._build(topology=topo)
        c = _Sink(execution_id(0), scheduler)
        network.register(c)
        with pytest.raises(TopologyError):
            network.send(a.node_id, c.node_id, _Probe())

    def test_tap_can_replace_messages(self):
        scheduler, network, a, b = self._build()

        def tap(source, destination, message):
            return _Probe(size=1)

        network.add_tap(tap)
        network.send(a.node_id, b.node_id, _Probe(size=500))
        scheduler.run()
        assert b.received[0][1].wire_size() == 1

    def test_stats_count_sends_and_types(self):
        scheduler, network, a, b = self._build()
        network.send(a.node_id, b.node_id, _Probe())
        network.send(a.node_id, b.node_id, _Probe())
        scheduler.run()
        assert network.stats.sends == 2
        assert network.stats.per_type["_Probe"] == 2

    def test_broadcast_skips_self(self):
        scheduler, network, a, b = self._build()
        network.broadcast(a.node_id, [a.node_id, b.node_id], _Probe())
        scheduler.run()
        assert len(a.received) == 0
        assert len(b.received) == 1
