"""The runtime seam: backend parity, the crypto pool, real-time scheduler.

The headline contract is *parity*: the same workload pushed through the
virtual-time simulator and the asyncio real-socket backend must commit the
same application state and return the same results (timing aside) -- the
protocol stack is byte-for-byte the same code, only the substrate changes.
The crypto pool additionally must be invisible to the protocol: enabled, it
warms verification caches from worker processes; disabled, the same jobs
verify inline with identical outcomes.
"""

from __future__ import annotations

import asyncio

import pytest

from conftest import make_config
from repro.apps.kvstore import KeyValueStore, delete, get, put
from repro.config import (
    AuthenticationScheme,
    CryptoCosts,
    CryptoPoolConfig,
    RuntimeConfig,
    SystemConfig,
)
from repro.core.system import SeparatedSystem
from repro.crypto.pool import CryptoPool, extract_verify_jobs, verify_jobs
from repro.crypto.provider import CryptoProvider
from repro.errors import ConfigurationError, LivenessTimeoutError, SimulationError
from repro.runtime import SimRuntime, build_runtime
from repro.runtime.asyncio_rt import AsyncioRuntime, RealTimeScheduler
from repro.util.ids import agreement_id, execution_id


def _runtime_config(backend: str, pool: bool = False,
                    charge_scale: float = 0.0) -> RuntimeConfig:
    return RuntimeConfig(
        backend=backend, charge_scale=charge_scale,
        crypto_pool=CryptoPoolConfig(enabled=pool, workers=2))


def _workload(system: SeparatedSystem, requests: int = 8):
    """A small mixed put/get/delete workload; returns the result values."""
    values = []
    for i in range(requests):
        result = system.invoke(put(f"key-{i % 3}", f"value-{i}"),
                               client_index=i % 2, timeout_ms=30_000)
        values.append(result.result.value)
    values.append(system.invoke(delete("key-1"), timeout_ms=30_000).result.value)
    for i in range(3):
        result = system.invoke(get(f"key-{i}"), client_index=i % 2,
                               timeout_ms=30_000)
        values.append(result.result.value)
    return values


def _run_backend(runtime: RuntimeConfig):
    config = make_config(runtime=runtime)
    system = SeparatedSystem(config, KeyValueStore, seed=11)
    try:
        values = _workload(system)
        states = [node.app.snapshot() for node in system.execution_nodes]
    finally:
        system.close()
    return values, states


class TestBackendParity:
    def test_factory_selects_backend(self, config):
        runtime = build_runtime(config, seed=1)
        assert isinstance(runtime, SimRuntime)
        real = build_runtime(
            make_config(runtime=_runtime_config("asyncio")), seed=1)
        try:
            assert isinstance(real, AsyncioRuntime)
        finally:
            real.close()

    def test_same_committed_state_across_backends(self):
        sim_values, sim_states = _run_backend(_runtime_config("sim"))
        real_values, real_states = _run_backend(_runtime_config("asyncio"))
        assert real_values == sim_values
        # Every execution replica converged to the same store, and the
        # stores agree across backends.
        assert all(state == sim_states[0] for state in sim_states)
        assert real_states == sim_states

    def test_pool_enabled_backend_matches_simulator(self):
        sim_values, sim_states = _run_backend(_runtime_config("sim"))
        pool_values, pool_states = _run_backend(
            _runtime_config("asyncio", pool=True, charge_scale=0.01))
        assert pool_values == sim_values
        assert pool_states == sim_states

    def test_asyncio_backend_uses_real_sockets(self):
        config = make_config(runtime=_runtime_config("asyncio"))
        system = SeparatedSystem(config, KeyValueStore, seed=3)
        try:
            system.invoke(put("k", "v"), timeout_ms=30_000)
            transport = system.network.transport
            assert transport.frames_sent > 0
            assert transport.frames_delivered > 0
            assert transport.bytes_on_wire > 0
        finally:
            system.close()


class TestCryptoPool:
    def _mac_jobs(self, keystore, costs):
        signer = agreement_id(0)
        verifier = execution_id(0)
        provider = CryptoProvider(signer, keystore, costs=costs)
        certificate = provider.new_certificate(
            {"op": "bind", "seq": 4}, AuthenticationScheme.MAC,
            destinations=[verifier, execution_id(1)])
        return extract_verify_jobs(verifier, keystore, costs, certificate)

    def test_inline_fallback_matches_pool(self, keystore):
        costs = CryptoCosts()
        jobs, keys = self._mac_jobs(keystore, costs)
        assert len(jobs) == len(keys) == 1
        assert keys[0][0] == "mac"
        inline = verify_jobs(jobs)
        disabled = CryptoPool(CryptoPoolConfig(enabled=False))
        assert disabled.run_inline(jobs) == inline == [True]
        assert disabled.stats.inline_batches == 1
        pooled = CryptoPool(CryptoPoolConfig(enabled=True, workers=2))
        loop = asyncio.new_event_loop()
        try:
            assert loop.run_until_complete(pooled.run(loop, jobs)) == inline
            assert pooled.stats.batches == 1
        finally:
            pooled.close()
            loop.close()

    def test_forged_token_is_rejected(self, keystore):
        costs = CryptoCosts()
        jobs, _ = self._mac_jobs(keystore, costs)
        secret, data, token, burn = jobs[0]
        forged = (secret, data, bytes(len(token)), burn)
        assert verify_jobs([jobs[0], forged]) == [True, False]

    def test_threshold_jobs_extracted(self, keystore):
        costs = CryptoCosts()
        members = [execution_id(i) for i in range(3)]
        keystore.create_threshold_group("grp", members, threshold=2)
        providers = [CryptoProvider(m, keystore, costs=costs) for m in members]
        certificate = providers[0].new_certificate(
            {"reply": 1}, AuthenticationScheme.THRESHOLD,
            destinations=members, threshold_group="grp")
        providers[1].authenticate(certificate, members)
        certificate.threshold_signature = providers[1].threshold_combine(
            certificate.payload, "grp", certificate.authenticator_list())
        jobs, keys = extract_verify_jobs(agreement_id(0), keystore, costs,
                                         certificate)
        kinds = sorted(key[0] for key in keys)
        assert kinds == ["share", "share", "tsig"]
        assert verify_jobs(jobs) == [True, True, True]

    def test_pool_requires_asyncio_backend(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(runtime=RuntimeConfig(
                backend="sim", crypto_pool=CryptoPoolConfig(enabled=True)))
        with pytest.raises(ConfigurationError):
            RuntimeConfig(backend="threads").validate()


class TestRealTimeScheduler:
    def test_timers_fire_in_order_and_cancel(self):
        scheduler = RealTimeScheduler(seed=0, poll_interval_ms=0.5)
        fired = []
        scheduler.call_after(10.0, lambda: fired.append("late"))
        scheduler.call_after(1.0, lambda: fired.append("early"))
        cancelled = scheduler.call_after(2.0, lambda: fired.append("cancelled"))
        assert cancelled.active
        cancelled.cancel()
        assert not cancelled.active
        try:
            scheduler.run_until(lambda: len(fired) == 2, timeout=5_000.0,
                                description="both timers")
        finally:
            scheduler.close()
        assert fired == ["early", "late"]
        assert scheduler.events_processed >= 2

    def test_run_until_timeout_raises(self):
        scheduler = RealTimeScheduler(seed=0, poll_interval_ms=0.5)
        try:
            with pytest.raises(LivenessTimeoutError):
                scheduler.run_until(lambda: False, timeout=20.0,
                                    description="never")
        finally:
            scheduler.close()

    def test_run_requires_horizon_and_rejects_negative_delay(self):
        scheduler = RealTimeScheduler(seed=0)
        try:
            with pytest.raises(SimulationError):
                scheduler.run()
            with pytest.raises(SimulationError):
                scheduler.call_after(-1.0, lambda: None)
            before = scheduler.now
            scheduler.run(until=before + 5.0)
            assert scheduler.now >= before + 5.0
        finally:
            scheduler.close()
