"""Dynamic shard rebalancing tests.

The safety-critical properties of an epoch cut:

* the partition map evolves only through agreed config operations, with
  every correct node applying (or deterministically rejecting) a change at
  the same position in the global order;
* state handoff moves a key range's data -- and the client-dedup reply
  table -- so every client request executes exactly once across split and
  merge cuts, with no per-shard sequence gaps or duplicates;
* a Byzantine agreement node advertising a stale or forged epoch cannot
  make an execution replica accept the binding (the ``f + 1``-vouched route
  binding now carries the epoch);
* clients with a stale map learn a newer epoch only from authenticated,
  registry-consistent replies and then complete normally;
* a replica that misses a handoff (partitioned or crashed mid-cut) recovers
  by itself: blocked gainers re-fetch the range, and a replica that missed
  the whole cut catches up through checkpoint state transfer, which now
  carries the epoch.

The per-shard batch-timeout and controller-demotion satellites of the same
PR are covered at the bottom.
"""

import pytest

from conftest import make_config
from repro.agreement.batching import AdaptiveBundleController, Batcher
from repro.apps.kvstore import KeyValueStore, get, put
from repro.config import (
    BatchingConfig,
    PipelineConfig,
    RebalanceConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError
from repro.messages.agreement import OrderedBatch
from repro.sharding import (
    MapChange,
    PartitionMap,
    PartitionMapRegistry,
    ShardedBatch,
    ShardedSystem,
    apply_map_change,
)
from repro.workloads import (
    equal_range_boundaries,
    migrating_hot_range_operations,
)
from repro.workloads.skew import skew_key

KEY_SPACE = 64

#: rebalancing wiring (cross-shard links, controllers) without automatic
#: proposals -- tests drive the cuts by hand for determinism
MANUAL = RebalanceConfig(enabled=True, min_window_requests=10**9)


def make_system(num_shards=2, rebalance=MANUAL, num_clients=4, seed=21,
                **overrides):
    config = make_config(
        num_clients=num_clients,
        sharding=ShardingConfig(
            num_shards=num_shards, strategy="range",
            range_boundaries=equal_range_boundaries(KEY_SPACE, num_shards)),
        pipeline=PipelineConfig(per_shard_depth=16, ooo_shard_delivery=True,
                                rtt_gather=True),
        rebalance=rebalance,
        **overrides)
    return ShardedSystem(config, KeyValueStore, seed=seed)


def propose(system, change):
    primary = system.agreement_replicas[0]
    assert primary.propose_map_change(change)
    system.run(300.0)


def cluster_digests(system, shard):
    return {node.app.state_digest()
            for node in system.execution_cluster(shard) if not node.crashed}


# ---------------------------------------------------------------------- #
# Partition maps and registry.
# ---------------------------------------------------------------------- #


class TestPartitionMap:
    def base(self):
        return PartitionMap(epoch=0, boundaries=("m",), owners=(0, 1),
                            num_clusters=2)

    def test_split_moves_upper_half_to_new_owner(self):
        split = self.base().split("f", new_owner=1)
        assert split.epoch == 1
        assert split.boundaries == ("f", "m")
        assert split.owners == (0, 1, 1)
        assert split.owner_of_key("a") == 0
        assert split.owner_of_key("g") == 1

    def test_merge_keeps_left_owner(self):
        merged = self.base().split("f", 1).merge("f")
        assert merged.epoch == 2
        assert merged.boundaries == ("m",)
        assert merged.owners == (0, 1)

    def test_move_boundary_keeps_owners(self):
        moved = self.base().move_boundary("m", "p")
        assert moved.boundaries == ("p",)
        assert moved.owners == (0, 1)
        with pytest.raises(ConfigurationError):
            self.base().split("f", 1).move_boundary("m", "e")  # crosses "f"

    def test_moved_ranges_exact_intervals(self):
        base = self.base()
        split = base.split("f", 1)
        moved = base.moved_ranges(split)
        assert [(m.lo, m.hi, m.old_owner, m.new_owner) for m in moved] == \
            [("f", "m", 0, 1)]
        back = split.merge("f")
        moved_back = split.moved_ranges(back)
        assert [(m.lo, m.hi, m.old_owner, m.new_owner) for m in moved_back] == \
            [("f", "m", 1, 0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionMap(epoch=0, boundaries=("b", "a"), owners=(0, 1, 1),
                         num_clusters=2)
        with pytest.raises(ConfigurationError):
            PartitionMap(epoch=0, boundaries=("a",), owners=(0, 5),
                         num_clusters=2)
        with pytest.raises(ConfigurationError):
            self.base().split("m", 1)  # boundary already exists

    def test_registry_append_is_idempotent_and_ordered(self):
        registry = PartitionMapRegistry(self.base())
        new_map = registry.latest.split("f", 1)
        registry.append(new_map)
        registry.append(new_map)  # idempotent: another role already derived it
        assert registry.latest_epoch == 1
        with pytest.raises(ConfigurationError):
            registry.append(new_map.split("a", 0).split("b", 0))  # skips epoch 2

    def test_apply_map_change_rejects_stale_parent_epoch(self):
        base = self.base()
        change = MapChange(kind="split", parent_epoch=1, key="f", owner=1)
        assert apply_map_change(base, change) is None
        current = MapChange(kind="split", parent_epoch=0, key="f", owner=1)
        assert apply_map_change(base, current).epoch == 1
        nonsense = MapChange(kind="merge", parent_epoch=0, key="zzz")
        assert apply_map_change(base, nonsense) is None


class TestRebalanceConfig:
    def test_requires_range_strategy(self):
        with pytest.raises(ConfigurationError):
            make_config(sharding=ShardingConfig(num_shards=2, strategy="hash"),
                        rebalance=RebalanceConfig(enabled=True))

    def test_field_validation(self):
        for bad in (dict(hot_ratio=0.5), dict(cold_ratio=0.0),
                    dict(min_window_requests=0), dict(max_ranges=1),
                    dict(check_interval_ms=0.0)):
            with pytest.raises(ConfigurationError):
                RebalanceConfig(**bad).validate()

    def test_batching_satellite_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(timeout_scale_max=0.5).validate()
        with pytest.raises(ConfigurationError):
            BatchingConfig(demote_idle_ms=0.0).validate()


# ---------------------------------------------------------------------- #
# Epoch cuts end to end: split, merge, and live state handoff.
# ---------------------------------------------------------------------- #


class TestEpochCut:
    def seeded_system(self):
        system = make_system()
        for index in range(0, KEY_SPACE, 8):
            system.invoke(put(skew_key(index), f"v{index}"),
                          client_index=index % 4)
        return system

    def test_split_hands_off_state_and_epoch_everywhere(self):
        system = self.seeded_system()
        # Move [key-00008, key-00032) from shard 0 to shard 1.
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        assert system.partition_epoch() == 1
        for queue in system.message_queues:
            assert queue.epoch == 1
        for shard in range(system.num_shards):
            for node in system.execution_cluster(shard):
                assert node.epoch == 1
        # The moved keys live on shard 1 now -- and only there.
        gainer = system.execution_node(1, 0)
        loser = system.execution_node(0, 0)
        for index in (8, 16, 24):
            assert skew_key(index) in gainer.app.snapshot()
            assert skew_key(index) not in loser.app.snapshot()
        assert gainer.ranges_installed == 1
        assert loser.ranges_sent == 1
        # Reads and writes of moved keys complete against the new owner.
        record = system.invoke(get(skew_key(16)))
        assert record.result.value["value"] == "v16"
        system.invoke(put(skew_key(16), "post-cut"))
        assert system.invoke(get(skew_key(16))).result.value["value"] == "post-cut"

    def test_merge_returns_range_to_left_owner(self):
        system = self.seeded_system()
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        propose(system, MapChange(kind="merge", parent_epoch=1,
                                  key=skew_key(8)))
        assert system.partition_epoch() == 2
        # The merged range [key-00008, key-00032) is back on shard 0.
        assert system.shard_of_key(skew_key(16)) == 0
        loser = system.execution_node(1, 0)
        gainer = system.execution_node(0, 0)
        for index in (8, 16, 24):
            assert skew_key(index) in gainer.app.snapshot()
            assert skew_key(index) not in loser.app.snapshot()
        assert system.invoke(get(skew_key(24))).result.value["value"] == "v24"

    def test_stale_parent_epoch_is_a_deterministic_noop(self):
        system = self.seeded_system()
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        rejected_before = [queue.map_changes_rejected
                          for queue in system.message_queues]
        # A change built against epoch 0 arriving after the cut no-ops on
        # every replica; the epoch and map stay put.
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(40), owner=0))
        assert system.partition_epoch() == 1
        for queue, before in zip(system.message_queues, rejected_before):
            assert queue.map_changes_rejected == before + 1
        for shard in range(system.num_shards):
            for node in system.execution_cluster(shard):
                assert node.epoch == 1
        # The service keeps answering.
        assert system.invoke(get(skew_key(8))).result.value["value"] == "v8"

    def test_reply_table_moves_with_the_range(self):
        """Exactly-once across the cut: the gaining cluster inherits the
        losing cluster's client-dedup table, so a pre-cut request cannot be
        re-executed post-cut."""
        system = self.seeded_system()
        gainer_nodes = system.execution_cluster(1)
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        client_id = system.clients[0].node_id
        for node in gainer_nodes:
            # Client 0 wrote key-00008/16/24 pre-cut on shard 0; shard 1's
            # replicas now know its latest executed timestamp.
            assert client_id in node.reply_table


class TestByzantineEpoch:
    def prepared_system(self):
        system = make_system()
        system.invoke(put(skew_key(8), "v"))   # shard 0 at epoch 0
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        system.invoke(put(skew_key(8), "post-cut"))  # shard 1 at epoch 1
        return system

    def _forged(self, system, victim, epoch):
        local = victim.recent_batches[victim.max_executed]
        batch = OrderedBatch(seq=local.global_seq, view=local.view,
                             request_certificates=local.full_request_certificates,
                             agreement_certificate=local.agreement_certificate,
                             nondet=local.nondet)
        return ShardedBatch(shard=victim.shard, shard_seq=victim.max_executed + 1,
                            epoch=epoch, batch=batch)

    def test_single_byzantine_sender_cannot_bind_any_epoch(self):
        system = self.prepared_system()
        victim = system.execution_node(1, 0)
        executed = victim.requests_executed
        forged = self._forged(system, victim, epoch=1)
        for _ in range(3):
            victim.handle_sharded_batch(system.agreement_ids[0], forged)
        assert victim.requests_executed == executed
        assert forged.shard_seq not in victim._route_accepted
        assert forged.shard_seq not in victim.pending

    def test_stale_epoch_rejected_even_with_many_vouchers(self):
        """Relabelling a genuine post-cut batch with the pre-cut epoch makes
        the victim re-derive ownership under the old map -- under which it
        owns nothing -- so the envelope dies as a misroute no matter how
        many agreement nodes appear to vouch for it."""
        system = self.prepared_system()
        victim = system.execution_node(1, 0)
        executed = victim.requests_executed
        misroutes = victim.misroutes
        stale = self._forged(system, victim, epoch=0)
        for agreement_id in system.agreement_ids:
            victim.handle_sharded_batch(agreement_id, stale)
        assert victim.misroutes > misroutes
        assert victim.requests_executed == executed
        assert stale.shard_seq not in victim.pending

    def test_forged_future_epoch_rejected(self):
        system = self.prepared_system()
        victim = system.execution_node(1, 0)
        executed = victim.requests_executed
        misroutes = victim.misroutes
        future = self._forged(system, victim, epoch=99)
        for agreement_id in system.agreement_ids:
            victim.handle_sharded_batch(agreement_id, future)
        assert victim.misroutes > misroutes
        assert victim.requests_executed == executed
        assert future.shard_seq not in victim.pending


class TestClientAcrossCut:
    def test_stale_client_completes_and_learns_the_epoch(self):
        """A client whose map predates a split retries against the old
        owner's quorum expectation; the authenticated reply from the new
        owner carries the newer epoch, the client verifies it against the
        agreed map history, re-scopes its quorum, and completes."""
        system = make_system()
        system.invoke(put(skew_key(16), "before"), client_index=0)
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        stale_client = system.clients[1]
        assert stale_client.epoch == 0
        record = system.invoke(get(skew_key(16)), client_index=1)
        assert record.result.value["value"] == "before"
        assert stale_client.epoch == 1
        assert stale_client.epoch_advances == 1
        assert stale_client.misrouted_replies == 0

    def test_client_rejects_epoch_claims_outside_the_agreed_history(self):
        system = make_system()
        system.invoke(put(skew_key(16), "v"), client_index=0)
        client = system.clients[0]
        assert client.epoch == 0
        # No epoch 7 was ever agreed: a reply claiming it must not steer
        # the client's quorum counting.
        from repro.messages.reply import BatchReplyBody, ClientReply
        reply = system.execution_node(0, 0).replies_by_seq[
            system.execution_node(0, 0).max_executed]
        client._pending = None  # nothing outstanding; just probe the guard
        body = BatchReplyBody(view=reply.body.view, seq=reply.body.seq,
                              replies=reply.body.replies, shard=1, epoch=7)
        client._maybe_advance_epoch(
            ClientReply(reply=reply.body.replies[0], body=body,
                        certificate=reply.certificate))
        assert client.epoch == 0


# ---------------------------------------------------------------------- #
# Crash / partition during the handoff.
# ---------------------------------------------------------------------- #


class TestHandoffFaults:
    def test_crashed_source_replica_within_g_does_not_block_the_cut(self):
        system = make_system()
        for index in range(0, 32, 4):
            system.invoke(put(skew_key(index), f"v{index}"),
                          client_index=index % 4)
        system.crash_execution(0, 0)  # one of the losing cluster's 2g+1
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        # g+1 matching shares from the surviving source replicas suffice.
        for node in system.execution_cluster(1):
            assert node.ranges_installed == 1
            assert node.epoch == 1
        assert system.invoke(get(skew_key(12))).result.value["value"] == "v12"

    def test_partitioned_gainer_recovers_via_range_fetch(self):
        """A gainer replica cut off from the source cluster during the
        handoff blocks at the cut, then re-fetches the range on its timer
        once the partition heals -- no operator, no lost slot."""
        system = make_system()
        for index in range(0, 32, 4):
            system.invoke(put(skew_key(index), f"v{index}"),
                          client_index=index % 4)
        blocked = system.execution_node(1, 0)
        for source in system.execution_cluster(0):
            system.network.faults.partition(blocked.node_id, source.node_id)
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        # Peers installed; the partitioned replica is blocked awaiting.
        assert blocked._awaiting_ranges
        assert blocked.epoch == 1
        for node in system.execution_cluster(1)[1:]:
            assert node.ranges_installed == 1
        system.network.faults.heal_all()
        system.run(300.0)
        assert not blocked._awaiting_ranges
        assert blocked.ranges_installed == 1
        assert blocked.range_fetches > 0
        assert cluster_digests(system, 1) == {blocked.app.state_digest()}

    def test_crashed_gainer_recovers_via_state_transfer_with_epoch(self):
        """A replica that missed the whole cut catches up through the
        ordinary checkpoint state transfer, which now carries the epoch:
        it rejoins in the right map, with the moved range installed."""
        system = make_system()
        for index in range(0, 32, 4):
            system.invoke(put(skew_key(index), f"v{index}"),
                          client_index=index % 4)
        crashed = system.execution_node(1, 0)
        crashed.crash()
        propose(system, MapChange(kind="split", parent_epoch=0,
                                  key=skew_key(8), owner=1))
        # Drive shard 1 past a checkpoint so recovery has a stable
        # checkpoint (with epoch) to transfer.
        interval = system.config.checkpoint_interval
        for round_index in range(interval + 2):
            system.invoke(put(skew_key(8 + (round_index % 6)), f"r{round_index}"),
                          client_index=round_index % 4)
        crashed.recover()
        system.invoke(put(skew_key(10), "after-recovery"))
        system.run(400.0)
        assert crashed.epoch == 1
        assert crashed.state_transfers >= 1
        assert cluster_digests(system, 1) == {crashed.app.state_digest()}


class TestCutAcrossViewChange:
    def test_map_change_cut_survives_a_view_change(self):
        """A split ordered just before the primary dies must survive the
        view change: the NEW-VIEW re-proposal carries the config operation,
        the cut applies exactly once at every live router, and traffic on
        both sides of the new boundary completes under the successor."""
        system = make_system()
        for index in range(0, KEY_SPACE, 8):
            system.invoke(put(skew_key(index), f"v{index}"),
                          client_index=index % 4)
        primary = system.agreement_replicas[0]
        assert primary.propose_map_change(
            MapChange(kind="split", parent_epoch=0, key=skew_key(8), owner=1))
        registry = system.router.partitioner.registry
        system.run(0.5)            # proposed, but the cut is still in flight
        assert registry.latest_epoch == 0
        system.crash_agreement(0)  # depose the proposer
        # Ordinary traffic escalates to the view change; the NEW-VIEW
        # re-proposal carries the prepared config operation with it.
        record = system.invoke(get(skew_key(16)), timeout_ms=30_000.0)
        assert record.result.value["value"] == "v16"
        system.run_until(lambda: registry.latest_epoch == 1, 30_000.0,
                         description="the cut lands despite the view change")
        system.run(500.0)  # let the view change and handoff settle
        live = [replica for replica in system.agreement_replicas
                if not replica.crashed]
        assert max(replica.view for replica in live) >= 1
        for index, queue in enumerate(system.message_queues):
            if not system.agreement_replicas[index].crashed:
                assert queue.epoch == 1
                assert queue.epoch_cuts == 1  # applied exactly once
        # The moved range serves reads and writes under the new owner.
        system.invoke(put(skew_key(16), "post-cut"), timeout_ms=30_000.0)
        assert system.invoke(
            get(skew_key(16)), timeout_ms=30_000.0
        ).result.value["value"] == "post-cut"
        for shard in range(system.num_shards):
            assert len(cluster_digests(system, shard)) == 1


# ---------------------------------------------------------------------- #
# Exactly-once across automatic split + merge cuts.
# ---------------------------------------------------------------------- #


class TestExactlyOnceAcrossCuts:
    def test_every_request_executes_exactly_once(self):
        """Load-triggered cuts while a migrating hotspot is live: every
        submitted request completes, the per-cluster executed totals sum to
        exactly the completed count (nothing lost, nothing duplicated), and
        every cluster's replicas agree on frontier and state."""
        rebalance = RebalanceConfig(enabled=True, check_interval_ms=15.0,
                                    cooldown_ms=40.0, hot_ratio=1.3,
                                    cold_ratio=0.8, min_window_requests=24)
        system = make_system(num_shards=4, rebalance=rebalance,
                             num_clients=16, seed=33)
        num_requests = 1200
        operations = migrating_hot_range_operations(
            num_requests, key_space=KEY_SPACE, num_phases=3,
            hot_key_fraction=0.25, seed=9)
        for index, operation in enumerate(operations):
            system.submit(operation, client_index=index % 16)
        system.run_until(lambda: system.total_completed() == num_requests,
                         timeout_ms=120_000.0,
                         description="all requests complete across cuts")
        system.run(300.0)  # let lagging replicas settle

        registry = system.router.partitioner.registry
        splits = merges = 0
        for epoch in range(1, registry.latest_epoch + 1):
            delta = (registry.map_for(epoch).num_ranges
                     - registry.map_for(epoch - 1).num_ranges)
            splits += delta > 0
            merges += delta < 0
        assert registry.latest_epoch >= 2
        assert splits >= 1 and merges >= 1

        assert system.total_completed() == num_requests
        assert sum(system.requests_executed_by_shard()) == num_requests
        assert sum(client.misrouted_replies for client in system.clients) == 0
        for shard in range(system.num_shards):
            cluster = system.execution_cluster(shard)
            assert len({node.max_executed for node in cluster}) == 1
            assert len(cluster_digests(system, shard)) == 1


# ---------------------------------------------------------------------- #
# Batching satellites: per-shard batch timeouts and controller demotion.
# ---------------------------------------------------------------------- #


def request_cert(timestamp, client=0):
    from repro.config import AuthenticationScheme
    from repro.crypto.certificate import Certificate
    from repro.messages.request import ClientRequest
    from repro.statemachine.interface import Operation
    from repro.util.ids import client_id

    return Certificate(
        payload=ClientRequest(operation=Operation(kind="null", args={}),
                              timestamp=timestamp, client=client_id(client)),
        scheme=AuthenticationScheme.MAC)


class TestPerShardBatchTimeouts:
    def make_batcher(self, **batching):
        config = BatchingConfig(mode="adaptive", min_bundle=1, max_bundle=16,
                                **batching)
        return Batcher(
            controller=AdaptiveBundleController(config),
            classifier=lambda cert: cert.payload.timestamp % 2,
            controller_factory=lambda: AdaptiveBundleController(config),
            demote_idle_ms=config.demote_idle_ms), config

    def heat_shard(self, batcher, shard, now=0.0):
        for round_index in range(6):
            for i in range(4):
                # timestamp parity == shard, so the classifier (t % 2) puts
                # every request of this burst on the shard under test
                timestamp = 2 * (round_index * 4 + i + 1) + shard
                batcher.add(request_cert(timestamp), now=now)
            batcher.take(shard=shard, in_flight=8, now=now)
        while batcher.backlog(shard):  # drain leftovers; heat is in the
            batcher.take(shard=shard, in_flight=8, now=now)  # controller now

    def test_hot_shard_gets_a_longer_fill_window(self):
        batcher, config = self.make_batcher(timeout_scale_max=4.0)
        self.heat_shard(batcher, shard=1)
        batcher.add(request_cert(101), now=10.0)  # hot shard 1, partial
        batcher.add(request_cert(100), now=10.0)  # cold shard 0
        base = 1.0
        hot_deadline = batcher.flush_deadline(1, base)
        cold_deadline = batcher.flush_deadline(0, base)
        assert cold_deadline == pytest.approx(11.0)
        assert hot_deadline > cold_deadline
        assert hot_deadline <= 10.0 + base * config.timeout_scale_max + 1e-9
        # Only the cold shard is due at the base timeout.
        assert batcher.due_shards(11.0, base) == [0]
        assert 1 in batcher.due_shards(10.0 + 4.0, base)

    def test_scale_one_keeps_base_window(self):
        batcher, _ = self.make_batcher(timeout_scale_max=1.0)
        self.heat_shard(batcher, shard=1)
        batcher.add(request_cert(101), now=10.0)
        assert batcher.flush_deadline(1, 1.0) == pytest.approx(11.0)

    def test_idle_shard_controller_demotes_to_shared(self):
        batcher, _ = self.make_batcher(demote_idle_ms=50.0)
        self.heat_shard(batcher, shard=1, now=0.0)
        assert batcher.controller_for(1) is not batcher.controller
        assert batcher.bundle_size_for(1) > 1
        # A lone request after a long idle period: the private controller is
        # forgotten and the shard is governed by the shared low-load
        # controller again (bundle size back to the minimum).
        batcher.add(request_cert(201), now=100.0)
        assert batcher.controller_for(1) is batcher.controller
        assert batcher.bundle_size_for(1) == 1
        assert batcher.demotions == 1

    def test_no_demotion_while_active(self):
        batcher, _ = self.make_batcher(demote_idle_ms=50.0)
        self.heat_shard(batcher, shard=1, now=0.0)
        batcher.add(request_cert(201), now=30.0)  # within the idle horizon
        assert batcher.controller_for(1) is not batcher.controller

    def test_end_to_end_with_per_shard_timeouts(self):
        """The full system with stretched fill windows and demotion enabled
        still answers everything (behavioural smoke: the satellites must
        not wedge the batch timer)."""
        system = make_system(
            batching=BatchingConfig(mode="adaptive", min_bundle=1,
                                    max_bundle=16, timeout_scale_max=4.0,
                                    demote_idle_ms=100.0))
        for index in range(0, 24, 2):
            record = system.invoke(put(skew_key(index), f"v{index}"),
                                   client_index=index % 4)
            assert record.result.value["stored"]
