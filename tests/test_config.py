"""Tests for SystemConfig: replication-cost arithmetic and validation."""

import dataclasses

import pytest

from repro.config import (
    AuthenticationScheme,
    CryptoCosts,
    Deployment,
    NetworkConfig,
    SystemConfig,
    TimerConfig,
)
from repro.errors import ConfigurationError


class TestClusterSizes:
    def test_agreement_cluster_is_3f_plus_1(self):
        for f in range(4):
            assert SystemConfig(f=f).num_agreement_nodes == 3 * f + 1

    def test_execution_cluster_is_2g_plus_1(self):
        for g in range(4):
            assert SystemConfig(g=g).num_execution_nodes == 2 * g + 1

    def test_agreement_quorum_is_2f_plus_1(self):
        for f in range(4):
            assert SystemConfig(f=f).agreement_quorum == 2 * f + 1

    def test_reply_quorum_is_g_plus_1(self):
        for g in range(4):
            assert SystemConfig(g=g).reply_quorum == g + 1

    def test_firewall_grid_is_h_plus_1_squared(self):
        config = SystemConfig.privacy_firewall(h=2)
        assert config.firewall_rows == 3
        assert config.firewall_columns == 3
        assert config.num_firewall_nodes == 9

    def test_no_firewall_means_no_filter_nodes(self):
        config = SystemConfig.separate_different_mac()
        assert config.num_firewall_nodes == 0
        assert config.firewall_rows == 0

    def test_paper_machine_count_for_one_fault_with_firewall(self):
        """Paper Section 5.3: four agreement+filter machines, two extra filter
        machines, three execution machines = nine machines."""
        config = SystemConfig.privacy_firewall()
        assert config.num_agreement_nodes == 4
        assert config.num_execution_nodes == 3
        assert config.total_server_machines == 9

    def test_coupled_deployment_shares_machines(self):
        config = SystemConfig.separate_same_mac()
        assert config.total_server_machines == config.num_agreement_nodes


class TestValidation:
    def test_negative_fault_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(f=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(g=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(h=-1)

    def test_zero_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_clients=0)

    def test_pipeline_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(pipeline_depth=0)

    def test_bundle_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(bundle_size=0)

    def test_firewall_requires_threshold_signatures(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(use_privacy_firewall=True,
                         authentication=AuthenticationScheme.MAC,
                         deployment=Deployment.DIFFERENT)

    def test_firewall_requires_separate_machines(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(use_privacy_firewall=True,
                         authentication=AuthenticationScheme.THRESHOLD,
                         deployment=Deployment.SAME)

    def test_negative_app_processing_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(app_processing_ms=-1.0)

    def test_network_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(network=NetworkConfig(drop_probability=1.5))

    def test_network_delay_ordering_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(network=NetworkConfig(min_delay_ms=2.0, max_delay_ms=1.0))

    def test_timers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(timers=TimerConfig(batch_timeout_ms=0.0))

    def test_view_change_backoff_must_not_shrink(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(timers=TimerConfig(view_change_backoff=0.5))
        assert SystemConfig(
            timers=TimerConfig(view_change_backoff=1.0)
        ).timers.view_change_backoff == 1.0


class TestConstructors:
    def test_paper_configurations_build(self):
        assert SystemConfig.base_coupled().deployment is Deployment.SAME
        assert SystemConfig.separate_same_mac().deployment is Deployment.SAME
        assert SystemConfig.separate_different_mac().deployment is Deployment.DIFFERENT
        thresh = SystemConfig.separate_different_threshold()
        assert thresh.authentication is AuthenticationScheme.THRESHOLD
        firewall = SystemConfig.privacy_firewall()
        assert firewall.use_privacy_firewall

    def test_constructors_accept_overrides(self):
        config = SystemConfig.privacy_firewall(bundle_size=10, num_clients=8)
        assert config.bundle_size == 10
        assert config.num_clients == 8

    def test_replace_returns_modified_copy(self):
        config = SystemConfig()
        other = config.replace(bundle_size=5)
        assert other.bundle_size == 5
        assert config.bundle_size == 1

    def test_config_is_frozen(self):
        config = SystemConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.f = 2  # type: ignore[misc]


class TestCryptoCosts:
    def test_defaults_match_paper_measurements(self):
        costs = CryptoCosts()
        assert costs.mac_ms == pytest.approx(0.2)
        assert costs.threshold_share_ms == pytest.approx(15.0)
        assert costs.threshold_verify_ms == pytest.approx(0.7)

    def test_digest_cost_scales_with_size(self):
        costs = CryptoCosts()
        assert costs.digest_ms(0) == 0.0
        assert costs.digest_ms(50_000) == pytest.approx(1.0)
        assert costs.digest_ms(100_000) > costs.digest_ms(50_000)

    def test_scaled_reduces_costs(self):
        costs = CryptoCosts().scaled(0.1)
        assert costs.threshold_share_ms == pytest.approx(1.5)
        assert costs.mac_ms == pytest.approx(0.02)
