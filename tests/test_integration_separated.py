"""End-to-end integration tests of the separated architecture.

These tests drive complete simulated deployments (agreement cluster, message
queues, execution cluster, optional privacy firewall, clients) and check the
paper's safety properties: replies reflect a single linearizable execution
order, retransmissions are answered exactly once, replicas never diverge, and
all five evaluation configurations work.
"""

import pytest

from conftest import make_config
from repro.apps.counter import CounterService, increment, read_counter
from repro.apps.kvstore import KeyValueStore, get, put
from repro.apps.null_service import NullService, null_operation
from repro.config import AuthenticationScheme, Deployment, SystemConfig
from repro.core import CoupledSystem, SeparatedSystem, UnreplicatedSystem
from repro.statemachine.nondet import NonDetInput


def all_system_factories():
    """(label, builder) for every evaluation configuration."""
    return [
        ("separate-mac", lambda app: SeparatedSystem(make_config(), app, seed=11)),
        ("separate-same", lambda app: SeparatedSystem(
            make_config(deployment=Deployment.SAME), app, seed=11)),
        ("separate-threshold", lambda app: SeparatedSystem(
            make_config(authentication=AuthenticationScheme.THRESHOLD), app, seed=11)),
        ("privacy-firewall", lambda app: SeparatedSystem(
            make_config(authentication=AuthenticationScheme.THRESHOLD,
                        use_privacy_firewall=True), app, seed=11)),
        ("coupled-base", lambda app: CoupledSystem(make_config(), app, seed=11)),
        ("unreplicated", lambda app: UnreplicatedSystem(
            make_config(f=0, g=0, h=0), app, seed=11)),
    ]


@pytest.mark.parametrize("label,factory", all_system_factories(),
                         ids=[name for name, _ in all_system_factories()])
class TestAllConfigurations:
    def test_sequential_counter_is_linearizable(self, label, factory):
        system = factory(CounterService)
        values = [system.invoke(increment(1)).result.value for _ in range(6)]
        assert values == [1, 2, 3, 4, 5, 6]

    def test_reply_matches_reference_execution(self, label, factory):
        system = factory(KeyValueStore)
        reference = KeyValueStore()
        operations = [put("a", 1), put("b", 2), get("a"), put("a", 3), get("a"), get("c")]
        for operation in operations:
            record = system.invoke(operation)
            expected = reference.execute(operation, NonDetInput.empty())
            assert record.result.value == expected.value

    def test_multiple_clients_make_progress(self, label, factory):
        system = factory(CounterService)
        for round_index in range(3):
            for client_index in range(len(system.clients)):
                record = system.invoke(increment(1), client_index=client_index)
                assert record.result.error is None
        assert system.total_completed() == 3 * len(system.clients)


class TestSeparatedSafety:
    def test_counter_value_equals_number_of_executions(self, config):
        system = SeparatedSystem(config, CounterService, seed=3)
        total = 8
        for _ in range(total):
            system.invoke(increment(1))
        final = system.invoke(read_counter())
        assert final.result.value == total
        # Every correct execution replica executed each request exactly once.
        for node in system.execution_nodes:
            assert node.requests_executed == total + 1  # + the read

    def test_execution_replicas_never_diverge(self, config):
        system = SeparatedSystem(config, KeyValueStore, seed=4)
        for i in range(10):
            system.invoke(put(f"key{i % 3}", i))
        system.run(50.0)
        checkpoints = {node.app.checkpoint() for node in system.execution_nodes}
        assert len(checkpoints) == 1

    def test_sequence_numbers_assigned_without_gaps(self, config):
        system = SeparatedSystem(config, CounterService, seed=5)
        records = [system.invoke(increment(1)) for _ in range(6)]
        seqs = [record.seq for record in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        for node in system.execution_nodes:
            assert node.max_executed >= max(seqs)

    def test_agreement_assigns_each_request_one_sequence_number(self, config):
        system = SeparatedSystem(config, CounterService, seed=6)
        for _ in range(5):
            system.invoke(increment(1))
        replica = system.agreement_replicas[0]
        assert replica.requests_delivered == 5
        assert replica.batches_delivered == 5  # bundle size 1

    def test_client_timestamps_are_monotonic_per_client(self, config):
        system = SeparatedSystem(config, CounterService, seed=7)
        for _ in range(4):
            system.invoke(increment(1), client_index=0)
            system.invoke(increment(1), client_index=1)
        for client in system.clients:
            timestamps = [record.timestamp for record in client.completed]
            assert timestamps == sorted(timestamps)
            assert len(set(timestamps)) == len(timestamps)

    def test_results_do_not_require_all_execution_nodes(self, config):
        """g + 1 = 2 matching replies suffice; the slowest replica is not needed."""
        system = SeparatedSystem(config, CounterService, seed=8)
        record = system.invoke(increment(1))
        assert record.result.value == 1

    def test_message_queue_reply_cache_serves_duplicates(self, config):
        system = SeparatedSystem(config, CounterService, seed=9)
        system.invoke(increment(5))
        # The client may have been satisfied by direct execution replies;
        # let the partial certificates reach the agreement cluster too.
        system.run(50.0)
        queue = system.message_queues[0]
        client = system.clients[0]
        cached = queue.cache.get(client.node_id)
        assert cached is not None
        assert cached.reply.timestamp == 1

    def test_pipeline_backpressure_bounds_outstanding_batches(self):
        config = make_config(pipeline_depth=2, num_clients=4)
        system = SeparatedSystem(config, CounterService, seed=10)
        for client_index in range(4):
            for _ in range(3):
                system.submit(increment(1), client_index=client_index)
        system.run_until(lambda: system.total_completed() == 12, timeout_ms=30_000,
                         description="all submissions complete")
        assert system.total_completed() == 12

    def test_bundling_batches_multiple_requests(self):
        config = make_config(bundle_size=4, num_clients=4)
        system = SeparatedSystem(config, CounterService, seed=12)
        for client_index in range(4):
            system.submit(increment(1), client_index=client_index)
        system.run_until(lambda: system.total_completed() == 4, timeout_ms=30_000,
                         description="bundled requests complete")
        replica = system.agreement_replicas[0]
        # Four requests from four clients should need fewer than four batches.
        assert replica.batches_delivered < 4
        assert replica.requests_delivered == 4

    def test_app_processing_time_adds_to_latency(self):
        fast = SeparatedSystem(make_config(), NullService, seed=13)
        slow = SeparatedSystem(make_config(app_processing_ms=20.0), NullService, seed=13)
        fast_latency = fast.invoke(null_operation()).latency_ms
        slow_latency = slow.invoke(null_operation()).latency_ms
        assert slow_latency >= fast_latency + 15.0


class TestDeploymentShapes:
    def test_cluster_sizes_match_config(self, config):
        system = SeparatedSystem(config, CounterService, seed=1)
        assert len(system.agreement_replicas) == config.num_agreement_nodes == 4
        assert len(system.execution_nodes) == config.num_execution_nodes == 3
        assert system.firewall is None

    def test_firewall_deployment_has_filter_grid(self, firewall_config):
        system = SeparatedSystem(firewall_config, CounterService, seed=1)
        assert system.firewall is not None
        assert len(system.firewall.nodes) == firewall_config.num_firewall_nodes == 4
        assert len(system.firewall.rows) == 2

    def test_two_fault_tolerant_execution_cluster(self):
        config = make_config(g=2)
        system = SeparatedSystem(config, CounterService, seed=1)
        assert len(system.execution_nodes) == 5
        assert system.invoke(increment(1)).result.value == 1

    def test_threshold_group_created_only_for_threshold_scheme(self, config,
                                                               threshold_config):
        mac_system = SeparatedSystem(config, CounterService, seed=1)
        thresh_system = SeparatedSystem(threshold_config, CounterService, seed=1)
        assert mac_system.threshold_group is None
        assert thresh_system.threshold_group is not None
