"""Tests for the cryptographic substrate: digests, keys, MACs, signatures,
threshold signatures, and authentication certificates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import AuthenticationScheme, CryptoCosts
from repro.crypto.certificate import Certificate
from repro.crypto.digest import combine_digests, digest, digest_hex
from repro.crypto.keys import Keystore
from repro.crypto.provider import CryptoProvider
from repro.errors import CertificateError, CryptoError, UnknownKeyError, VerificationError
from repro.messages.request import ClientRequest
from repro.statemachine.interface import Operation
from repro.util.ids import agreement_id, client_id, execution_id


@pytest.fixture
def keystore():
    return Keystore()


def provider(keystore, node):
    return CryptoProvider(node, keystore)


def sample_request(tag=0):
    return ClientRequest(operation=Operation(kind="null", args={"tag": tag}),
                         timestamp=1, client=client_id(0))


class TestDigest:
    def test_fixed_length(self):
        assert len(digest(b"hello")) == 32
        assert len(digest({"a": 1})) == 32

    def test_deterministic_and_distinct(self):
        assert digest({"a": 1}) == digest({"a": 1})
        assert digest({"a": 1}) != digest({"a": 2})

    def test_hex_form(self):
        assert digest_hex(b"x") == digest(b"x").hex()

    def test_combine_digests_order_sensitive(self):
        a, b = digest(b"a"), digest(b"b")
        assert combine_digests(a, b) != combine_digests(b, a)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_collision_free_on_samples(self, x, y):
        if x != y:
            assert digest(x) != digest(y)


class TestKeystore:
    def test_register_is_idempotent(self, keystore):
        node = client_id(0)
        keystore.register_node(node)
        key1 = keystore.private_key(node)
        keystore.register_node(node)
        assert keystore.private_key(node) == key1

    def test_unknown_key_raises(self, keystore):
        with pytest.raises(UnknownKeyError):
            keystore.private_key(client_id(9))

    def test_distinct_nodes_have_distinct_keys(self, keystore):
        keystore.register_node(client_id(0))
        keystore.register_node(client_id(1))
        assert keystore.private_key(client_id(0)) != keystore.private_key(client_id(1))

    def test_pair_secret_symmetric(self, keystore):
        a, b = client_id(0), agreement_id(1)
        keystore.register_node(a)
        keystore.register_node(b)
        assert keystore.pair_secret(a, b) == keystore.pair_secret(b, a)

    def test_pair_secret_distinct_pairs(self, keystore):
        nodes = [client_id(0), agreement_id(0), agreement_id(1)]
        for node in nodes:
            keystore.register_node(node)
        assert keystore.pair_secret(nodes[0], nodes[1]) != keystore.pair_secret(nodes[0], nodes[2])

    def test_threshold_group_creation(self, keystore):
        members = [execution_id(i) for i in range(3)]
        group = keystore.create_threshold_group("g", members, 2)
        assert group.threshold == 2
        assert set(group.members) == set(members)
        assert keystore.create_threshold_group("g", members, 2) is group

    def test_threshold_group_conflicting_parameters_rejected(self, keystore):
        members = [execution_id(i) for i in range(3)]
        keystore.create_threshold_group("g", members, 2)
        with pytest.raises(CryptoError):
            keystore.create_threshold_group("g", members, 3)

    def test_threshold_bounds_validated(self, keystore):
        members = [execution_id(i) for i in range(3)]
        with pytest.raises(CryptoError):
            keystore.create_threshold_group("bad", members, 0)
        with pytest.raises(CryptoError):
            keystore.create_threshold_group("bad", members, 4)

    def test_share_key_only_for_members(self, keystore):
        group = keystore.create_threshold_group("g", [execution_id(0), execution_id(1)], 2)
        with pytest.raises(UnknownKeyError):
            group.share_key(execution_id(2))


class TestMacAuthenticators:
    def test_round_trip(self, keystore):
        signer = provider(keystore, client_id(0))
        verifier = provider(keystore, agreement_id(0))
        request = sample_request()
        auth = signer.mac_authenticator(request, [agreement_id(0), agreement_id(1)])
        assert verifier.verify_mac(request, auth)

    def test_wrong_payload_fails(self, keystore):
        signer = provider(keystore, client_id(0))
        verifier = provider(keystore, agreement_id(0))
        auth = signer.mac_authenticator(sample_request(0), [agreement_id(0)])
        assert not verifier.verify_mac(sample_request(1), auth)

    def test_unaddressed_destination_fails(self, keystore):
        signer = provider(keystore, client_id(0))
        other = provider(keystore, agreement_id(3))
        auth = signer.mac_authenticator(sample_request(), [agreement_id(0)])
        assert not other.verify_mac(sample_request(), auth)


class TestSignatures:
    def test_round_trip(self, keystore):
        signer = provider(keystore, execution_id(0))
        verifier = provider(keystore, client_id(0))
        request = sample_request()
        auth = signer.sign(request)
        assert verifier.verify_signature(request, auth)

    def test_tampered_payload_fails(self, keystore):
        signer = provider(keystore, execution_id(0))
        verifier = provider(keystore, client_id(0))
        auth = signer.sign(sample_request(0))
        assert not verifier.verify_signature(sample_request(1), auth)


class TestThresholdSignatures:
    def _group(self, keystore, threshold=2, size=3):
        members = [execution_id(i) for i in range(size)]
        keystore.create_threshold_group("exec", members, threshold)
        return members

    def test_combine_with_quorum(self, keystore):
        members = self._group(keystore)
        request = sample_request()
        shares = [provider(keystore, m).threshold_share(request, "exec")
                  for m in members[:2]]
        combiner = provider(keystore, agreement_id(0))
        signature = combiner.threshold_combine(request, "exec", shares)
        assert provider(keystore, client_id(0)).verify_threshold_signature(
            request, signature, "exec")

    def test_combine_without_quorum_fails(self, keystore):
        members = self._group(keystore)
        request = sample_request()
        shares = [provider(keystore, members[0]).threshold_share(request, "exec")]
        with pytest.raises(VerificationError):
            provider(keystore, agreement_id(0)).threshold_combine(request, "exec", shares)

    def test_duplicate_shares_do_not_count_twice(self, keystore):
        members = self._group(keystore)
        request = sample_request()
        share = provider(keystore, members[0]).threshold_share(request, "exec")
        with pytest.raises(VerificationError):
            provider(keystore, agreement_id(0)).threshold_combine(
                request, "exec", [share, share])

    def test_combined_value_independent_of_share_subset(self, keystore):
        """The paper relies on threshold signatures being deterministic so the
        certificate encoding cannot leak which replicas contributed."""
        members = self._group(keystore, threshold=2, size=3)
        request = sample_request()
        combiner = provider(keystore, agreement_id(0))
        shares_a = [provider(keystore, m).threshold_share(request, "exec")
                    for m in members[:2]]
        shares_b = [provider(keystore, m).threshold_share(request, "exec")
                    for m in members[1:]]
        assert combiner.threshold_combine(request, "exec", shares_a) == \
            combiner.threshold_combine(request, "exec", shares_b)

    def test_share_from_non_member_rejected(self, keystore):
        self._group(keystore)
        request = sample_request()
        outsider = provider(keystore, agreement_id(0))
        with pytest.raises(UnknownKeyError):
            outsider.threshold_share(request, "exec")

    def test_wrong_payload_signature_fails(self, keystore):
        members = self._group(keystore)
        combiner = provider(keystore, agreement_id(0))
        shares = [provider(keystore, m).threshold_share(sample_request(0), "exec")
                  for m in members[:2]]
        signature = combiner.threshold_combine(sample_request(0), "exec", shares)
        assert not combiner.verify_threshold_signature(sample_request(1), signature, "exec")


class TestCertificates:
    def test_mac_certificate_quorum(self, keystore):
        execs = [execution_id(i) for i in range(3)]
        request = sample_request()
        cert = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        for node in execs[:2]:
            provider(keystore, node).authenticate(cert, [client_id(0)])
        client = provider(keystore, client_id(0))
        assert client.verify_certificate(cert, 2, execs)
        assert not client.verify_certificate(cert, 3, execs)

    def test_signers_outside_universe_do_not_count(self, keystore):
        request = sample_request()
        cert = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        provider(keystore, agreement_id(0)).authenticate(cert, [client_id(0)])
        provider(keystore, execution_id(0)).authenticate(cert, [client_id(0)])
        client = provider(keystore, client_id(0))
        assert not client.verify_certificate(cert, 2, [execution_id(i) for i in range(3)])

    def test_duplicate_signer_counts_once(self, keystore):
        request = sample_request()
        cert = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        signer = provider(keystore, execution_id(0))
        signer.authenticate(cert, [client_id(0)])
        signer.authenticate(cert, [client_id(0)])
        assert cert.count() == 1

    def test_scheme_mismatch_rejected(self, keystore):
        request = sample_request()
        cert = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        auth = provider(keystore, execution_id(0)).sign(request)
        with pytest.raises(CertificateError):
            cert.add(auth)

    def test_merge_accumulates_signers(self, keystore):
        request = sample_request()
        cert_a = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        cert_b = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        provider(keystore, execution_id(0)).authenticate(cert_a, [client_id(0)])
        provider(keystore, execution_id(1)).authenticate(cert_b, [client_id(0)])
        cert_a.merge(cert_b)
        assert cert_a.count() == 2

    def test_require_certificate_raises(self, keystore):
        request = sample_request()
        cert = Certificate(payload=request, scheme=AuthenticationScheme.MAC)
        client = provider(keystore, client_id(0))
        with pytest.raises(VerificationError):
            client.require_certificate(cert, 1, [execution_id(0)])

    def test_threshold_certificate_with_signature_verifies(self, keystore):
        members = [execution_id(i) for i in range(3)]
        keystore.create_threshold_group("exec", members, 2)
        request = sample_request()
        cert = Certificate(payload=request, scheme=AuthenticationScheme.THRESHOLD,
                           threshold_group="exec")
        shares = [provider(keystore, m).threshold_share(request, "exec") for m in members[:2]]
        for share in shares:
            cert.add(share)
        combiner = provider(keystore, agreement_id(0))
        cert.threshold_signature = combiner.threshold_combine(request, "exec", shares)
        assert provider(keystore, client_id(1)).verify_certificate(cert, 2)


class TestCostAccounting:
    def test_operations_charge_costs(self, keystore):
        charges = []
        ops = []
        prov = CryptoProvider(execution_id(0), keystore, CryptoCosts(),
                              charge=charges.append, record=ops.append)
        members = [execution_id(i) for i in range(3)]
        keystore.create_threshold_group("exec", members, 2)
        request = sample_request()
        prov.mac_authenticator(request, [client_id(0)])
        prov.threshold_share(request, "exec")
        assert "mac_sign" in ops
        assert "threshold_share" in ops
        # The threshold share must be the dominant cost (15 ms by default).
        assert max(charges) == pytest.approx(15.0)
