"""Agreement-cluster messages.

The internal three-phase protocol (PRE-PREPARE / PREPARE / COMMIT), the
checkpoint and view-change messages of the BASE-style agreement library, and
the two artefacts the rest of the system consumes:

* :class:`AgreementCertBody` -- the payload of the paper's agreement
  certificate ``<COMMIT, v, n, d, A>_{A,E,2f+1}``, binding a batch digest to a
  view and sequence number together with the obliviously chosen
  nondeterminism inputs;
* :class:`OrderedBatch` -- the message the agreement cluster's message queues
  send towards the execution cluster: the request certificates of the batch
  plus the agreement certificate that orders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..crypto.certificate import Authenticator, Certificate
from ..net.message import Message
from ..statemachine.nondet import NonDetInput
from ..util.ids import NodeId


class ConfigOperation(Message):
    """Marker base for system config operations ordered through the log.

    A config operation (e.g. a partition-map change from
    :mod:`repro.sharding.rebalance`) rides the ordinary agreement path as a
    single-certificate batch signed by the proposing primary: its position
    in the agreed order is what gives the reconfiguration a deterministic
    cut point.  The agreement replica recognises these payloads by type --
    they are not client requests, carry no client timestamp, and never
    enter the reply bookkeeping.
    """


@dataclass(frozen=True)
class AgreementCertBody(Message):
    """Payload of the agreement certificate for one batch.

    ``batch_digest`` is the digest of the ordered tuple of request digests in
    the batch; ``nondet`` carries the agreed nondeterminism inputs.
    """

    view: int
    seq: int
    batch_digest: bytes
    nondet: NonDetInput

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "n": self.seq,
            "d": self.batch_digest,
            "nondet": self.nondet.to_wire(),
        }


@dataclass(frozen=True)
class PrePrepare(Message):
    """Primary's PRE-PREPARE for a batch of request certificates."""

    view: int
    seq: int
    batch_digest: bytes
    requests: Tuple[Certificate, ...]
    nondet: NonDetInput
    primary: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "n": self.seq,
            "d": self.batch_digest,
            "nondet": self.nondet.to_wire(),
            "primary": self.primary.name,
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return sum(cert.wire_size() for cert in self.requests)


@dataclass(frozen=True)
class Prepare(Message):
    """Backup's PREPARE vote for (view, seq, batch_digest)."""

    view: int
    seq: int
    batch_digest: bytes
    replica: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "n": self.seq,
            "d": self.batch_digest,
            "i": self.replica.name,
        }


@dataclass(frozen=True)
class CommitMsg(Message):
    """COMMIT vote for (view, seq, batch_digest).

    ``cert_authenticator`` is the sender's authenticator over the
    corresponding :class:`AgreementCertBody`, addressed to the execution
    cluster (and firewall).  Collecting ``2f + 1`` of these is what turns a
    committed batch into a transferable agreement certificate.
    """

    view: int
    seq: int
    batch_digest: bytes
    replica: NodeId
    cert_authenticator: Optional["Authenticator"] = None

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "n": self.seq,
            "d": self.batch_digest,
            "i": self.replica.name,
        }


@dataclass(frozen=True)
class AgreementCheckpoint(Message):
    """Agreement-cluster checkpoint vote at sequence number ``seq``.

    ``sync_state`` is the executor's transferable frontier state at the cut
    (for the message queue: per-shard sequence frontiers and the epoch
    cursor), so a replica that fell behind the stable checkpoint can adopt
    it from any vote matching the certified digest (PBFT state transfer).
    It rides outside the authenticated fields: its integrity comes from
    recomputing ``state_digest`` over the claimed state at the receiver,
    not from the vote's authenticator, so the authenticated bytes are those
    of a plain checkpoint vote.
    """

    seq: int
    state_digest: bytes
    replica: NodeId
    sync_state: Tuple[Tuple[str, Any], ...] = ()

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "n": self.seq,
            "d": self.state_digest,
            "i": self.replica.name,
        }


@dataclass(frozen=True)
class PreparedProof(Message):
    """Evidence that a batch prepared at a replica (used in view changes)."""

    view: int
    seq: int
    batch_digest: bytes
    requests: Tuple[Certificate, ...]
    nondet: NonDetInput

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "n": self.seq,
            "d": self.batch_digest,
        }


@dataclass(frozen=True)
class ViewChange(Message):
    """VIEW-CHANGE vote for ``new_view``.

    ``prepared`` carries, for every sequence number above the replica's last
    stable checkpoint that prepared locally, the proof needed for the new
    primary to re-propose it.

    ``planned`` marks a proactive rotation vote (the
    ``rotation_interval_checkpoints`` knob): the voter's own rotation
    counter fired, nobody accused the primary.  A replica joining the view
    change treats it as planned only when ``f + 1`` votes say so -- at
    least one of those is correct, so a Byzantine minority cannot shield a
    genuinely failed primary from deposed-marking.
    """

    new_view: int
    last_stable_seq: int
    prepared: Tuple[PreparedProof, ...]
    replica: NodeId
    planned: bool = False

    def payload_fields(self) -> Dict[str, Any]:
        fields = {
            "v": self.new_view,
            "h": self.last_stable_seq,
            "prepared": [p.to_wire() for p in self.prepared],
            "i": self.replica.name,
        }
        if self.planned:  # omitted when False: failure votes keep their bytes
            fields["p"] = 1
        return fields


@dataclass(frozen=True)
class NewView(Message):
    """NEW-VIEW announcement from the primary of ``view``.

    ``pre_prepares`` re-proposes every prepared-but-uncommitted batch from the
    previous views so that no agreed ordering is lost across the view change.
    """

    view: int
    view_change_replicas: Tuple[str, ...]
    pre_prepares: Tuple[PrePrepare, ...]
    primary: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "vc": list(self.view_change_replicas),
            "pp": [p.to_wire() for p in self.pre_prepares],
            "primary": self.primary.name,
        }


@dataclass(frozen=True)
class OrderedBatch(Message):
    """A batch of requests plus the agreement certificate that orders it.

    This is the unit that flows from the agreement cluster (message queues)
    through the optional privacy firewall to the execution cluster.  The
    request certificates carry the (possibly encrypted) operations; the
    agreement certificate carries the 2f+1 agreement authenticators over
    :class:`AgreementCertBody`.
    """

    seq: int
    view: int
    request_certificates: Tuple[Certificate, ...]
    agreement_certificate: Certificate
    nondet: NonDetInput

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "n": self.seq,
            "v": self.view,
            "requests": [cert.to_wire() for cert in self.request_certificates],
            "agreement": self.agreement_certificate.to_wire(),
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return sum(
            getattr(cert.payload, "padding_bytes", 0)
            for cert in self.request_certificates
        )

    @property
    def cert_body(self) -> AgreementCertBody:
        """The agreement certificate payload (view, seq, digest, nondet)."""
        return self.agreement_certificate.payload

    def client_requests(self):
        """The client request messages in batch order."""
        return [cert.payload for cert in self.request_certificates]
