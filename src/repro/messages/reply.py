"""Reply messages.

A reply certificate has the form ``<REPLY, v, n, t, c, E, r>_{E,c,g+1}``:
``g + 1`` execution nodes vouch for the result ``r`` of the request with
timestamp ``t`` from client ``c``, serialized at sequence number ``n`` while
the agreement cluster was in view ``v``.

To support bundling (Figure 5), replies for all the requests in one batch are
collected into a :class:`BatchReplyBody` and the certificate covers the whole
bundle; a single threshold signature (or set of MAC authenticators) therefore
amortises over every reply in the bundle.  With ``bundle_size=1`` this is
exactly the per-request reply certificate of the paper's protocol
description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from ..crypto.certificate import Certificate
from ..net.message import Message
from ..statemachine.interface import OperationResult
from ..util.ids import NodeId, Role
from .request import EncryptedBody


@dataclass(frozen=True, slots=True)
class ReplyBody(Message):
    """The per-request reply fields: ``(v, n, t, c, r)``.

    ``result`` is either a plain :class:`OperationResult` or an
    :class:`~repro.messages.request.EncryptedBody` wrapping one when the
    privacy firewall requires reply bodies to be hidden from agreement and
    filter nodes.
    """

    view: int
    seq: int
    timestamp: int
    client: NodeId
    result: Union[OperationResult, EncryptedBody]

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "v": self.view,
            "n": self.seq,
            "t": self.timestamp,
            "c": self.client.name,
            "r": self.result.to_wire(),
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        if isinstance(self.result, EncryptedBody):
            return self.result.size
        return self.result.size

    def result_for(self, role: Role) -> OperationResult:
        """Return the result as visible to a node playing ``role``."""
        if isinstance(self.result, EncryptedBody):
            return self.result.open(role)
        return self.result

    def result_is_encrypted(self) -> bool:
        return isinstance(self.result, EncryptedBody)


@dataclass(frozen=True, slots=True)
class BatchReplyBody(Message):
    """All replies for one batch; the payload the reply certificate covers.

    ``shard`` identifies the execution cluster that produced the reply in
    sharded deployments (``repro.sharding``), in which case ``seq`` is that
    shard's local sequence number and ``epoch`` is the partition-map epoch
    the cluster executed the batch under.  Both are covered by the
    certificate, so a Byzantine node cannot relabel a reply as coming from
    another shard -- or forge an epoch to confuse a client's routing
    expectations -- without invalidating every correct authenticator: a
    certified newer epoch is how a client with a stale map learns, safely,
    that a rebalance moved its key.  Unsharded deployments leave both
    ``None`` and their wire format is unchanged.
    """

    view: int
    seq: int
    replies: Tuple[ReplyBody, ...]
    shard: Optional[int] = None
    epoch: Optional[int] = None

    def payload_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "v": self.view,
            "n": self.seq,
            "replies": [reply.to_wire() for reply in self.replies],
        }
        if self.shard is not None:
            fields["shard"] = self.shard
        if self.epoch is not None:
            fields["epoch"] = self.epoch
        return fields

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return sum(reply.padding_bytes for reply in self.replies)

    def reply_for(self, client: NodeId) -> Optional[ReplyBody]:
        """The reply addressed to ``client``, if any."""
        for reply in self.replies:
            if reply.client == client:
                return reply
        return None


@dataclass(frozen=True)
class BatchReply(Message):
    """Reply message flowing from the execution cluster towards the clients.

    ``certificate`` covers ``body`` (a :class:`BatchReplyBody`).  Execution
    nodes send it with their own single authenticator (a *partial* reply
    certificate); the agreement cluster, the privacy firewall's top row, or
    the client assembles partials into a full certificate with ``g + 1``
    distinct signers or one combined threshold signature.
    """

    seq: int
    body: BatchReplyBody
    certificate: Certificate
    sender: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "n": self.seq,
            "body": self.body.to_wire(),
            "certificate": self.certificate.to_wire(),
            "sender": self.sender.name,
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return self.body.padding_bytes


@dataclass(frozen=True)
class ClientReply(Message):
    """Reply certificate as relayed to one client.

    Contains the full batch body (needed to verify the certificate, which
    covers the bundle) plus the client's own reply extracted from it.
    """

    reply: ReplyBody
    body: BatchReplyBody
    certificate: Certificate

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "reply": self.reply.to_wire(),
            "body": self.body.to_wire(),
            "certificate": self.certificate.to_wire(),
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return self.reply.padding_bytes
