"""Protocol message formats.

The message formats follow Section 3 of the paper (which in turn follows
Castro and Liskov's):

* ``<REQUEST, o, t, c>_{c,A,1}``       -- :class:`ClientRequest` wrapped in a request certificate,
* ``<COMMIT, v, n, d, A>_{A,E,2f+1}``  -- :class:`AgreementCertBody` wrapped in an agreement certificate,
* ``<REPLY, v, n, t, c, E, r>_{E,c,g+1}`` -- :class:`ReplyBody` inside a :class:`BatchReplyBody`
  wrapped in a reply certificate,
* ``<CHECKPOINT, n, d>_{E,E,g+1}``     -- :class:`ExecCheckpointShare` / proof of stability.

One generalisation: a *bundle* (batch) of requests shares a single sequence
number and a single reply certificate, which is how the paper amortises the
threshold-signature cost across replies (Section 5.3).  With ``bundle_size=1``
the formats reduce exactly to the per-request certificates above.
"""

from .request import EncryptedBody, ClientRequest, RequestEnvelope
from .agreement import (
    AgreementCertBody,
    PrePrepare,
    Prepare,
    CommitMsg,
    AgreementCheckpoint,
    ViewChange,
    NewView,
    OrderedBatch,
)
from .reply import ReplyBody, BatchReplyBody, BatchReply, ClientReply
from .checkpoint import (
    ExecCheckpointShare,
    ExecCheckpointProof,
    FetchBatch,
    BatchTransfer,
    StateTransfer,
)

__all__ = [
    "EncryptedBody",
    "ClientRequest",
    "RequestEnvelope",
    "AgreementCertBody",
    "PrePrepare",
    "Prepare",
    "CommitMsg",
    "AgreementCheckpoint",
    "ViewChange",
    "NewView",
    "OrderedBatch",
    "ReplyBody",
    "BatchReplyBody",
    "BatchReply",
    "ClientReply",
    "ExecCheckpointShare",
    "ExecCheckpointProof",
    "FetchBatch",
    "BatchTransfer",
    "StateTransfer",
]
