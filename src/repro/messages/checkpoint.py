"""Execution-cluster checkpoint, retransmission, and state-transfer messages.

Execution nodes periodically checkpoint their application state plus their
per-client reply table, multicast ``<CHECKPOINT, n, d>_{i,E,1}`` shares to the
rest of the cluster, and assemble ``g + 1`` matching shares into a *proof of
stability* that lets them garbage-collect older state (Section 3.3.2).

The intra-cluster retransmission protocol (Section 3.3.1) uses
:class:`FetchBatch` to request a missing sequence number from peers, which
answer with either the :class:`BatchTransfer` of that batch or a
:class:`StateTransfer` of a newer stable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..crypto.certificate import Authenticator, Certificate
from ..net.message import Message
from ..util.ids import NodeId
from .agreement import OrderedBatch


def checkpoint_payload(seq: int, state_digest: bytes) -> Dict[str, Any]:
    """The canonical payload that checkpoint-share authenticators cover.

    Using a plain dict (rather than a message carrying the voting replica's
    identity) means every replica's authenticator covers identical bytes, so
    the shares can be merged into one transferable proof of stability.
    """
    return {"exec-checkpoint": seq, "digest": state_digest}


@dataclass(frozen=True)
class ExecCheckpointShare(Message):
    """One execution node's vote that its state at ``seq`` digests to ``state_digest``.

    ``authenticator`` covers :func:`checkpoint_payload` so that ``g + 1``
    shares assemble into a transferable proof of stability.
    """

    seq: int
    state_digest: bytes
    replica: NodeId
    authenticator: Optional["Authenticator"] = None

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "n": self.seq,
            "d": self.state_digest,
            "i": self.replica.name,
        }


@dataclass(frozen=True)
class ExecCheckpointProof(Message):
    """A proof of stability: ``g + 1`` matching checkpoint shares."""

    seq: int
    state_digest: bytes
    certificate: Certificate

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "n": self.seq,
            "d": self.state_digest,
            "certificate": self.certificate.to_wire(),
        }


@dataclass(frozen=True)
class FetchBatch(Message):
    """Request to peers for a missing ordered batch (sequence number gap)."""

    seq: int
    replica: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {"n": self.seq, "i": self.replica.name}


@dataclass(frozen=True)
class BatchTransfer(Message):
    """Answer to :class:`FetchBatch`: the ordered batch itself."""

    batch: OrderedBatch
    replica: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "batch": self.batch.to_wire(),
            "i": self.replica.name,
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return self.batch.padding_bytes


@dataclass(frozen=True)
class StateTransfer(Message):
    """Answer to :class:`FetchBatch` when the batch was garbage collected.

    Carries a stable checkpoint newer than the requested sequence number: the
    serialized application state, the serialized reply table, and the proof of
    stability certifying their digest.
    """

    seq: int
    app_state: bytes
    reply_table: bytes
    proof: ExecCheckpointProof
    replica: NodeId
    #: subsystem state beyond the application (e.g. the sharded nodes'
    #: partition-map epoch); covered by the checkpoint digest
    extra: bytes = b""

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "n": self.seq,
            "app_digest_len": len(self.app_state),
            "reply_table_len": len(self.reply_table),
            "extra_len": len(self.extra),
            "proof": self.proof.to_wire(),
            "i": self.replica.name,
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return len(self.app_state) + len(self.reply_table) + len(self.extra)
