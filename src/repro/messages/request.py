"""Client request messages.

A request certificate has the form ``<REQUEST, o, t, c>_{c,A,1}``: the
operation ``o``, the client timestamp ``t``, and the client identity ``c``,
authenticated by the client to the agreement cluster (one authenticator is
enough, since a client can only hurt itself by issuing bad requests).

When the privacy firewall is deployed, request and reply *bodies* must be
encrypted so that agreement and filter nodes cannot read them; only the
client and the execution nodes hold the decryption key.  :class:`EncryptedBody`
models that end-to-end encryption: the simulation carries the plaintext but
only reveals it to nodes whose role is in the reader set, and its wire form
exposes nothing but a digest and a size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Union

from ..errors import FirewallError
from ..net.message import Message
from ..statemachine.interface import Operation
from ..util.ids import NodeId, Role
from ..crypto.certificate import Certificate
from ..crypto.digest import digest


#: roles allowed to read encrypted request/reply bodies
DEFAULT_READERS: FrozenSet[Role] = frozenset({Role.CLIENT, Role.EXECUTION, Role.SERVER})

# RequestEnvelope is defined at the end of this module (it wraps a request
# certificate, i.e. a Certificate whose payload is a ClientRequest).


class EncryptedBody:
    """An end-to-end encrypted payload.

    ``open(role)`` returns the plaintext for authorised readers and raises
    :class:`FirewallError` for everyone else -- a confidentiality violation in
    the simulation is therefore an *exception*, which the property-based
    confidentiality tests turn into assertions.
    """

    def __init__(self, plaintext: Any, readers: FrozenSet[Role] = DEFAULT_READERS,
                 size: Optional[int] = None) -> None:
        self._plaintext = plaintext
        self.readers = readers
        wire = plaintext.to_wire() if hasattr(plaintext, "to_wire") else plaintext
        self.ciphertext_digest = digest(wire)
        if size is not None:
            self.size = size
        elif hasattr(plaintext, "body_size"):
            self.size = max(int(plaintext.body_size), 64)
        else:
            self.size = 64

    def open(self, role: Role) -> Any:
        """Decrypt for a node playing ``role``."""
        if role not in self.readers:
            raise FirewallError(
                f"role {role.value} is not authorised to read an encrypted body"
            )
        return self._plaintext

    def can_open(self, role: Role) -> bool:
        return role in self.readers

    def to_wire(self) -> Dict[str, Any]:
        """Wire form: digest and size only (the ciphertext is opaque)."""
        return {
            "encrypted": True,
            "digest": self.ciphertext_digest,
            "size": self.size,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<EncryptedBody {self.ciphertext_digest.hex()[:12]} size={self.size}>"


@dataclass(frozen=True, slots=True)
class ClientRequest(Message):
    """``REQUEST`` message issued by a client.

    ``operation`` is either a plain :class:`~repro.statemachine.interface.Operation`
    or an :class:`EncryptedBody` wrapping one (privacy-firewall deployments).
    ``timestamp`` is the client's monotonically increasing request timestamp;
    ``all_replicas`` indicates whether every agreement node should relay the
    reply (set on retransmissions) or only the designated one.
    """

    operation: Union[Operation, EncryptedBody]
    timestamp: int
    client: NodeId
    all_replicas: bool = False
    reply_to: Optional[NodeId] = None

    def payload_fields(self) -> Dict[str, Any]:
        op_wire = self.operation.to_wire()
        return {
            "o": op_wire,
            "t": self.timestamp,
            "c": self.client.name,
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        """Model the request body size for network-cost purposes."""
        if isinstance(self.operation, EncryptedBody):
            return self.operation.size
        return self.operation.body_size

    def operation_for(self, role: Role) -> Operation:
        """Return the operation as visible to a node playing ``role``."""
        if isinstance(self.operation, EncryptedBody):
            return self.operation.open(role)
        return self.operation

    def body_is_encrypted(self) -> bool:
        return isinstance(self.operation, EncryptedBody)


@dataclass(frozen=True)
class RequestEnvelope(Message):
    """Transport wrapper carrying a request certificate.

    The certificate's payload is a :class:`ClientRequest` and it carries the
    client's single authenticator (``<REQUEST, o, t, c>_{c,A,1}``).  Clients
    send it to agreement nodes; agreement nodes forward it to the primary and
    relay it (inside an :class:`~repro.messages.agreement.OrderedBatch`)
    towards the execution cluster.
    """

    certificate: "Certificate"

    def payload_fields(self) -> Dict[str, Any]:
        return {"certificate": self.certificate.to_wire()}

    @property
    def request(self) -> ClientRequest:
        """The wrapped client request."""
        return self.certificate.payload

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return getattr(self.certificate.payload, "padding_bytes", 0)
