"""Oblivious nondeterminism resolution (Section 3.1.4 of the paper).

Many services need nondeterministic values while executing a request -- NFS
replicas pick last-access timestamps and fresh file handles, for instance.
If each execution replica chose these values independently their states would
diverge.  Traditional BFT systems let the primary pick the values; the
separated architecture goes further and requires the *agreement* cluster to
pick them **obliviously**: without looking at the request body or application
state, so that a compromised agreement node learns nothing confidential and a
compromised execution node cannot influence the choice to create a covert
channel.

The agreement cluster includes a :class:`NonDetInput` (a timestamp and a block
of pseudo-random bits proposed by the primary and sanity-checked by the other
agreement replicas) in every agreement certificate.  The
:class:`AbstractionLayer` on each execution node then maps those inputs
deterministically to whatever application-specific values the service needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ProtocolError


@dataclass(frozen=True)
class NonDetInput:
    """Nondeterminism inputs chosen by the agreement cluster for one batch.

    ``timestamp_ms`` is the primary's wall-clock proposal (virtual time in the
    simulation) and ``random_bits`` is a block of pseudo-random bytes.  Both
    are chosen without access to request bodies or application state.
    """

    timestamp_ms: float
    random_bits: bytes

    def to_wire(self) -> Dict[str, Any]:
        return {"timestamp_ms": self.timestamp_ms, "random_bits": self.random_bits}

    @staticmethod
    def empty() -> "NonDetInput":
        """Neutral input used by deterministic applications and unit tests."""
        return NonDetInput(timestamp_ms=0.0, random_bits=b"\x00" * 16)


class NonDeterminismResolver:
    """Primary-side proposal and backup-side sanity check of nondet inputs."""

    def __init__(self, max_clock_skew_ms: float = 10_000.0,
                 random_bits_len: int = 16) -> None:
        self.max_clock_skew_ms = max_clock_skew_ms
        self.random_bits_len = random_bits_len
        self._last_timestamp = -float("inf")

    def propose(self, now_ms: float, seed: bytes) -> NonDetInput:
        """Primary: propose inputs for the next batch.

        Timestamps are forced to be monotonically non-decreasing and the
        random bits are derived deterministically from ``seed`` so that a
        recovering primary reproduces the same proposal.
        """
        timestamp = max(now_ms, self._last_timestamp)
        self._last_timestamp = timestamp
        random_bits = hashlib.sha256(b"nondet:" + seed).digest()[: self.random_bits_len]
        return NonDetInput(timestamp_ms=timestamp, random_bits=random_bits)

    def sanity_check(self, proposal: NonDetInput, now_ms: float) -> bool:
        """Backup: accept the primary's proposal only if it is reasonable.

        A proposal is reasonable when its timestamp is within the configured
        skew of the backup's own clock and not older than a previously
        accepted proposal, and its random block has the right length.
        """
        if len(proposal.random_bits) != self.random_bits_len:
            return False
        if proposal.timestamp_ms > now_ms + self.max_clock_skew_ms:
            return False
        if proposal.timestamp_ms < self._last_timestamp - self.max_clock_skew_ms:
            return False
        return True

    def accept(self, proposal: NonDetInput) -> None:
        """Record an accepted proposal so later checks enforce monotonicity."""
        self._last_timestamp = max(self._last_timestamp, proposal.timestamp_ms)


class AbstractionLayer:
    """Execution-side deterministic mapping from nondet inputs to app values.

    The layer exposes the derivations the paper's NFS abstraction layer needs:
    per-request timestamps and fresh identifiers (file handles).  All outputs
    are deterministic functions of the agreed :class:`NonDetInput` plus a
    derivation label, so every correct execution replica derives identical
    values.
    """

    def __init__(self, nondet: Optional[NonDetInput] = None) -> None:
        self._nondet = nondet

    def bind(self, nondet: NonDetInput) -> None:
        """Install the nondeterminism inputs for the batch being executed."""
        self._nondet = nondet

    def _require(self) -> NonDetInput:
        if self._nondet is None:
            raise ProtocolError("abstraction layer used before nondet inputs were bound")
        return self._nondet

    def timestamp(self) -> float:
        """The agreed wall-clock timestamp for this batch."""
        return self._require().timestamp_ms

    def derive_bytes(self, label: str, length: int = 16) -> bytes:
        """Deterministic pseudo-random bytes for ``label``."""
        nondet = self._require()
        material = hashlib.sha256(
            b"derive:" + nondet.random_bits + label.encode("utf-8")
        ).digest()
        while len(material) < length:
            material += hashlib.sha256(material).digest()
        return material[:length]

    def derive_handle(self, label: str) -> str:
        """Deterministic opaque identifier (e.g. an NFS file handle)."""
        return self.derive_bytes(label, 12).hex()

    def derive_int(self, label: str, modulus: int) -> int:
        """Deterministic integer in ``[0, modulus)`` for ``label``."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return int.from_bytes(self.derive_bytes(label, 8), "big") % modulus
