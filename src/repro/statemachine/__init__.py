"""Replicated state machine interface and nondeterminism handling."""

from .interface import StateMachine, Operation, OperationResult
from .nondet import NonDetInput, NonDeterminismResolver, AbstractionLayer

__all__ = [
    "StateMachine",
    "Operation",
    "OperationResult",
    "NonDetInput",
    "NonDeterminismResolver",
    "AbstractionLayer",
]
