"""The deterministic state machine contract.

Section 2 of the paper requires replicated applications to behave as
deterministic state machines with ``checkpoint`` and ``restore`` operations:
given the same state and the same input, every correct replica transitions to
the same next state and produces the same reply, and a state produced by
``checkpoint`` on one correct replica can be ``restore``d on another.

Applications in :mod:`repro.apps` implement :class:`StateMachine`.
Nondeterministic applications (like NFS timestamps and file handles) wrap a
deterministic core with the :class:`~repro.statemachine.nondet.AbstractionLayer`,
which maps the oblivious nondeterminism inputs chosen by the agreement cluster
into the application-specific values it needs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .nondet import NonDetInput


@dataclass(frozen=True)
class Operation:
    """A client-visible operation submitted to the replicated service.

    ``kind`` names the operation (e.g. ``"read"``, ``"write"``, ``"null"``),
    ``args`` carries its arguments, and ``body_size``/``reply_size`` let
    benchmark applications model payload sizes without shipping real bytes.
    """

    kind: str
    args: Dict[str, Any] = field(default_factory=dict)
    body_size: int = 0
    reply_size: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "args": self.args,
            "body_size": self.body_size,
            "reply_size": self.reply_size,
        }


@dataclass(frozen=True)
class OperationResult:
    """The reply produced by executing an :class:`Operation`.

    ``value`` is the application-level result; ``size`` models the reply body
    size on the wire; ``processing_ms`` is the application compute time the
    executing node must charge to its virtual clock.
    """

    value: Any
    size: int = 0
    processing_ms: float = 0.0
    error: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "size": self.size,
            "error": self.error,
        }


class StateMachine(ABC):
    """Deterministic application state machine."""

    @abstractmethod
    def execute(self, operation: Operation, nondet: NonDetInput) -> OperationResult:
        """Apply ``operation`` and return its result.

        ``nondet`` carries the nondeterminism inputs chosen by the agreement
        cluster (a timestamp and pseudo-random bits); deterministic
        applications simply ignore it.  Implementations must be deterministic
        functions of (current state, operation, nondet).
        """

    @abstractmethod
    def checkpoint(self) -> bytes:
        """Serialize the current state into a byte string."""

    @abstractmethod
    def restore(self, data: bytes) -> None:
        """Replace the current state with one produced by :meth:`checkpoint`."""

    def state_digest(self) -> bytes:
        """Digest of the current state (used in checkpoint certificates)."""
        from ..crypto.digest import digest

        return digest(self.checkpoint())

    def reset(self) -> None:
        """Return the machine to its initial state.  Subclasses may override."""
        raise NotImplementedError(f"{type(self).__name__} does not support reset()")

    # ------------------------------------------------------------------ #
    # Partial-state handoff (dynamic shard rebalancing).
    # ------------------------------------------------------------------ #

    def extract_range(self, lo: Optional[str], hi: Optional[str]) -> bytes:
        """Remove and serialize the state of keys in ``[lo, hi)``.

        Used by ``repro.sharding`` when a rebalancing epoch cut moves a key
        range to another execution cluster: the losing replicas extract the
        range (deterministically, at the cut point in their local order) and
        hand the bytes off.  ``None`` bounds are the open ends of the key
        space.  Applications that do not partition by key may leave the
        default, which rejects rebalancing rather than corrupting state.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support range extraction"
        )

    def install_range(self, lo: Optional[str], hi: Optional[str],
                      data: bytes) -> None:
        """Replace the state of keys in ``[lo, hi)`` with ``data``.

        The inverse of :meth:`extract_range`: existing keys in the range are
        dropped first, so installing is idempotent and a stale local copy of
        a range that left and returned can never shadow the handed-off
        truth.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support range installation"
        )

    # ------------------------------------------------------------------ #
    # Multi-key sub-operations (cross-shard operations at a consistent cut).
    # ------------------------------------------------------------------ #

    def snapshot_read(self, keys) -> Dict[str, Any]:
        """Read the current values of ``keys`` without mutating state.

        Used by ``repro.sharding`` when a cross-shard operation executes at
        its marker slot: each touched execution cluster reads the keys it
        owns against the deterministic frontier state at the cut, so the
        union of the per-shard fragments is a consistent snapshot of the
        agreed global prefix.  Must be side-effect free -- the same marker
        may be re-read when a duplicate resend is served.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot reads"
        )

    def apply_writes(self, writes: Dict[str, Any]) -> None:
        """Apply ``writes`` (key -> value) atomically to local state.

        The commit half of a cross-shard write transaction: every touched
        cluster calls it with its owned subset only after the deterministic
        commit decision, so either every shard applies its slice or none
        does.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support transactional writes"
        )
