"""Node identifiers.

Every participant in the system -- clients, agreement replicas, execution
replicas, privacy-firewall filters, and the standalone unreplicated server
used as a baseline -- is identified by a :class:`NodeId`, a small immutable
value object that encodes the node's role and its index within its cluster.

Privacy-firewall filters additionally carry their row in the filter array
(row 0 is adjacent to the agreement cluster, the top row is adjacent to the
execution cluster); the index is the column within the row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Role(enum.Enum):
    """Functional role of a node in the deployment."""

    CLIENT = "client"
    AGREEMENT = "agreement"
    EXECUTION = "execution"
    FIREWALL = "firewall"
    SERVER = "server"  # unreplicated baseline server

    def short(self) -> str:
        return {
            Role.CLIENT: "C",
            Role.AGREEMENT: "A",
            Role.EXECUTION: "E",
            Role.FIREWALL: "F",
            Role.SERVER: "S",
        }[self]


@dataclass(frozen=True)
class NodeId:
    """Immutable identifier for a protocol participant.

    The ordering (role, row, index) is arbitrary but total, which lets node
    ids be used as dictionary keys and sorted deterministically -- important
    for reproducible simulations.
    """

    role: Role
    index: int
    row: Optional[int] = None

    def _sort_key(self) -> tuple:
        return (self.role.value, -1 if self.row is None else self.row, self.index)

    def __lt__(self, other: "NodeId") -> bool:
        if not isinstance(other, NodeId):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "NodeId") -> bool:
        if not isinstance(other, NodeId):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "NodeId") -> bool:
        if not isinstance(other, NodeId):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "NodeId") -> bool:
        if not isinstance(other, NodeId):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("node index must be non-negative")
        if self.role is Role.FIREWALL and self.row is None:
            raise ValueError("firewall nodes must specify a row")
        if self.role is not Role.FIREWALL and self.row is not None:
            raise ValueError("only firewall nodes carry a row")

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``A0``, ``E2``, ``F1.0``, ``C3``."""
        if self.role is Role.FIREWALL:
            return f"{self.role.short()}{self.row}.{self.index}"
        return f"{self.role.short()}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"NodeId({self.name})"


def make_node_id(role: Role, index: int, row: Optional[int] = None) -> NodeId:
    """Convenience factory mirroring the :class:`NodeId` constructor."""
    return NodeId(role=role, index=index, row=row)


def agreement_id(index: int) -> NodeId:
    """Identifier of agreement replica ``index``."""
    return NodeId(Role.AGREEMENT, index)


def execution_id(index: int) -> NodeId:
    """Identifier of execution replica ``index``."""
    return NodeId(Role.EXECUTION, index)


def client_id(index: int) -> NodeId:
    """Identifier of client ``index``."""
    return NodeId(Role.CLIENT, index)


def firewall_id(row: int, column: int) -> NodeId:
    """Identifier of the privacy-firewall filter at ``(row, column)``.

    Row 0 is the bottom row (adjacent to, and possibly co-located with, the
    agreement cluster); the highest row is adjacent to the execution cluster.
    """
    return NodeId(Role.FIREWALL, column, row=row)


def server_id(index: int = 0) -> NodeId:
    """Identifier of the unreplicated baseline server."""
    return NodeId(Role.SERVER, index)
