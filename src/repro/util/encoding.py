"""Canonical, deterministic encoding of protocol values.

Digests, MACs, and signatures must be computed over a byte string that every
correct node derives identically from the same logical message.  Python's
``repr`` is not stable enough (dict ordering, float formatting), so we provide
a small canonical encoder covering the value types that appear in protocol
messages: ``None``, booleans, integers, floats, strings, bytes, and
(recursively) tuples, lists, dictionaries, dataclass-like objects exposing
``to_wire()``, and enums.
"""

from __future__ import annotations

import enum
import struct
from typing import Any

_FLOAT_PACK = struct.Struct(">d")


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into a deterministic byte string.

    The encoding is injective over the supported value domain (a type tag
    precedes every value and variable-length items are length-prefixed), so
    two distinct logical values never encode to the same bytes.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, enum.Enum):
        out += b"e"
        _encode_into(value.__class__.__name__, out)
        _encode_into(value.value, out)
    elif isinstance(value, int):
        encoded = str(value).encode("ascii")
        out += b"i"
        out += len(encoded).to_bytes(4, "big")
        out += encoded
    elif isinstance(value, float):
        out += b"f"
        out += _FLOAT_PACK.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out += b"s"
        out += len(encoded).to_bytes(8, "big")
        out += encoded
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out += b"b"
        out += len(data).to_bytes(8, "big")
        out += data
    elif isinstance(value, (list, tuple)):
        out += b"l"
        out += len(value).to_bytes(8, "big")
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, frozenset) or isinstance(value, set):
        out += b"z"
        items = sorted(canonical_encode(item) for item in value)
        out += len(items).to_bytes(8, "big")
        for item in items:
            out += len(item).to_bytes(8, "big")
            out += item
    elif isinstance(value, dict):
        out += b"d"
        items = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in value.items()
        )
        out += len(items).to_bytes(8, "big")
        for key_bytes, value_bytes in items:
            out += len(key_bytes).to_bytes(8, "big")
            out += key_bytes
            out += len(value_bytes).to_bytes(8, "big")
            out += value_bytes
    elif hasattr(value, "to_wire"):
        out += b"w"
        _encode_into(type(value).__name__, out)
        _encode_into(value.to_wire(), out)
    else:
        raise TypeError(
            f"canonical_encode does not support values of type {type(value).__name__}"
        )


def estimate_size(value: Any) -> int:
    """Estimate the wire size of ``value`` in bytes.

    Used by the network model to charge transmission time.  The canonical
    encoding length is a good proxy for a real serialisation format.
    """
    return len(canonical_encode(value))
