"""Quorum arithmetic for the separated BFT architecture.

These helpers make the paper's replication-cost claims explicit and give the
test suite a single place to check them:

* agreement: ``3f + 1`` replicas, certificates carry ``2f + 1`` authenticators;
* execution: ``2g + 1`` replicas, replies carry ``g + 1`` authenticators;
* privacy firewall: ``(h + 1)^2`` filters arranged in ``h + 1`` rows.
"""

from __future__ import annotations

from typing import Collection, Iterable, Set, Tuple

from ..errors import ConfigurationError


def agreement_cluster_size(f: int) -> int:
    """Minimum number of agreement replicas to tolerate ``f`` Byzantine faults."""
    if f < 0:
        raise ConfigurationError("f must be non-negative")
    return 3 * f + 1


def agreement_quorum(f: int) -> int:
    """Number of agreement authenticators on a valid agreement certificate."""
    if f < 0:
        raise ConfigurationError("f must be non-negative")
    return 2 * f + 1


def agreement_prepared_quorum(f: int) -> int:
    """Number of matching PREPARE messages (besides the pre-prepare) needed."""
    return 2 * f


def execution_cluster_size(g: int) -> int:
    """Minimum number of execution replicas to tolerate ``g`` Byzantine faults."""
    if g < 0:
        raise ConfigurationError("g must be non-negative")
    return 2 * g + 1


def reply_quorum(g: int) -> int:
    """Number of matching execution authenticators on a valid reply certificate."""
    if g < 0:
        raise ConfigurationError("g must be non-negative")
    return g + 1


def coupled_reply_quorum(f: int) -> int:
    """Matching replies a BASE-style coupled system's client voter requires."""
    if f < 0:
        raise ConfigurationError("f must be non-negative")
    return f + 1


def firewall_grid_size(h: int) -> Tuple[int, int]:
    """(rows, columns) of the privacy firewall tolerating ``h`` filter faults."""
    if h < 0:
        raise ConfigurationError("h must be non-negative")
    return (h + 1, h + 1)


def max_agreement_faults(num_nodes: int) -> int:
    """Largest ``f`` an agreement cluster of ``num_nodes`` replicas tolerates."""
    if num_nodes < 1:
        raise ConfigurationError("agreement cluster needs at least one node")
    return (num_nodes - 1) // 3


def max_execution_faults(num_nodes: int) -> int:
    """Largest ``g`` an execution cluster of ``num_nodes`` replicas tolerates."""
    if num_nodes < 1:
        raise ConfigurationError("execution cluster needs at least one node")
    return (num_nodes - 1) // 2


def has_quorum(signers: Iterable[object], required: int,
               universe: Collection[object] | None = None) -> bool:
    """Return True iff ``signers`` contains at least ``required`` distinct
    members, all of which belong to ``universe`` when a universe is given."""
    distinct: Set[object] = set(signers)
    if universe is not None:
        distinct &= set(universe)
    return len(distinct) >= required
