"""Small shared utilities: node identifiers, canonical encoding, quorum math."""

from .ids import NodeId, Role, make_node_id
from .encoding import canonical_encode, estimate_size
from .quorum import (
    agreement_cluster_size,
    agreement_quorum,
    execution_cluster_size,
    reply_quorum,
    firewall_grid_size,
    has_quorum,
)

__all__ = [
    "NodeId",
    "Role",
    "make_node_id",
    "canonical_encode",
    "estimate_size",
    "agreement_cluster_size",
    "agreement_quorum",
    "execution_cluster_size",
    "reply_quorum",
    "firewall_grid_size",
    "has_quorum",
]
