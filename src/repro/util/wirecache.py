"""Process-wide memoisation of message wire forms.

Every hot path in the simulator re-derives the same two facts about a
message over and over: its canonical wire size (charged by the network for
every ``send``) and the SHA-256 digest of its wire form (recomputed by every
verification that touches the payload).  Both are pure functions of the
message's canonical encoding, and protocol messages are immutable once they
have been sent -- certificates are only mutated inside *collectors* before
their first send -- so each logical message needs to be encoded exactly once
per process.

The cache is keyed by object identity (``id``) and holds a strong reference
to the key object, which makes identity keying sound: an id cannot be reused
while the entry is alive, and eviction (FIFO, bounded capacity) merely costs
a recomputation.  Entries also carry the set of node names that have already
been *charged* virtual hashing time for this message, so the cost model
stays per-node honest: the first time a node digests a message it pays
``digest_ms(wire_size)``; later touches by the same node are free (that is
the fast path the benchmarks measure), while a *different* node touching the
same object still pays for its own first hash.

``configure(enabled=False)`` restores the uncached behaviour -- the
benchmark harness uses it to measure the before/after delta.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Optional, Set

from .encoding import canonical_encode


class WireCacheEntry:
    """Memoised wire facts for one message object."""

    __slots__ = ("obj", "size", "digest", "charged")

    def __init__(self, obj: Any) -> None:
        self.obj = obj
        #: canonical encoding length of ``obj.to_wire()`` (without padding)
        self.size: Optional[int] = None
        #: SHA-256 digest of the canonical encoding of ``obj.to_wire()``
        self.digest: Optional[bytes] = None
        #: names of nodes already charged virtual hashing time for this message
        self.charged: Set[str] = set()

    def materialise(self) -> None:
        """Compute size and digest in a single canonical encoding pass."""
        data = canonical_encode(self.obj.to_wire())
        self.size = len(data)
        self.digest = hashlib.sha256(data).digest()


class WireCache:
    """Bounded identity-keyed cache of :class:`WireCacheEntry` objects."""

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[int, WireCacheEntry]" = OrderedDict()

    def entry_for(self, obj: Any) -> Optional[WireCacheEntry]:
        """Return the (possibly fresh) entry for ``obj``, or None if disabled."""
        if not self.enabled:
            return None
        key = id(obj)
        entry = self._entries.get(key)
        if entry is not None and entry.obj is obj:
            self.hits += 1
            return entry
        self.misses += 1
        entry = WireCacheEntry(obj)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        """Drop every entry and zero the counters (used between benchmarks)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> dict:
        """Hit/miss/occupancy counters for the metrics registry's probes."""
        total = self.hits + self.misses
        return {
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }

    def configure(self, enabled: Optional[bool] = None,
                  capacity: Optional[int] = None) -> None:
        """Adjust the process-wide cache; disabling also drops all entries."""
        if capacity is not None:
            self.capacity = capacity
        if enabled is not None:
            self.enabled = enabled
            if not enabled:
                self._entries.clear()


#: the process-wide instance used by messages and crypto providers
WIRE_CACHE = WireCache()
