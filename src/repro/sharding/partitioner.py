"""Deterministic key partitioners and epoch-versioned partition maps.

Sharded execution only works if *every* correct participant -- each agreement
node's shard router, each execution replica, and each client -- maps a given
key to the same shard.  Partitioners are therefore pure functions of the key
*and the partition-map epoch*: the hash partitioner uses a keyed-nothing
BLAKE2b digest (Python's built-in ``hash`` is randomised per process and must
never be used here), and the key-range partitioner looks the key up in an
immutable :class:`PartitionMap` -- sorted boundaries splitting the key space
into contiguous ranges, plus an ``owners`` tuple assigning each range to one
of the fixed execution clusters.

**Epochs.**  Dynamic rebalancing (``repro.sharding.rebalance``) evolves the
map through *epochs*: a map change (split a range, merge two adjacent ones,
move a boundary) agreed through the ordinary agreement log produces epoch
``e + 1`` from epoch ``e``.  The append-only :class:`PartitionMapRegistry`
keeps every map ever agreed, so a participant can answer "who owned key k at
epoch e" for any epoch it has learned -- which is exactly what the
deterministic cut semantics need: batches at or below the map-change batch in
the agreed order route by epoch ``e``, batches above it by ``e + 1``.

Keyless operations (``key is None``) fall through to shard 0 so that every
operation has a well-defined owner (rebalancing never moves the keyless
default: only keyed ranges split or merge).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import ShardingConfig
from ..errors import ConfigurationError

#: shard that owns operations without an extractable key
DEFAULT_SHARD = 0


@dataclass(frozen=True)
class MovedRange:
    """One key range whose owner changed between two partition-map epochs.

    ``lo`` is inclusive, ``hi`` exclusive; ``None`` bounds are the open ends
    of the key space.  The range's application state must be handed off from
    ``old_owner``'s execution cluster to ``new_owner``'s at the epoch cut.
    """

    lo: Optional[str]
    hi: Optional[str]
    old_owner: int
    new_owner: int


@dataclass(frozen=True)
class PartitionMap:
    """One epoch's immutable key-range -> execution-cluster assignment.

    ``boundaries`` are sorted split keys dividing the key space into
    ``len(boundaries) + 1`` contiguous ranges; ``owners[i]`` is the execution
    cluster owning range ``i``.  Unlike the construction-time partitioner,
    a cluster may own several ranges (after a split moved part of a hot
    range to it) or none (after merges drained it); the *number of clusters*
    is fixed for the lifetime of the deployment -- rebalancing moves key
    ownership between clusters, it never adds or removes replicas.
    """

    epoch: int
    boundaries: Tuple[str, ...]
    owners: Tuple[int, ...]
    num_clusters: int

    def __post_init__(self) -> None:
        if len(self.owners) != len(self.boundaries) + 1:
            raise ConfigurationError(
                "a partition map needs exactly one owner per range "
                f"({len(self.boundaries) + 1} ranges, {len(self.owners)} owners)"
            )
        if any(left >= right for left, right in
               zip(self.boundaries, self.boundaries[1:])):
            raise ConfigurationError(
                "partition-map boundaries must be strictly increasing"
            )
        if any(not 0 <= owner < self.num_clusters for owner in self.owners):
            raise ConfigurationError(
                f"range owners must be clusters in [0, {self.num_clusters})"
            )

    # ------------------------------------------------------------------ #
    # Lookup.
    # ------------------------------------------------------------------ #

    @property
    def num_ranges(self) -> int:
        return len(self.owners)

    def range_of_key(self, key: str) -> int:
        """Index of the range containing ``key``."""
        return bisect_right(self.boundaries, key)

    def owner_of_key(self, key: str) -> int:
        return self.owners[self.range_of_key(key)]

    def range_bounds(self, index: int) -> Tuple[Optional[str], Optional[str]]:
        """``[lo, hi)`` bounds of range ``index`` (None = open end)."""
        lo = self.boundaries[index - 1] if index > 0 else None
        hi = self.boundaries[index] if index < len(self.boundaries) else None
        return lo, hi

    def ranges_of_owner(self, owner: int) -> List[int]:
        return [i for i, o in enumerate(self.owners) if o == owner]

    def describe(self) -> str:
        """Human-readable ``[lo, hi) -> owner`` listing (examples, demos)."""
        parts = []
        for index in range(self.num_ranges):
            lo, hi = self.range_bounds(index)
            parts.append(f"[{lo if lo is not None else '-inf'}, "
                         f"{hi if hi is not None else '+inf'}) -> s{self.owners[index]}")
        return "; ".join(parts)

    # ------------------------------------------------------------------ #
    # Map evolution (each returns a *new* map with ``epoch + 1``).
    # ------------------------------------------------------------------ #

    def split(self, at: str, new_owner: int) -> "PartitionMap":
        """Insert boundary ``at``: the upper half of the range containing it
        moves to ``new_owner``; the lower half keeps the old owner."""
        if at in self.boundaries:
            raise ConfigurationError(f"boundary {at!r} already exists")
        index = self.range_of_key(at)
        lo, _ = self.range_bounds(index)
        if lo is not None and at <= lo:
            raise ConfigurationError(f"split key {at!r} not inside its range")
        boundaries = list(self.boundaries)
        owners = list(self.owners)
        boundaries.insert(index, at)
        owners.insert(index + 1, new_owner)
        return PartitionMap(epoch=self.epoch + 1, boundaries=tuple(boundaries),
                            owners=tuple(owners), num_clusters=self.num_clusters)

    def merge(self, at: str) -> "PartitionMap":
        """Remove boundary ``at``: the two adjacent ranges merge and the
        combined range keeps the *left* range's owner (the right range's
        state is handed off to it)."""
        if at not in self.boundaries:
            raise ConfigurationError(f"no boundary {at!r} to merge at")
        index = self.boundaries.index(at)
        boundaries = list(self.boundaries)
        owners = list(self.owners)
        del boundaries[index]
        del owners[index + 1]  # left owner absorbs the combined range
        return PartitionMap(epoch=self.epoch + 1, boundaries=tuple(boundaries),
                            owners=tuple(owners), num_clusters=self.num_clusters)

    def move_boundary(self, old: str, new: str) -> "PartitionMap":
        """Shift boundary ``old`` to ``new`` (must stay strictly between its
        neighbours): the keys between the two positions change owner."""
        if old not in self.boundaries:
            raise ConfigurationError(f"no boundary {old!r} to move")
        if new in self.boundaries:
            raise ConfigurationError(f"boundary {new!r} already exists")
        index = self.boundaries.index(old)
        left = self.boundaries[index - 1] if index > 0 else None
        right = self.boundaries[index + 1] if index + 1 < len(self.boundaries) else None
        if (left is not None and new <= left) or (right is not None and new >= right):
            raise ConfigurationError(
                f"moved boundary {new!r} must stay between its neighbours"
            )
        boundaries = list(self.boundaries)
        boundaries[index] = new
        return PartitionMap(epoch=self.epoch + 1, boundaries=tuple(boundaries),
                            owners=self.owners, num_clusters=self.num_clusters)

    def moved_ranges(self, newer: "PartitionMap") -> List[MovedRange]:
        """Maximal key ranges whose owner differs between this map and
        ``newer`` -- the state that must be handed off at the epoch cut.

        Walks the union of both boundary sets, so any single split / merge /
        move (and in fact any pair of maps over the same clusters) yields
        the exact moved intervals.
        """
        cuts = sorted(set(self.boundaries) | set(newer.boundaries))
        edges: List[Optional[str]] = [None] + list(cuts) + [None]
        moved: List[MovedRange] = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            probe = lo if lo is not None else ""
            old_owner = self.owners[bisect_right(self.boundaries, probe)]
            new_owner = newer.owners[bisect_right(newer.boundaries, probe)]
            if old_owner == new_owner:
                continue
            if moved and moved[-1].hi == lo and moved[-1].old_owner == old_owner \
                    and moved[-1].new_owner == new_owner:
                moved[-1] = MovedRange(lo=moved[-1].lo, hi=hi,
                                       old_owner=old_owner, new_owner=new_owner)
            else:
                moved.append(MovedRange(lo=lo, hi=hi, old_owner=old_owner,
                                        new_owner=new_owner))
        return moved


def key_in_range(key: str, lo: Optional[str], hi: Optional[str]) -> bool:
    """Whether ``key`` lies in ``[lo, hi)`` (None = open end)."""
    if lo is not None and key < lo:
        return False
    if hi is not None and key >= hi:
        return False
    return True


class PartitionMapRegistry:
    """Append-only history of agreed partition maps, indexed by epoch.

    The registry contents are a pure function of the agreed config-operation
    history, so every correct node derives the same sequence of maps;
    appends are idempotent by epoch (a map already derived by another role
    on the same simulated deployment is simply confirmed, never replaced).
    """

    def __init__(self, initial: PartitionMap) -> None:
        if initial.epoch != 0:
            raise ConfigurationError("the initial partition map must be epoch 0")
        self._maps: List[PartitionMap] = [initial]

    @property
    def latest_epoch(self) -> int:
        return len(self._maps) - 1

    @property
    def latest(self) -> PartitionMap:
        return self._maps[-1]

    def map_for(self, epoch: int) -> PartitionMap:
        if not 0 <= epoch < len(self._maps):
            raise KeyError(f"no partition map for epoch {epoch}")
        return self._maps[epoch]

    def has_epoch(self, epoch: int) -> bool:
        return 0 <= epoch < len(self._maps)

    def append(self, new_map: PartitionMap) -> None:
        """Record the map for ``latest_epoch + 1`` (idempotent by epoch)."""
        if new_map.epoch <= self.latest_epoch:
            return  # already derived by another role of this deployment
        if new_map.epoch != self.latest_epoch + 1:
            raise ConfigurationError(
                f"partition maps must be appended in epoch order (have "
                f"{self.latest_epoch}, got {new_map.epoch})"
            )
        self._maps.append(new_map)


class Partitioner(ABC):
    """Maps routing keys to shard indices in ``[0, num_shards)``."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("a partitioner needs at least one shard")
        self.num_shards = num_shards

    def shard_of_key(self, key: Optional[str],
                     epoch: Optional[int] = None) -> int:
        """Shard owning ``key`` at partition-map ``epoch`` (default: the
        latest known map; keyless operations go to shard 0)."""
        if key is None:
            return DEFAULT_SHARD
        return self._shard_of(key, epoch)

    @property
    def latest_epoch(self) -> int:
        """Highest partition-map epoch this partitioner knows (0 when the
        partitioning is static)."""
        return 0

    @abstractmethod
    def _shard_of(self, key: str, epoch: Optional[int]) -> int:
        """Shard owning a non-None key at ``epoch``."""


class HashPartitioner(Partitioner):
    """Stable-hash partitioning: ``blake2b(key) mod num_shards``.

    BLAKE2b is deterministic across processes and machines, so two replicas
    built from the same configuration always agree on the owner of a key --
    the property the router's misroute-rejection check relies on.  Hash
    partitioning has no boundaries, so it never rebalances: every epoch maps
    keys identically.
    """

    def _shard_of(self, key: str, epoch: Optional[int]) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards


class KeyRangePartitioner(Partitioner):
    """Lexicographic key-range partitioning over an epoch-versioned map.

    Constructed from ``num_shards - 1`` sorted split keys (the epoch-0 map
    assigns range ``i`` to cluster ``i``, reproducing the original static
    behaviour); rebalancing appends later epochs to the shared
    :class:`PartitionMapRegistry`, and lookups take the epoch whose map
    should answer -- per-node epoch cursors live with the queue, execution,
    and client roles, never here.
    """

    def __init__(self, boundaries: Sequence[str]) -> None:
        num_shards = len(boundaries) + 1
        super().__init__(num_shards)
        initial = PartitionMap(epoch=0, boundaries=tuple(boundaries),
                               owners=tuple(range(num_shards)),
                               num_clusters=num_shards)
        self.registry = PartitionMapRegistry(initial)

    @property
    def boundaries(self) -> Tuple[str, ...]:
        """The *latest* map's boundaries (kept for introspection)."""
        return self.registry.latest.boundaries

    @property
    def latest_epoch(self) -> int:
        return self.registry.latest_epoch

    def map_for(self, epoch: int) -> PartitionMap:
        return self.registry.map_for(epoch)

    def _shard_of(self, key: str, epoch: Optional[int]) -> int:
        pmap = (self.registry.latest if epoch is None
                else self.registry.map_for(epoch))
        return pmap.owner_of_key(key)


def make_partitioner(sharding: ShardingConfig) -> Partitioner:
    """Build the partitioner described by a :class:`ShardingConfig`."""
    sharding.validate()
    if sharding.strategy == "range":
        return KeyRangePartitioner(tuple(sharding.range_boundaries))
    return HashPartitioner(sharding.num_shards)
