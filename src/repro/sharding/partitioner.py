"""Deterministic key partitioners.

Sharded execution only works if *every* correct participant -- each agreement
node's shard router, each execution replica, and each client -- maps a given
key to the same shard.  Partitioners are therefore pure functions of the key:
the hash partitioner uses a keyed-nothing BLAKE2b digest (Python's built-in
``hash`` is randomised per process and must never be used here), and the
key-range partitioner uses lexicographic comparison against a fixed, sorted
boundary list.

Keyless operations (``key is None``) fall through to shard 0 so that every
operation has a well-defined owner.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Optional, Sequence, Tuple

from ..config import ShardingConfig
from ..errors import ConfigurationError

#: shard that owns operations without an extractable key
DEFAULT_SHARD = 0


class Partitioner(ABC):
    """Maps routing keys to shard indices in ``[0, num_shards)``."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("a partitioner needs at least one shard")
        self.num_shards = num_shards

    def shard_of_key(self, key: Optional[str]) -> int:
        """Shard owning ``key`` (keyless operations go to shard 0)."""
        if key is None:
            return DEFAULT_SHARD
        return self._shard_of(key)

    @abstractmethod
    def _shard_of(self, key: str) -> int:
        """Shard owning a non-None key."""


class HashPartitioner(Partitioner):
    """Stable-hash partitioning: ``blake2b(key) mod num_shards``.

    BLAKE2b is deterministic across processes and machines, so two replicas
    built from the same configuration always agree on the owner of a key --
    the property the router's misroute-rejection check relies on.
    """

    def _shard_of(self, key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards


class KeyRangePartitioner(Partitioner):
    """Lexicographic key-range partitioning.

    ``boundaries`` holds ``num_shards - 1`` sorted split keys: shard 0 owns
    keys below ``boundaries[0]``, shard ``i`` owns ``[boundaries[i-1],
    boundaries[i])``, and the last shard owns everything from
    ``boundaries[-1]`` up.
    """

    def __init__(self, boundaries: Sequence[str]) -> None:
        super().__init__(len(boundaries) + 1)
        ordered: Tuple[str, ...] = tuple(boundaries)
        if any(left >= right for left, right in zip(ordered, ordered[1:])):
            raise ConfigurationError(
                "key-range boundaries must be strictly increasing"
            )
        self.boundaries = ordered

    def _shard_of(self, key: str) -> int:
        return bisect_right(self.boundaries, key)


def make_partitioner(sharding: ShardingConfig) -> Partitioner:
    """Build the partitioner described by a :class:`ShardingConfig`."""
    sharding.validate()
    if sharding.strategy == "range":
        return KeyRangePartitioner(tuple(sharding.range_boundaries))
    return HashPartitioner(sharding.num_shards)
