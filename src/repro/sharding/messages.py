"""Messages of the sharded execution subsystem.

:class:`ShardedBatch` is what flows from the shard-routing message queues to
one execution cluster: the *complete* globally-ordered batch (so the shard
can verify the untampered agreement certificate) plus the routing header
``(shard, shard_seq)``.  ``shard_seq`` is the shard's own contiguous sequence
number, assigned deterministically by every correct agreement node as it
delivers batches in global order -- the shard's execution replicas order,
checkpoint, and state-transfer entirely in this local sequence space.

:class:`ShardLocalBatch` is the execution-side view of a routed batch: the
same interface as :class:`~repro.messages.agreement.OrderedBatch` but with
``seq`` bound to the shard-local sequence number and ``request_certificates``
restricted to the requests this shard owns (recomputed locally, never
trusted from the wire).  Because it quacks like an ``OrderedBatch``, the
entire unsharded execution pipeline -- pending ordering, gap fetch,
checkpointing, garbage collection, state transfer -- runs unmodified on
shard-local sequence numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..crypto.certificate import Certificate
from ..messages.agreement import AgreementCertBody, OrderedBatch
from ..net.message import Message
from ..statemachine.nondet import NonDetInput


@dataclass(frozen=True)
class ShardedBatch(Message):
    """Routing envelope: one globally-ordered batch addressed to one shard."""

    shard: int
    shard_seq: int
    batch: OrderedBatch

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "shard_seq": self.shard_seq,
            "batch": self.batch.to_wire(),
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return self.batch.padding_bytes


@dataclass(frozen=True)
class ShardLocalBatch(Message):
    """A shard's local view of a routed batch.

    ``seq`` is the shard-local sequence number; ``global_seq`` is the
    sequence number the agreement certificate covers.  ``request_certificates``
    holds only the requests owned by ``shard``;
    ``full_request_certificates`` holds the whole batch, which is what the
    agreement certificate's batch digest binds.
    """

    shard: int
    seq: int
    global_seq: int
    view: int
    request_certificates: Tuple[Certificate, ...]
    full_request_certificates: Tuple[Certificate, ...]
    agreement_certificate: Certificate
    nondet: NonDetInput

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "n": self.seq,
            "gn": self.global_seq,
            "v": self.view,
            "requests": [cert.to_wire() for cert in self.full_request_certificates],
            "agreement": self.agreement_certificate.to_wire(),
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return sum(
            getattr(cert.payload, "padding_bytes", 0)
            for cert in self.full_request_certificates
        )

    @property
    def cert_body(self) -> AgreementCertBody:
        return self.agreement_certificate.payload

    def to_sharded_batch(self) -> ShardedBatch:
        """Rebuild the routing envelope (peer fetches re-vote the binding)."""
        return ShardedBatch(
            shard=self.shard, shard_seq=self.seq,
            batch=OrderedBatch(seq=self.global_seq, view=self.view,
                               request_certificates=self.full_request_certificates,
                               agreement_certificate=self.agreement_certificate,
                               nondet=self.nondet),
        )
