"""Messages of the sharded execution subsystem.

:class:`ShardedBatch` is what flows from the shard-routing message queues to
one execution cluster: the *complete* globally-ordered batch (so the shard
can verify the untampered agreement certificate) plus the routing header
``(shard, shard_seq, epoch)``.  ``shard_seq`` is the shard's own contiguous
sequence number, assigned deterministically by every correct agreement node
as it delivers batches in global order -- the shard's execution replicas
order, checkpoint, and state-transfer entirely in this local sequence space.
``epoch`` is the partition-map epoch the batch was routed under; it is part
of the ``f + 1``-vouched route binding, so a single Byzantine agreement node
can no more relabel a batch's epoch than its slot.

:class:`ShardLocalBatch` is the execution-side view of a routed batch: the
same interface as :class:`~repro.messages.agreement.OrderedBatch` but with
``seq`` bound to the shard-local sequence number and ``request_certificates``
restricted to the requests this shard owns (recomputed locally, never
trusted from the wire).  Because it quacks like an ``OrderedBatch``, the
entire unsharded execution pipeline -- pending ordering, gap fetch,
checkpointing, garbage collection, state transfer -- runs unmodified on
shard-local sequence numbers.

:class:`MapChange` is the rebalancing config operation: the primary places
it in an ordinary agreed batch, and its position in the global order *is*
the epoch cut.  :class:`RangeHandoff` / :class:`RangeFetch` implement the
live state handoff of a moved key range between execution clusters,
mirroring the checkpoint-share pattern: ``g + 1`` matching handoff shares
from the source cluster certify the moved state.

**Cross-shard operations.**  A multi-shard operation (snapshot read, write
transaction) is ordered as a single-certificate *marker* batch -- reusing
the config-operation ordering discipline, but the certificate is the
client's own request -- and its sequence number is a consistent cut.  The
messages here carry the execution side of that protocol:
:class:`SubReplyBody` is one shard's certified fragment of the result
(``g + 1`` matching authenticators from that shard's replicas make it a
sub-certificate), :class:`CrossShardSubReply` transports one replica's
partial towards the touched clusters, :class:`CrossShardVote` /
:class:`CrossShardVoteFetch` exchange read-set observations so every
touched cluster reaches the same commit/abort decision for a transaction,
and :class:`CrossShardReply` is the collator cluster's assembled reply --
the per-shard sub-certificates it carries are what the client actually
trusts, so an equivocating collator can misreport nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..crypto.certificate import Authenticator, Certificate
from ..messages.agreement import AgreementCertBody, ConfigOperation, OrderedBatch
from ..messages.request import ClientRequest, EncryptedBody
from ..net.message import Message
from ..statemachine.nondet import NonDetInput
from ..util.ids import NodeId

#: MapChange.kind values
MAP_CHANGE_KINDS = ("split", "merge", "move")


@dataclass(frozen=True)
class MapChange(ConfigOperation):
    """A partition-map config operation ordered through the agreement log.

    ``parent_epoch`` names the map the change applies to; applying it
    produces the map of ``parent_epoch + 1``.  Validity is judged *at the
    cut* (when the batch carrying the change is released in global order)
    against the releasing node's current epoch: a change racing a concurrent
    cut (``parent_epoch`` no longer current) is a deterministic no-op on
    every correct node, so a stale proposal can never fork the map history.

    * ``split``: insert boundary ``key``; the upper half of the range
      containing it moves to cluster ``owner``.
    * ``merge``: remove boundary ``key``; the right range merges into the
      left range's owner.
    * ``move``: shift boundary ``key`` to ``to_key``.
    """

    kind: str
    parent_epoch: int
    key: str
    to_key: Optional[str] = None
    owner: Optional[int] = None

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "map-change": self.kind,
            "parent_epoch": self.parent_epoch,
            "key": self.key,
            "to_key": self.to_key,
            "owner": self.owner,
        }

    def well_formed(self, num_clusters: int) -> bool:
        """Structural sanity (semantic validity is judged at the cut)."""
        if self.kind not in MAP_CHANGE_KINDS or self.parent_epoch < 0:
            return False
        if self.kind == "split":
            return (self.owner is not None
                    and 0 <= self.owner < num_clusters)
        if self.kind == "move":
            return self.to_key is not None and self.to_key != self.key
        return True


def map_change_of(certificates: Tuple[Certificate, ...]) -> Optional[MapChange]:
    """The map change carried by a batch, if it is a map-change batch.

    A map-change batch contains exactly one certificate whose payload is a
    :class:`MapChange`; anything else (including a change smuggled into a
    mixed batch) is not a config operation.
    """
    if len(certificates) == 1 and isinstance(certificates[0].payload, MapChange):
        return certificates[0].payload
    return None


def config_op_of(
        certificates: Tuple[Certificate, ...]) -> Optional[ConfigOperation]:
    """The config operation carried by a batch, if it is a config batch.

    The generic form of :func:`map_change_of`: exactly one certificate
    whose payload is *any* :class:`ConfigOperation` subclass (a partition
    :class:`MapChange`, a multi-log ``LogMapChange``, ...).  Execution
    nodes use this to treat every config marker uniformly -- no owned
    requests, an empty-batch reply -- while the routing layer branches on
    the concrete type.
    """
    if (len(certificates) == 1
            and isinstance(certificates[0].payload, ConfigOperation)):
        return certificates[0].payload
    return None


def cross_shard_request_of(
        certificates: Tuple[Certificate, ...]) -> Optional[ClientRequest]:
    """The client request of a *candidate* cross-shard marker batch.

    Structural test only: a marker batch carries exactly one certificate
    whose payload is a plain (unencrypted) :class:`ClientRequest` -- the
    same single-certificate shape as a config operation, except the
    certificate is the client's own.  Whether the request's keys actually
    span shards is judged by the caller with its router at the governing
    epoch; a multi-key operation whose keys all live on one shard routes
    like any other request.
    """
    if len(certificates) != 1:
        return None
    request = certificates[0].payload
    if not isinstance(request, ClientRequest):
        return None
    if isinstance(request.operation, EncryptedBody):
        return None
    return request


@dataclass(frozen=True)
class ShardedBatch(Message):
    """Routing envelope: one globally-ordered batch addressed to one shard."""

    shard: int
    shard_seq: int
    batch: OrderedBatch
    #: partition-map epoch the batch was routed under (part of the vouched
    #: route binding; map-change markers carry the epoch they *close*)
    epoch: int = 0
    #: agreement log that ordered the batch (part of the vouched route
    #: binding under multi-log ordering; None in single-log deployments,
    #: where the field stays off the wire)
    log: Optional[int] = None

    def payload_fields(self) -> Dict[str, Any]:
        fields = {
            "shard": self.shard,
            "shard_seq": self.shard_seq,
            "epoch": self.epoch,
            "batch": self.batch.to_wire(),
        }
        if self.log is not None:
            fields["log"] = self.log
        return fields

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return self.batch.padding_bytes


@dataclass(frozen=True)
class ShardLocalBatch(Message):
    """A shard's local view of a routed batch.

    ``seq`` is the shard-local sequence number; ``global_seq`` is the
    sequence number the agreement certificate covers.  ``request_certificates``
    holds only the requests owned by ``shard`` at ``epoch``;
    ``full_request_certificates`` holds the whole batch, which is what the
    agreement certificate's batch digest binds.
    """

    shard: int
    seq: int
    global_seq: int
    view: int
    request_certificates: Tuple[Certificate, ...]
    full_request_certificates: Tuple[Certificate, ...]
    agreement_certificate: Certificate
    nondet: NonDetInput
    epoch: int = 0
    #: agreement log the batch arrived from (None in single-log deployments)
    log: Optional[int] = None

    def payload_fields(self) -> Dict[str, Any]:
        fields = {
            "shard": self.shard,
            "n": self.seq,
            "gn": self.global_seq,
            "v": self.view,
            "epoch": self.epoch,
            "requests": [cert.to_wire() for cert in self.full_request_certificates],
            "agreement": self.agreement_certificate.to_wire(),
        }
        if self.log is not None:
            fields["log"] = self.log
        return fields

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return sum(
            getattr(cert.payload, "padding_bytes", 0)
            for cert in self.full_request_certificates
        )

    @property
    def cert_body(self) -> AgreementCertBody:
        return self.agreement_certificate.payload

    def to_sharded_batch(self) -> ShardedBatch:
        """Rebuild the routing envelope (peer fetches re-vote the binding)."""
        return ShardedBatch(
            shard=self.shard, shard_seq=self.seq, epoch=self.epoch,
            log=self.log,
            batch=OrderedBatch(seq=self.global_seq, view=self.view,
                               request_certificates=self.full_request_certificates,
                               agreement_certificate=self.agreement_certificate,
                               nondet=self.nondet),
        )


def handoff_payload(epoch: int, lo: Optional[str], hi: Optional[str],
                    source_shard: int, target_shard: int,
                    state_digest: bytes) -> Dict[str, Any]:
    """The canonical payload a range-handoff authenticator covers.

    Like :func:`repro.messages.checkpoint.checkpoint_payload`, it omits the
    sender's identity so every source replica's authenticator covers
    identical bytes and ``g + 1`` matching shares certify the moved state.
    """
    return {
        "range-handoff": epoch,
        "lo": lo,
        "hi": hi,
        "from": source_shard,
        "to": target_shard,
        "digest": state_digest,
    }


@dataclass(frozen=True)
class RangeHandoff(Message):
    """One source replica's share of a moved key range's state.

    Sent by each replica of the losing cluster, at its epoch cut, to every
    replica of the gaining cluster.  ``entries`` is the serialized range
    state (extracted exactly after executing the cut marker), ``reply_table``
    the source cluster's client-dedup table (merged timestamp-monotonically
    at the target, so a client request executed pre-cut is never re-executed
    post-cut), and ``authenticator`` covers :func:`handoff_payload` so the
    target installs only state that ``g + 1`` distinct source replicas vouch
    for.
    """

    epoch: int
    source_shard: int
    target_shard: int
    lo: Optional[str]
    hi: Optional[str]
    entries: bytes
    reply_table: bytes
    state_digest: bytes
    replica: NodeId
    authenticator: Optional["Authenticator"] = None

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "from": self.source_shard,
            "to": self.target_shard,
            "lo": self.lo,
            "hi": self.hi,
            "d": self.state_digest,
            "i": self.replica.name,
        }

    @property
    def padding_bytes(self) -> int:  # type: ignore[override]
        return len(self.entries) + len(self.reply_table)


@dataclass(frozen=True, slots=True)
class SubReplyBody(Message):
    """One shard's fragment of a cross-shard operation's result.

    Produced identically by every correct replica of ``shard`` when the
    marker executes at its slot in the shard-local order, so ``g + 1``
    matching authenticators certify the fragment.  The body is
    sender-agnostic (like checkpoint and handoff payloads): all of a
    shard's replicas authenticate the same bytes.

    ``op_seq`` is the agreement sequence number of the marker -- the
    consistent cut the fragment was read at; ``status`` is ``"ok"``
    (snapshot read), ``"committed"`` / ``"aborted"`` (transaction), or
    ``"epoch-retry"`` (the operation's pinned epoch went stale under a
    rebalance cut; ``epoch`` then carries the epoch the client should
    retry on).  ``values`` holds the shard's owned read results.
    """

    client: NodeId
    timestamp: int
    shard: int
    epoch: int
    view: int
    op_seq: int
    status: str
    values: Dict[str, Any]
    #: agreement log that ordered the marker at this shard's feed, judged
    #: when the fragment was produced (None in single-log deployments).
    #: ``op_seq`` lives in this log's sequence space; carrying the log in
    #: the certified body lets verifiers group fragments by the map that
    #: was actually in force at execution, not the map they see later.
    log: Optional[int] = None

    def payload_fields(self) -> Dict[str, Any]:
        fields = {
            "xs-reply": self.status,
            "c": self.client.name,
            "t": self.timestamp,
            "shard": self.shard,
            "epoch": self.epoch,
            "v": self.view,
            "n": self.op_seq,
            "values": {key: self.values[key] for key in sorted(self.values)},
        }
        if self.log is not None:
            fields["log"] = self.log
        return fields


def sub_reply_rounds_consistent(bodies, log_of_shard=None) -> bool:
    """Whether a set of :class:`SubReplyBody` fragments form one answer.

    Every fragment of a cross-shard operation must report the same
    ``status`` and ``epoch``.  With a single agreement log the marker has
    one global sequence number, so ``op_seq`` must match everywhere too.
    Under multi-log ordering each log assigns the marker its *own*
    sequence number, so ``op_seq`` is only comparable within a log group
    and the check relaxes to per-group equality.  Fragments group by the
    certified ``log`` field they carry -- the log whose feed actually
    delivered the marker to that shard, judged at execution -- so a
    log-map change racing the marker cannot mis-group a shard that
    legitimately executed under the old assignment (re-deriving the group
    from the *current* map would wedge such an answer forever: cached
    fragments never change).  ``log_of_shard`` (shard -> log at the
    caller's current log epoch) remains the fallback for fragments from
    peers that predate the stamp.
    """
    bodies = list(bodies)
    if not bodies:
        return True
    first = bodies[0]
    if any(body.status != first.status or body.epoch != first.epoch
           for body in bodies):
        return False
    if log_of_shard is None:
        return all(body.op_seq == first.op_seq for body in bodies)
    per_log: Dict[int, int] = {}
    for body in bodies:
        log = body.log if body.log is not None else log_of_shard(body.shard)
        if per_log.setdefault(log, body.op_seq) != body.op_seq:
            return False
    return True


@dataclass(frozen=True)
class CrossShardSubReply(Message):
    """One replica's partial sub-certificate over a :class:`SubReplyBody`.

    Multicast to every touched cluster's replicas (each of which assembles
    ``g + 1`` matching partials per shard into a full sub-certificate) so
    that any touched cluster can stand in for a crashed collator when the
    client retransmits.
    """

    body: SubReplyBody
    certificate: Certificate
    sender: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "body": self.body.to_wire(),
            "certificate": self.certificate.to_wire(),
            "sender": self.sender.name,
        }


def vote_payload(client: NodeId, timestamp: int, shard: int, epoch: int,
                 observed: Dict[str, Any]) -> Dict[str, Any]:
    """The canonical payload a cross-shard vote authenticator covers.

    Sender-agnostic, so ``g + 1`` matching votes from one shard's replicas
    certify that shard's read-set observations at the cut.
    """
    return {
        "xs-vote": shard,
        "c": client.name,
        "t": timestamp,
        "epoch": epoch,
        "observed": {key: observed[key] for key in sorted(observed)},
    }


@dataclass(frozen=True)
class CrossShardVote(Message):
    """One replica's read-set observations for a cross-shard transaction.

    Each touched cluster observes, at its own marker slot, the current
    values of the transaction's read-set keys it owns, and multicasts them
    to the other touched clusters.  A receiving replica accepts a shard's
    observations only with ``g + 1`` matching votes from that shard's
    replicas; once every peer shard's observations are certified, the
    commit decision (``observed == expected`` for every read key) is a pure
    function of certified data -- identical on every correct replica of
    every touched shard, which is what makes cross-shard aborts
    deterministic.
    """

    client: NodeId
    timestamp: int
    shard: int
    epoch: int
    observed: Dict[str, Any]
    replica: NodeId
    authenticator: Optional["Authenticator"] = None

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "xs-vote": self.shard,
            "c": self.client.name,
            "t": self.timestamp,
            "epoch": self.epoch,
            "observed": {key: self.observed[key]
                         for key in sorted(self.observed)},
            "i": self.replica.name,
        }


@dataclass(frozen=True)
class CrossShardVoteFetch(Message):
    """Request to re-send a cross-shard vote (recovery after message loss).

    A replica blocked at a transaction marker re-asks the touched clusters
    it is missing votes from; peers keep recent outbound votes and re-serve
    them, so a blocked replica is self-driving rather than waiting for
    operator intervention (mirrors :class:`RangeFetch`).
    """

    client: NodeId
    timestamp: int
    epoch: int
    shard: int
    replica: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "xs-vote-fetch": self.shard,
            "c": self.client.name,
            "t": self.timestamp,
            "epoch": self.epoch,
            "i": self.replica.name,
        }


@dataclass(frozen=True)
class CrossShardReply(Message):
    """The collator cluster's assembled reply for a cross-shard operation.

    ``sub_certificates`` holds one full (``g + 1``-signer) certificate per
    touched shard over that shard's :class:`SubReplyBody`; ``assembled`` is
    the collator's merged result summary.  The client trusts only the
    sub-certificates: it re-derives the result from the certified fragments
    and rejects a reply whose summary disagrees (a Byzantine collator can
    therefore delay an answer, never forge one).
    """

    client: NodeId
    timestamp: int
    status: str
    epoch: int
    collator_shard: int
    sub_certificates: Tuple[Certificate, ...]
    assembled: Dict[str, Any]
    sender: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "xs-assembled": self.status,
            "c": self.client.name,
            "t": self.timestamp,
            "epoch": self.epoch,
            "collator": self.collator_shard,
            "subs": [cert.to_wire() for cert in self.sub_certificates],
            "assembled": {key: self.assembled[key]
                          for key in sorted(self.assembled)},
            "sender": self.sender.name,
        }


@dataclass(frozen=True)
class RangeFetch(Message):
    """Request to re-send a range handoff (recovery after loss or a crash).

    A gaining replica blocked at an epoch cut re-asks the source cluster for
    the moved range; sources keep recent outbound handoffs and re-serve
    them, so a replica that missed the original multicast is self-driving
    rather than waiting for operator intervention.
    """

    epoch: int
    target_shard: int
    lo: Optional[str]
    hi: Optional[str]
    replica: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "to": self.target_shard,
            "lo": self.lo,
            "hi": self.hi,
            "i": self.replica.name,
        }
