"""Execution replicas of one shard.

A :class:`ShardExecutionNode` is an ordinary
:class:`~repro.core.execution.ExecutionNode` whose peers are the ``2g + 1``
replicas of *its own shard* and whose sequence space is the shard-local one
assigned by the shard routers.  The node converts each incoming
:class:`~repro.sharding.messages.ShardedBatch` into a
:class:`~repro.sharding.messages.ShardLocalBatch` by re-deriving, with its own
router *at the envelope's partition-map epoch*, the subset of requests it
owns -- so the inherited pipeline (in-order execution, gap fetch, per-shard
checkpoints, reply cache, state transfer) runs unchanged on shard-local
sequence numbers, and a misrouted or tampered envelope is rejected rather
than executed.

Misroute rejection (counted in :attr:`ShardExecutionNode.misroutes`) fires
when:

* the envelope is addressed to a different shard,
* none of the batch's requests are owned by this shard at the claimed epoch
  (or the epoch itself is unknown -- a forged future epoch), or
* the owned subset claimed by a peer-transferred batch does not match the
  subset this node derives itself.

**Route authentication.**  The agreement certificate covers the *global*
sequence number; the shard-local ``shard_seq`` and the routing ``epoch`` are
derived, not signed, so a single Byzantine agreement node could relabel a
genuinely committed batch with a wrong slot or a stale epoch and scramble
the shard's execution order or key ownership.  To prevent this, a replica
accepts a ``(shard_seq, epoch, batch)`` binding only once ``f + 1`` distinct
agreement nodes have sent the identical envelope -- every correct agreement
node computes the same deterministic assignment, so ``f + 1`` matching votes
always include a correct one.  Bindings served by shard peers (the gap-fetch
protocol) need ``g + 1`` distinct peer votes instead; a recovering replica
that cannot gather them simply waits for the next stable checkpoint, whose
``g + 1``-signed proof certifies everything below it.

**Epoch cuts and range handoff.**  A rebalancing map change reaches every
cluster as a *marker* batch occupying one shard-local sequence number, so
the cut lands at a deterministic point of each replica's own in-order
execution.  Executing the marker (deterministically a no-op if the change
lost a race) bumps the replica's epoch and, per moved key range:

* the *losing* replica extracts the range's state exactly as of the cut
  (execution is in-order, so its state is the agreed pre-cut prefix) and
  sends a :class:`~repro.sharding.messages.RangeHandoff` share -- range
  entries plus its client-dedup reply table -- to every replica of the
  gaining cluster;
* the *gaining* replica blocks execution past the marker until ``g + 1``
  matching source shares certify the moved state, installs it, merges the
  reply table timestamp-monotonically (so a request executed pre-cut is
  answered from the table, never re-executed -- exactly-once survives the
  cut), and resumes.  A blocked replica re-requests the handoff on a timer
  (:class:`~repro.sharding.messages.RangeFetch`), and a replica that missed
  the cut entirely catches up through the ordinary state-transfer path:
  checkpoints carry the epoch (and post-cut state) under their ``g + 1``
  proof.

Checkpoints falling exactly on a cut are deferred until the inbound ranges
are installed, so a cluster's checkpoint digest at any sequence number is a
deterministic function of the agreed history -- never of message timing.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import AuthenticationScheme, SystemConfig
from ..core.execution import ExecutionNode
from ..crypto.certificate import Certificate
from ..crypto.keys import Keystore
from ..messages.agreement import OrderedBatch
from ..messages.checkpoint import BatchTransfer
from ..messages.reply import BatchReplyBody, ReplyBody
from ..messages.request import ClientRequest
from ..net.message import Message
from ..obs import request_trace_id
from ..sim.scheduler import Scheduler
from ..statemachine.interface import OperationResult, StateMachine
from ..util.ids import NodeId, Role
from .messages import (
    CrossShardReply,
    CrossShardSubReply,
    CrossShardVote,
    CrossShardVoteFetch,
    MapChange,
    RangeFetch,
    RangeHandoff,
    ShardedBatch,
    ShardLocalBatch,
    SubReplyBody,
    config_op_of,
    cross_shard_request_of,
    handoff_payload,
    map_change_of,
    sub_reply_rounds_consistent,
    vote_payload,
)
from .rebalance import apply_map_change
from .router import ShardRouter

#: (epoch, lo, hi) identifying one moved key range
RangeKey = Tuple[int, Optional[str], Optional[str]]

#: vouched route binding for one shard-local slot: (agreement-certificate
#: body digest, routing epoch, ordering log -- None outside multi-log)
_RouteBinding = Tuple[bytes, int, Optional[int]]

#: (client, timestamp, epoch) identifying one cross-shard transaction's votes
TxnKey = Tuple[NodeId, int, int]

#: how many epochs of outbound handoffs a source replica keeps for re-serving
_HANDOFF_RETENTION_EPOCHS = 4

#: cap on buffered *pre-arrival* handoff shares (ranges this replica is not
#: yet awaiting); awaited ranges are always buffered regardless
_HANDOFF_BUFFER_CAP = 64

#: outbound cross-shard votes kept for re-serving fetches
_VOTE_RETENTION = 32

#: cap on buffered vote tallies for transactions this replica is not itself
#: blocked on (pre-arrivals from clusters that reached the marker first)
_VOTE_BUFFER_CAP = 64

#: cap on *tentative* collations (sub-reply fragments buffered before this
#: replica's own marker execution names the touched set)
_COLLATION_BUFFER_CAP = 64

#: cap on distinct not-yet-certified fragment collectors per collation (a
#: Byzantine sender varying the body gets one collector per digest)
_COLLECTOR_CAP = 32


@dataclass
class _PendingTxn:
    """A cross-shard transaction blocked at its marker slot.

    The commit decision needs every peer shard's certified read-set
    observations; until they arrive, execution past the marker is gated
    (the next batch could read keys the transaction is about to write).
    """

    request: ClientRequest
    local: ShardLocalBatch
    touched: List[int]
    reads: Dict[str, Any]
    writes: Dict[str, Any]
    #: own-shard read-set observations at the cut
    observed: Dict[str, Any]


@dataclass
class _Collation:
    """Per-client assembly state for one cross-shard operation's sub-replies.

    Every touched cluster's replicas run one of these (not just the
    collator's): partial sub-certificates are merged per ``(shard, body
    digest)`` until ``g + 1`` distinct signers of that shard vouch for the
    fragment, and once every touched shard is certified the assembled
    reply is cached -- the collator sends it immediately, the other
    clusters re-serve it when a duplicate marker signals the client is
    still waiting (the crashed-collator fallover path).
    """

    timestamp: int
    #: touched shards, known once this replica executes its own marker slot
    touched: Optional[List[int]] = None
    collectors: Dict[Tuple[int, bytes], Certificate] = field(default_factory=dict)
    full: Dict[int, Certificate] = field(default_factory=dict)
    full_bodies: Dict[int, SubReplyBody] = field(default_factory=dict)
    reply: Optional[CrossShardReply] = None


class ShardExecutionNode(ExecutionNode):
    """One of the ``2g + 1`` execution replicas of one shard."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, state_machine: StateMachine,
                 agreement_ids: List[NodeId], execution_ids: List[NodeId],
                 client_ids: List[NodeId], upstream: List[NodeId],
                 shard: int, router: ShardRouter,
                 threshold_group: Optional[str] = None,
                 shard_execution_ids: Optional[List[List[NodeId]]] = None) -> None:
        super().__init__(node_id=node_id, scheduler=scheduler, config=config,
                         keystore=keystore, state_machine=state_machine,
                         agreement_ids=agreement_ids, execution_ids=execution_ids,
                         client_ids=client_ids, upstream=upstream,
                         threshold_group=threshold_group, encrypt_replies=False)
        self.shard = shard
        self.router = router
        #: replica ids of *every* execution cluster (needed to address and
        #: authenticate cross-cluster range handoffs; empty disables them)
        self.shard_execution_ids = [list(ids)
                                    for ids in (shard_execution_ids or [])]
        self.misroutes = 0
        #: this replica's partition-map epoch (bumps exactly at cut markers)
        self.epoch = 0
        #: route-binding votes: shard_seq -> voter -> (envelope digest, epoch)
        self._route_votes: Dict[int, Dict[NodeId, _RouteBinding]] = {}
        #: shard_seq -> the accepted (f+1 / g+1 vouched) (digest, epoch)
        self._route_accepted: Dict[int, _RouteBinding] = {}
        #: inbound moved ranges not yet installed: range -> source cluster
        self._awaiting_ranges: Dict[RangeKey, int] = {}
        #: handoff shares received: range -> sender -> state digest
        self._handoff_votes: Dict[RangeKey, Dict[NodeId, bytes]] = {}
        #: handoff bytes by (range, digest): (entries, reply table)
        self._handoff_data: Dict[Tuple[RangeKey, bytes], Tuple[bytes, bytes]] = {}
        #: outbound handoffs kept for re-serving RangeFetch requests
        self._outbound_handoffs: Dict[RangeKey, RangeHandoff] = {}
        #: checkpoint deferred because it fell on a cut awaiting its ranges
        self._deferred_checkpoint: Optional[int] = None
        #: multi-log hooks (set by the multi-log system wiring; both stay
        #: None in single-log deployments).  ``on_config_marker(node, op)``
        #: runs after a non-partition config marker's slot bookkeeping --
        #: it is how a log-map cut repoints this cluster's upstream log.
        #: ``log_of_shard(shard) -> log`` groups cross-shard sub-reply
        #: fragments whose op_seq lives in per-log sequence spaces.
        self.on_config_marker = None
        self.log_of_shard = None

        # ---------------- Cross-shard operation state. ---------------- #
        #: transaction blocked at its marker awaiting peer-shard votes
        self._awaiting_txn: Optional[_PendingTxn] = None
        #: vote tallies: txn key -> shard -> voter -> observation digest
        self._xs_votes: Dict[TxnKey, Dict[int, Dict[NodeId, bytes]]] = {}
        #: observation data by (txn key, shard, digest)
        self._xs_vote_data: Dict[Tuple[TxnKey, int, bytes], Dict[str, Any]] = {}
        #: own outbound votes kept for re-serving fetches (insertion order)
        self._xs_outbound_votes: Dict[TxnKey, CrossShardVote] = {}
        #: latest own sub-reply per client (duplicate-marker resends)
        self._xs_sub_replies: Dict[NodeId, CrossShardSubReply] = {}
        #: collation state per (client, timestamp) -- keyed exactly, so a
        #: forged fragment with an inflated timestamp can only waste one
        #: bounded tentative slot, never displace genuine assembly state
        self._xs_collations: Dict[Tuple[NodeId, int], _Collation] = {}

        # Statistics used by benchmarks and tests.
        self.stale_epoch_batches = 0
        self.epoch_cuts_applied = 0
        self.ranges_sent = 0
        self.ranges_installed = 0
        self.range_fetches = 0
        self.cross_shard_executed = 0
        self.cross_shard_commits = 0
        self.cross_shard_aborts = 0
        self.cross_shard_epoch_aborts = 0
        self.cross_shard_replies_sent = 0
        self.vote_fetches = 0

        # Observability (passive: never charges, never schedules).
        self._h_vote_round = self.metrics.histogram("crossshard.vote_round_ms")
        self._h_cut_install = self.metrics.histogram("rebalance.cut_install_ms")
        self._c_handoff_bytes = self.metrics.counter("rebalance.handoff_bytes")
        self._c_handoff_ranges = self.metrics.counter("rebalance.handoff_ranges")
        self.metrics.register_probe("shardexec.state", self._shard_exec_probe)
        #: vote-round open times keyed by transaction, cut-blocked times by epoch
        self._vote_opened_at: Dict[TxnKey, float] = {}
        self._cut_blocked_at: Dict[int, float] = {}

    def _shard_exec_probe(self) -> dict:
        """Snapshot of the shard replica's ad-hoc counters for the registry."""
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "misroutes": self.misroutes,
            "stale_epoch_batches": self.stale_epoch_batches,
            "epoch_cuts_applied": self.epoch_cuts_applied,
            "ranges_sent": self.ranges_sent,
            "ranges_installed": self.ranges_installed,
            "range_fetches": self.range_fetches,
            "cross_shard_executed": self.cross_shard_executed,
            "cross_shard_commits": self.cross_shard_commits,
            "cross_shard_aborts": self.cross_shard_aborts,
            "cross_shard_epoch_aborts": self.cross_shard_epoch_aborts,
            "cross_shard_replies_sent": self.cross_shard_replies_sent,
            "vote_fetches": self.vote_fetches,
            "awaiting_ranges": len(self._awaiting_ranges),
        }

    # ------------------------------------------------------------------ #
    # Message dispatch.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, ShardedBatch):
            self.handle_sharded_batch(sender, message)
        elif isinstance(message, OrderedBatch):
            # A raw (unrouted) batch has no shard-local sequence number; in a
            # sharded deployment it can only come from a confused or Byzantine
            # sender.
            self.misroutes += 1
        elif isinstance(message, BatchTransfer):
            # Peer fetch responses re-enter through the vote path: the
            # transferred binding counts as one peer vote, never as truth.
            if sender in self.execution_ids and isinstance(message.batch,
                                                           ShardLocalBatch):
                self.handle_sharded_batch(sender, message.batch.to_sharded_batch())
        elif isinstance(message, RangeHandoff):
            self.handle_range_handoff(sender, message)
        elif isinstance(message, RangeFetch):
            self.handle_range_fetch(sender, message)
        elif isinstance(message, CrossShardSubReply):
            self.handle_cross_shard_sub_reply(sender, message)
        elif isinstance(message, CrossShardVote):
            self.handle_cross_shard_vote(sender, message)
        elif isinstance(message, CrossShardVoteFetch):
            self.handle_cross_shard_vote_fetch(sender, message)
        else:
            super().on_message(sender, message)

    def handle_sharded_batch(self, sender: NodeId, message: ShardedBatch) -> None:
        if message.shard != self.shard:
            self.misroutes += 1
            return
        if not self._within_acceptance_window(message.shard_seq):
            # Bound the vote/pending tables: per-shard pipelining lets the
            # agreement cluster run far ahead in aggregate, and a Byzantine
            # agreement node could otherwise flood arbitrary future slots.
            # Legitimate far-ahead traffic is redelivered by the router
            # queues' retransmission timers once this replica catches up
            # (or it catches up wholesale via a stable checkpoint).
            return
        local = self._localize(message)
        if local is None:
            self.misroutes += 1
            return
        seq = message.shard_seq
        # Vote on (agreement-certificate *body* digest, epoch, log): the
        # body (view, global seq, batch digest, nondet) is identical across
        # correct senders -- each sender's assembled certificate carries a
        # different authenticator set -- and it binds the batch content,
        # which _validate_batch checks against it at acceptance time.  The
        # epoch and ordering log ride in the vote so a single Byzantine
        # agreement node can no more relabel a batch's routing epoch or its
        # ordering log than its slot: a stale/forged label never gathers
        # f + 1 matching votes.
        digest = self.crypto.payload_digest(message.batch.agreement_certificate.payload)
        binding = (digest, message.epoch, message.log)
        votes = self._route_votes.setdefault(seq, {})
        repeat = votes.get(sender) == binding
        votes[sender] = binding

        if seq <= self.max_executed:
            # Already executed (possibly via state transfer).  Resend the
            # reply certificate only on a *repeat* envelope from the same
            # sender -- that is a genuine retransmission, meaning our earlier
            # reply was lost; first contacts from other agreement nodes are
            # just their initial (now redundant) sends.
            if repeat:
                self._resend_replies(local)
            return
        accepted = self._route_accepted.get(seq)
        if accepted is not None:
            if accepted != binding:
                self.misroutes += 1
                if accepted[0] == binding[0]:
                    self.stale_epoch_batches += 1
            return
        if not self._binding_vouched(votes, binding):
            return
        self.handle_ordered_batch(local)
        if local.seq in self.pending or self.max_executed >= local.seq:
            self._route_accepted[seq] = binding

    def _within_acceptance_window(self, shard_seq: int) -> bool:
        """Whether a routed slot is near enough to buffer.

        The window is generous (twice the checkpoint interval, or twice the
        configured pipeline window if that is larger) so it never
        constrains a healthy pipeline; it exists purely to keep the
        route-vote and pending tables bounded against floods.
        """
        depth = self.config.pipeline.per_shard_depth
        if depth is None:
            depth = self.config.pipeline_depth
        window = max(2 * self.config.checkpoint_interval, 2 * depth)
        return shard_seq <= self.max_executed + window

    def _binding_vouched(self, votes: Dict[NodeId, _RouteBinding],
                         binding: _RouteBinding) -> bool:
        """``f + 1`` agreement senders or ``g + 1`` shard peers vouch for it."""
        agreement_votes = sum(1 for voter, seen in votes.items()
                              if seen == binding and voter in self.agreement_ids)
        if agreement_votes >= self.config.f + 1:
            return True
        peer_votes = sum(1 for voter, seen in votes.items()
                         if seen == binding and voter in self.execution_ids)
        return peer_votes >= self.config.g + 1

    def _localize(self, message: ShardedBatch) -> Optional[ShardLocalBatch]:
        """Build this shard's view of the envelope (None if nothing is owned).

        The three batch kinds differ only in the owned subset: an epoch-cut
        marker owns no client requests (the cut semantics execute at its
        shard-local slot), a cross-shard marker travels whole (each touched
        cluster re-derives its owned key subset at execution), and an
        ordinary batch owns the requests this node's router maps here.
        """
        batch = message.batch
        if config_op_of(batch.request_certificates) is not None:
            owned: Tuple = ()
        elif self._cross_touched(batch.request_certificates,
                                 message.epoch) is not None:
            owned = batch.request_certificates
        else:
            owned = self._owned_requests(batch.request_certificates,
                                         message.epoch)
            if not owned:
                return None
        return ShardLocalBatch(
            shard=self.shard, seq=message.shard_seq, global_seq=batch.seq,
            view=batch.view, request_certificates=owned,
            full_request_certificates=batch.request_certificates,
            agreement_certificate=batch.agreement_certificate,
            nondet=batch.nondet, epoch=message.epoch, log=message.log)

    def _cross_touched(self, certificates: Tuple,
                       epoch: int) -> Optional[List[int]]:
        """The shards a cross-shard marker batch touches, if the batch is
        one *this* cluster participates in (None otherwise: not a marker,
        cross-shard disabled, an unknown epoch, or a marker addressed to a
        cluster that owns none of its keys -- a misroute)."""
        if not self.config.cross_shard.enabled:
            return None
        request = cross_shard_request_of(certificates)
        if request is None:
            return None
        try:
            touched = self.router.shards_of_operation_keys(request.operation,
                                                           epoch)
        except KeyError:
            return None
        if len(touched) < 2 or self.shard not in touched:
            return None
        return touched

    def _owned_requests(self, certificates: Tuple, epoch: int) -> Tuple:
        """The subset of a batch's request certificates this shard owns at
        ``epoch`` (empty when the epoch is unknown -- a forged future epoch
        cannot be judged, so nothing is owned under it).  A cross-shard
        request inside a mixed batch is owned by nobody: markers travel
        alone, so only a Byzantine sender builds such a batch."""
        try:
            return tuple(
                cert for cert in certificates
                if isinstance(cert.payload, ClientRequest)
                and self.router.shard_of_request(cert.payload, epoch) == self.shard
                and not (self.config.cross_shard.enabled
                         and self.router.is_cross_shard(cert.payload, epoch))
            )
        except KeyError:
            return ()

    # ------------------------------------------------------------------ #
    # Validation (shard-local batches only).
    # ------------------------------------------------------------------ #

    def _validate_batch(self, batch) -> bool:
        if not isinstance(batch, ShardLocalBatch):
            return False
        if batch.shard != self.shard:
            self.misroutes += 1
            return False
        body = batch.agreement_certificate.payload
        # The agreement certificate covers the *global* sequence number and
        # the digest of the full batch.
        if (getattr(body, "seq", None) != batch.global_seq
                or getattr(body, "view", None) != batch.view):
            return False
        if not self.crypto.verify_certificate(batch.agreement_certificate,
                                              self.config.agreement_quorum,
                                              self.agreement_ids):
            return False
        expected = self.crypto.digest({
            "batch": [self.crypto.payload_digest(cert.payload)
                      for cert in batch.full_request_certificates],
        })
        if expected != body.batch_digest:
            return False
        if config_op_of(batch.full_request_certificates) is not None:
            # Config marker (partition cut, log-map cut, ...): the agreement
            # certificate just verified is the whole authority (2f + 1
            # commits bind the change through the batch digest); it owns no
            # client requests by construction.
            return batch.request_certificates == ()
        touched = self._cross_touched(batch.full_request_certificates,
                                      batch.epoch)
        if touched is not None:
            # Cross-shard marker: the single certificate is the client's
            # own request, verified like any other; ownership is the
            # touched-set membership this node's router derives itself.
            if batch.request_certificates != batch.full_request_certificates:
                self.misroutes += 1
                return False
            request = batch.request_certificates[0].payload
            if request.client not in self.client_ids:
                return False
            return self.crypto.verify_certificate(
                batch.request_certificates[0], 1, [request.client])
        # Fast path (perf.shard_verify_owned_only): client authenticators are
        # verified only for the requests this shard owns.  The agreement
        # certificate just checked above carries 2f + 1 commits, so at least
        # f + 1 *correct* agreement replicas validated every request
        # certificate in the batch before committing it, and the batch digest
        # binds the non-owned payloads; re-verifying requests another shard
        # will execute adds no safety for this shard's own state.
        verify_all = not self.config.perf.shard_verify_owned_only
        for certificate in batch.full_request_certificates:
            request = certificate.payload
            if not isinstance(request, ClientRequest):
                return False
            if request.client not in self.client_ids:
                return False
            owned_here = self._owns_at(request, batch.epoch)
            if (verify_all or owned_here) and not self.crypto.verify_certificate(
                    certificate, 1, [request.client]):
                return False
        # Misroute rejection: the owned subset must be exactly what this
        # node's own router derives at the vouched epoch (peer-transferred
        # batches carry the sender's filtering, which a Byzantine peer could
        # doctor).
        owned = self._owned_requests(batch.full_request_certificates, batch.epoch)
        if not owned or owned != batch.request_certificates:
            self.misroutes += 1
            return False
        return True

    def _owns_at(self, request: ClientRequest, epoch: int) -> bool:
        try:
            return self.router.shard_of_request(request, epoch) == self.shard
        except KeyError:
            return False

    # ------------------------------------------------------------------ #
    # Execution: epoch cuts gate the in-order pipeline.
    # ------------------------------------------------------------------ #

    def _ready_to_execute(self, batch) -> bool:
        """Execution past an epoch cut waits for the cut's inbound ranges,
        and execution past a cross-shard transaction marker waits for the
        peer shards' votes: the next batch may read keys whose state is
        still in flight from the losing cluster, or that the blocked
        transaction is about to write."""
        return not self._awaiting_ranges and self._awaiting_txn is None

    def _execute_batch(self, batch) -> None:
        if isinstance(batch, ShardLocalBatch):
            change = map_change_of(batch.full_request_certificates)
            if change is not None:
                self._execute_map_change(batch, change)
                return
            config_op = config_op_of(batch.full_request_certificates)
            if config_op is not None:
                # A config operation that is not a partition-map change
                # (a log-map cut moving this cluster between agreement
                # logs) consumes its slot like any marker; the multi-log
                # wiring hooks the semantics.
                self._execute_config_marker(batch, config_op)
                return
            if batch.epoch != self.epoch:
                # Defence in depth: an accepted binding always matches the
                # in-stream epoch (markers and batches share one ordered
                # feed), so a mismatch here means the binding was forged
                # past the vote somehow -- drop it and re-fetch the truth
                # rather than execute under the wrong map.
                self.misroutes += 1
                self.stale_epoch_batches += 1
                self._route_accepted.pop(batch.seq, None)
                self._route_votes.pop(batch.seq, None)
                self._request_missing(batch.seq)
                return
            touched = self._cross_touched(batch.full_request_certificates,
                                          batch.epoch)
            if touched is not None:
                self._execute_cross_shard(batch, touched)
                return
        super()._execute_batch(batch)

    def _execute_map_change(self, local: ShardLocalBatch, change: MapChange) -> None:
        """Execute an epoch-cut marker at its shard-local slot.

        Mirrors the router queues' cut-time judgement exactly: apply the
        change if its parent epoch is current, else no-op.  Either way the
        marker consumes its sequence number and is answered (with an empty
        reply bundle), so the agreement cluster's pipeline accounting never
        distinguishes the two outcomes.
        """
        registry = getattr(self.router.partitioner, "registry", None)
        new_map = None
        if registry is not None and registry.has_epoch(self.epoch):
            old_map = registry.map_for(self.epoch)
            new_map = apply_map_change(old_map, change)
        if new_map is not None:
            registry.append(new_map)
            for moved in old_map.moved_ranges(new_map):
                if moved.old_owner == self.shard:
                    self._send_range(new_map.epoch, moved.lo, moved.hi,
                                     moved.new_owner)
                elif moved.new_owner == self.shard:
                    self._awaiting_ranges[(new_map.epoch, moved.lo, moved.hi)] = \
                        moved.old_owner
            self.epoch = new_map.epoch
            self.epoch_cuts_applied += 1
            if self._awaiting_ranges:
                self._cut_blocked_at[self.epoch] = self.now
            self._prune_handoff_buffers()
        # The marker's bookkeeping matches any other batch: it advances the
        # shard-local sequence, is answered, and may fall on a checkpoint.
        self.max_executed = local.seq
        self.batches_executed += 1
        body = self._make_reply_body(local.view, local.seq, ())
        self.replies_by_seq[local.seq] = self._send_reply(body)
        self._trim_reply_cache()
        self._try_install_ranges()
        if local.seq % self.config.checkpoint_interval == 0:
            if self._awaiting_ranges:
                # The checkpoint at a cut covers post-install state (the
                # deterministic "state after the cut"); take it once the
                # inbound ranges land.
                self._deferred_checkpoint = local.seq
            else:
                self._take_checkpoint(local.seq)
        if self._awaiting_ranges:
            self._arm_range_fetch()

    def _execute_config_marker(self, local: ShardLocalBatch, op) -> None:
        """Execute a non-partition config marker at its shard-local slot.

        The slot bookkeeping (advance, empty reply, checkpoint) runs
        *before* the ``on_config_marker`` hook: the reply must travel
        under the membership that ordered the marker, because a log-map
        cut is about to repoint this cluster's upstream at a different
        agreement log.
        """
        self.max_executed = local.seq
        self.batches_executed += 1
        body = self._make_reply_body(local.view, local.seq, ())
        self.replies_by_seq[local.seq] = self._send_reply(body)
        self._trim_reply_cache()
        if local.seq % self.config.checkpoint_interval == 0:
            if self._awaiting_ranges or self._awaiting_txn is not None:
                self._deferred_checkpoint = local.seq
            else:
                self._take_checkpoint(local.seq)
        if self.on_config_marker is not None:
            self.on_config_marker(self, op)

    # ------------------------------------------------------------------ #
    # Cross-shard operations at the consistent cut.
    # ------------------------------------------------------------------ #

    def _key_owned(self, key: str) -> bool:
        return self.router.partitioner.shard_of_key(key, self.epoch) == self.shard

    def _finish_marker_slot(self, local: ShardLocalBatch) -> None:
        """Slot bookkeeping for a cross-shard marker (mirrors the map-change
        marker's tail): the slot is answered with an empty reply bundle --
        the pipeline settles normally, the client's answer travels on the
        sub-reply path -- and a checkpoint falling on a blocked transaction
        defers until the commit decision resolves, so a checkpoint digest
        is always a pure function of the agreed history."""
        self.max_executed = local.seq
        self.batches_executed += 1
        body = self._make_reply_body(local.view, local.seq, ())
        self.replies_by_seq[local.seq] = self._send_reply(body)
        self._trim_reply_cache()
        if local.seq % self.config.checkpoint_interval == 0:
            if self._awaiting_ranges or self._awaiting_txn is not None:
                self._deferred_checkpoint = local.seq
            else:
                self._take_checkpoint(local.seq)

    def _execute_cross_shard(self, local: ShardLocalBatch,
                             touched: List[int]) -> None:
        """Execute this cluster's sub-operation of a cross-shard marker.

        Runs at the marker's slot in the shard-local order, so local state
        is exactly the agreed global prefix below the marker restricted to
        this shard -- the consistent cut.  Snapshot reads answer from it
        directly; a write transaction first exchanges certified read-set
        observations with the peer shards so that every correct replica of
        every touched cluster computes the same commit/abort decision.
        """
        certificate = local.request_certificates[0]
        request: ClientRequest = certificate.payload
        operation = request.operation_for(Role.EXECUTION)
        last = self.reply_table.get(request.client)
        if last is not None and request.timestamp <= last.timestamp:
            # A re-ordered duplicate (the client retransmitted after losing
            # the assembled reply): consume the slot and re-serve the cached
            # sub-reply and collation instead of re-executing -- this resend
            # path is also how a crashed collator's duty falls over to the
            # surviving touched clusters.
            self.duplicate_requests += 1
            self._finish_marker_slot(local)
            self._resend_cross_shard(request.client, request.timestamp)
            return
        self.cross_shard_executed += 1
        if self.tracing:
            self.trace_event(request_trace_id(request.client, request.timestamp),
                             "execute")
        pinned = operation.args.get("epoch")
        if pinned is not None and pinned != self.epoch:
            # The pinned epoch went stale under the operation (a rebalance
            # cut raced the marker).  Every touched replica judges the same
            # (pinned, cut-epoch) pair, so the abort is deterministic; the
            # sub-reply's epoch tells the client what to retry on.
            self.cross_shard_epoch_aborts += 1
            self._complete_cross_shard(local, request, touched,
                                       status="epoch-retry", values={})
            self._finish_marker_slot(local)
            return
        if operation.kind == "multi_get":
            mine = [key for key in operation.args.get("keys", ())
                    if self._key_owned(key)]
            values = self.app.snapshot_read(mine)
            self._complete_cross_shard(local, request, touched, "ok", values)
            self._finish_marker_slot(local)
            return
        if operation.kind == "txn":
            reads = dict(operation.args.get("reads", {}))
            writes = dict(operation.args.get("writes", {}))
            if reads and self.config.multilog.enabled:
                # Read-validating transactions are refused under multi-log
                # ordering: two such markers ordered inversely by two logs
                # would deadlock their vote rounds (each cluster blocked at
                # its marker waiting for votes the other only emits past its
                # own block).  The refusal is a pure function of static
                # config and marker content, so every touched replica
                # refuses identically -- no vote round ever opens.  Clients
                # fail these locally; this branch is defence in depth
                # against one smuggled past a correct client.
                self._complete_cross_shard(local, request, touched,
                                           "error", {})
                self._finish_marker_slot(local)
                return
            observed = self.app.snapshot_read(
                [key for key in reads if self._key_owned(key)])
            if not reads:
                # Write-only transaction: the commit decision is vacuous on
                # every shard, so no vote round -- each cluster applies its
                # slice at the marker and the cut makes it atomic.
                self.app.apply_writes({key: value for key, value in writes.items()
                                       if self._key_owned(key)})
                self.cross_shard_commits += 1
                self._complete_cross_shard(local, request, touched,
                                           "committed", {})
                self._finish_marker_slot(local)
                return
            self._send_vote(request, observed, touched)
            self._awaiting_txn = _PendingTxn(request=request, local=local,
                                             touched=list(touched),
                                             reads=reads, writes=writes,
                                             observed=observed)
            self._finish_marker_slot(local)
            self._arm_vote_fetch()
            self._try_resolve_txn()
            return
        # An unknown multi-key kind cannot be executed consistently.
        self._complete_cross_shard(local, request, touched, "error", {})
        self._finish_marker_slot(local)

    def _complete_cross_shard(self, local: ShardLocalBatch,
                              request: ClientRequest, touched: List[int],
                              status: str, values: Dict[str, Any]) -> None:
        """Emit this shard's certified sub-reply fragment.

        The fragment body is sender-agnostic, so ``g + 1`` matching partials
        from this cluster certify it; partials go to *every* touched
        cluster's replicas (each assembles the full collation) and the
        exactly-once reply-table entry makes duplicates replay the cached
        fragment instead of re-executing -- including across range handoffs,
        which migrate the table.
        """
        body = SubReplyBody(client=request.client, timestamp=request.timestamp,
                            shard=self.shard, epoch=self.epoch,
                            view=local.view, op_seq=local.global_seq,
                            status=status, values=values, log=local.log)
        self.reply_table[request.client] = ReplyBody(
            view=local.view, seq=local.seq, timestamp=request.timestamp,
            client=request.client,
            result=OperationResult(value={"cross-shard": status}, size=8))
        verifiers = [node for shard in touched
                     for node in self.shard_execution_ids[shard]]
        verifiers.append(request.client)
        certificate = Certificate(payload=body, scheme=AuthenticationScheme.MAC)
        certificate.add(self.crypto.mac_authenticator(body, verifiers))
        message = CrossShardSubReply(body=body, certificate=certificate,
                                     sender=self.node_id)
        self._xs_sub_replies[request.client] = message
        collation = self._collation_for(request.client, request.timestamp)
        collation.touched = list(touched)
        # Older operations of this client are retired (it runs one at a
        # time); higher-timestamped tentative slots stay within their cap.
        self._xs_collations = {
            stored_key: stored for stored_key, stored
            in self._xs_collations.items()
            if stored_key[0] != request.client
            or stored_key[1] >= request.timestamp
        }
        targets = [node for shard in touched
                   for node in self.shard_execution_ids[shard]
                   if node != self.node_id]
        self.multicast(targets, message)
        self.handle_cross_shard_sub_reply(self.node_id, message)
        # A slow executor may find every fragment (its own shard's
        # included) already certified from peers' partials; the touched set
        # only became known here, so the assembly must be retried now.
        self._try_collate(request.client, collation)

    def _resend_cross_shard(self, client: NodeId, timestamp: int) -> None:
        """Re-serve the cached sub-reply (to the touched clusters) and, if
        this cluster holds the complete collation, the assembled reply (to
        the client) -- any surviving touched cluster answers a retrying
        client, collator or not."""
        sub = self._xs_sub_replies.get(client)
        collation = self._xs_collations.get((client, timestamp))
        if sub is not None and sub.body.timestamp == timestamp:
            touched = (collation.touched
                       if collation is not None and collation.touched else
                       range(len(self.shard_execution_ids)))
            targets = [node for shard in touched
                       for node in self.shard_execution_ids[shard]
                       if node != self.node_id]
            self.multicast(targets, sub)
        if (collation is not None and collation.timestamp == timestamp
                and collation.reply is not None):
            self.send(client, collation.reply)
            self.cross_shard_replies_sent += 1

    # ------------------------------------------------------------------ #
    # Cross-shard transactions: the read-set vote round.
    # ------------------------------------------------------------------ #

    def _txn_key(self, request: ClientRequest) -> TxnKey:
        return (request.client, request.timestamp, self.epoch)

    def _send_vote(self, request: ClientRequest, observed: Dict[str, Any],
                   touched: List[int]) -> None:
        peers = [node for shard in touched if shard != self.shard
                 for node in self.shard_execution_ids[shard]]
        vote = CrossShardVote(
            client=request.client, timestamp=request.timestamp,
            shard=self.shard, epoch=self.epoch, observed=observed,
            replica=self.node_id,
            authenticator=self.crypto.mac_authenticator(
                vote_payload(request.client, request.timestamp, self.shard,
                             self.epoch, observed), peers))
        key = self._txn_key(request)
        self._xs_outbound_votes[key] = vote
        while len(self._xs_outbound_votes) > _VOTE_RETENTION:
            self._xs_outbound_votes.pop(next(iter(self._xs_outbound_votes)))
        self._vote_opened_at[key] = self.now
        if self.tracing:
            self.trace_event(request_trace_id(request.client, request.timestamp),
                             "vote_open")
        self.multicast(peers, vote)

    def handle_cross_shard_vote(self, sender: NodeId,
                                message: CrossShardVote) -> None:
        if sender != message.replica or message.shard == self.shard:
            return
        if not 0 <= message.shard < len(self.shard_execution_ids):
            return
        if sender not in self.shard_execution_ids[message.shard]:
            return
        if message.client not in self.client_ids:
            return
        if message.authenticator is None or not self.crypto.verify_mac(
                vote_payload(message.client, message.timestamp, message.shard,
                             message.epoch, message.observed),
                message.authenticator):
            return
        last = self.reply_table.get(message.client)
        if last is not None and message.timestamp <= last.timestamp:
            return  # the transaction already resolved here
        if not (self.epoch - _HANDOFF_RETENTION_EPOCHS <= message.epoch
                <= self.epoch + _HANDOFF_RETENTION_EPOCHS):
            return
        key: TxnKey = (message.client, message.timestamp, message.epoch)
        awaited = (self._awaiting_txn is not None
                   and self._txn_key(self._awaiting_txn.request) == key)
        if (not awaited and key not in self._xs_votes
                and len(self._xs_votes) >= _VOTE_BUFFER_CAP):
            return  # pre-arrival buffer full; the vote fetch recovers
        digest = self.crypto.digest(
            vote_payload(message.client, message.timestamp, message.shard,
                         message.epoch, message.observed))
        tallies = self._xs_votes.setdefault(key, {}).setdefault(
            message.shard, {})
        previous = tallies.get(sender)
        tallies[sender] = digest
        if (previous is not None and previous != digest
                and previous not in tallies.values()):
            # One tally per sender: an equivocating voter varying its
            # observations must not leave one orphaned data blob per try.
            self._xs_vote_data.pop((key, message.shard, previous), None)
        self._xs_vote_data[(key, message.shard, digest)] = dict(message.observed)
        self._try_resolve_txn()

    def _certified_fragment(self, key: TxnKey,
                            shard: int) -> Optional[Dict[str, Any]]:
        """``shard``'s read-set observations, once ``g + 1`` of its replicas
        sent matching votes."""
        tallies = self._xs_votes.get(key, {}).get(shard, {})
        for digest in set(tallies.values()):
            support = sum(1 for seen in tallies.values() if seen == digest)
            if (support >= self.config.reply_quorum
                    and (key, shard, digest) in self._xs_vote_data):
                return self._xs_vote_data[(key, shard, digest)]
        return None

    def _try_resolve_txn(self) -> None:
        """Resolve the blocked transaction once every peer shard's read-set
        observations are certified.

        The commit decision -- every read key's certified observation equals
        its expected value -- is a pure function of the agreed cut state,
        evaluated identically by every correct replica of every touched
        shard: aborts are deterministic and atomic by construction.
        """
        pending = self._awaiting_txn
        if pending is None:
            return
        key = self._txn_key(pending.request)
        observed_all = dict(pending.observed)
        for shard in pending.touched:
            if shard == self.shard:
                continue
            fragment = self._certified_fragment(key, shard)
            if fragment is None:
                return  # still waiting
            observed_all.update(fragment)
        commit = all(observed_all.get(read_key) == expected
                     for read_key, expected in pending.reads.items())
        if commit:
            self.app.apply_writes({write_key: value
                                   for write_key, value in pending.writes.items()
                                   if self._key_owned(write_key)})
            self.cross_shard_commits += 1
        else:
            self.cross_shard_aborts += 1
        opened_at = self._vote_opened_at.pop(key, None)
        if opened_at is not None:
            self._h_vote_round.observe(self.now - opened_at)
        if self.tracing:
            self.trace_event(
                request_trace_id(pending.request.client,
                                 pending.request.timestamp), "vote_done")
        self._awaiting_txn = None
        self._xs_votes.pop(key, None)
        self._xs_vote_data = {
            stored: data for stored, data in self._xs_vote_data.items()
            if stored[0] != key
        }
        self._complete_cross_shard(pending.local, pending.request,
                                   pending.touched,
                                   "committed" if commit else "aborted",
                                   pending.observed)
        if self._deferred_checkpoint is not None and not self._awaiting_ranges:
            seq = self._deferred_checkpoint
            self._deferred_checkpoint = None
            self._take_checkpoint(seq)
        self._process_pending()

    def _arm_vote_fetch(self) -> None:
        self.set_timer(self.config.timers.execution_fetch_ms,
                       self._on_vote_fetch_timeout,
                       label=f"{self.node_id}:vote-fetch")

    def _on_vote_fetch_timeout(self) -> None:
        pending = self._awaiting_txn
        if pending is None:
            return
        key = self._txn_key(pending.request)
        for shard in pending.touched:
            if shard == self.shard or self._certified_fragment(key, shard):
                continue
            self.vote_fetches += 1
            self.multicast(self.shard_execution_ids[shard],
                           CrossShardVoteFetch(client=pending.request.client,
                                               timestamp=pending.request.timestamp,
                                               epoch=self.epoch,
                                               shard=self.shard,
                                               replica=self.node_id))
        self._arm_vote_fetch()

    def handle_cross_shard_vote_fetch(self, sender: NodeId,
                                      message: CrossShardVoteFetch) -> None:
        """Re-serve a stored vote to a blocked replica that missed it."""
        if sender != message.replica:
            return
        if not any(sender in ids for ids in self.shard_execution_ids):
            return
        stored = self._xs_outbound_votes.get(
            (message.client, message.timestamp, message.epoch))
        if stored is not None:
            self.send(sender, stored)

    # ------------------------------------------------------------------ #
    # Cross-shard sub-reply collation.
    # ------------------------------------------------------------------ #

    def _collation_for(self, client: NodeId, timestamp: int) -> _Collation:
        key = (client, timestamp)
        collation = self._xs_collations.get(key)
        if collation is None:
            collation = _Collation(timestamp=timestamp)
            self._xs_collations[key] = collation
        return collation

    def handle_cross_shard_sub_reply(self, sender: NodeId,
                                     message: CrossShardSubReply) -> None:
        body = message.body
        if sender != message.sender:
            return
        if not 0 <= body.shard < len(self.shard_execution_ids):
            return
        if sender not in self.shard_execution_ids[body.shard]:
            return
        if body.client not in self.client_ids:
            return
        last = self.reply_table.get(body.client)
        if last is not None and body.timestamp < last.timestamp:
            return  # stale fragment of an operation this client moved past
        collation = self._xs_collations.get((body.client, body.timestamp))
        if collation is None:
            # A tentative slot (own marker not executed yet): bounded, and
            # refusing at the cap is recoverable -- a duplicate marker
            # makes every touched replica re-serve its fragment.
            tentative = sum(1 for stored in self._xs_collations.values()
                            if stored.touched is None)
            if tentative >= _COLLATION_BUFFER_CAP:
                return
            collation = self._collation_for(body.client, body.timestamp)
        if body.shard in collation.full:
            # Already certified (and possibly embedded in a sent reply):
            # never merge into an assembled certificate again.
            return
        digest = self.crypto.payload_digest(body)
        collector_key = (body.shard, digest)
        collector = collation.collectors.get(collector_key)
        if collector is None:
            if len(collation.collectors) >= _COLLECTOR_CAP:
                return
            collector = Certificate(payload=body,
                                    scheme=message.certificate.scheme)
            collation.collectors[collector_key] = collector
        collector.merge(message.certificate)
        valid = self.crypto.valid_signers(collector,
                                          self.shard_execution_ids[body.shard])
        if len(valid) < self.config.reply_quorum:
            return
        collation.full[body.shard] = collector
        collation.full_bodies[body.shard] = body
        collation.collectors = {
            stored: cert for stored, cert in collation.collectors.items()
            if stored[0] != body.shard
        }
        self._try_collate(body.client, collation)

    def _try_collate(self, client: NodeId, collation: _Collation) -> None:
        """Assemble the client reply once every touched shard is certified.

        Every touched cluster assembles (the certified fragments reach them
        all); only the deterministic collator -- the lowest touched shard --
        sends unprompted.  The others hold the assembled reply and serve it
        on a duplicate marker, which is the crashed-collator fallover.
        """
        if collation.touched is None or collation.reply is not None:
            return
        if any(shard not in collation.full for shard in collation.touched):
            return
        bodies = [collation.full_bodies[shard] for shard in collation.touched]
        first = bodies[0]
        if not sub_reply_rounds_consistent(bodies, self.log_of_shard):
            return  # mixed rounds; the marker resend converges them
        assembled: Dict[str, Any] = {}
        for body in bodies:
            assembled.update(body.values)
        collation.reply = CrossShardReply(
            client=client, timestamp=collation.timestamp, status=first.status,
            epoch=first.epoch, collator_shard=min(collation.touched),
            sub_certificates=tuple(collation.full[shard]
                                   for shard in collation.touched),
            assembled=assembled, sender=self.node_id)
        if self.tracing:
            self.trace_event(request_trace_id(client, collation.timestamp),
                             "collate")
        if self.shard == min(collation.touched):
            self.send(client, collation.reply)
            self.cross_shard_replies_sent += 1

    # ------------------------------------------------------------------ #
    # Range handoff: losing side.
    # ------------------------------------------------------------------ #

    def _send_range(self, epoch: int, lo: Optional[str], hi: Optional[str],
                    target_shard: int) -> None:
        """Extract a moved range as of the cut and share it with the gainers.

        The extraction *removes* the range locally -- ownership moved, and a
        stale local copy could shadow the handed-off truth if the range ever
        returns -- and the share's authenticator covers the canonical
        handoff payload, so ``g + 1`` matching shares certify the state.
        """
        if not self.shard_execution_ids:
            return
        entries = self.app.extract_range(lo, hi)
        reply_table = self._serialized_reply_table()
        digest = self.crypto.digest(entries + reply_table,
                                    size_hint=len(entries) + len(reply_table))
        targets = self.shard_execution_ids[target_shard]
        authenticator = self.crypto.mac_authenticator(
            handoff_payload(epoch, lo, hi, self.shard, target_shard, digest),
            targets)
        message = RangeHandoff(epoch=epoch, source_shard=self.shard,
                               target_shard=target_shard, lo=lo, hi=hi,
                               entries=entries, reply_table=reply_table,
                               state_digest=digest, replica=self.node_id,
                               authenticator=authenticator)
        self._outbound_handoffs[(epoch, lo, hi)] = message
        self._outbound_handoffs = {
            key: kept for key, kept in self._outbound_handoffs.items()
            if key[0] > epoch - _HANDOFF_RETENTION_EPOCHS
        }
        self.multicast(targets, message)
        self.ranges_sent += 1
        self._c_handoff_ranges.inc()
        self._c_handoff_bytes.inc(len(entries) + len(reply_table))

    def handle_range_fetch(self, sender: NodeId, message: RangeFetch) -> None:
        """Re-serve a stored handoff to a gaining replica that missed it."""
        if sender != message.replica:
            return
        if not any(sender in ids for ids in self.shard_execution_ids):
            return
        stored = self._outbound_handoffs.get((message.epoch, message.lo, message.hi))
        if stored is not None and stored.target_shard == message.target_shard:
            self.send(sender, stored)

    # ------------------------------------------------------------------ #
    # Range handoff: gaining side.
    # ------------------------------------------------------------------ #

    def handle_range_handoff(self, sender: NodeId, message: RangeHandoff) -> None:
        if message.target_shard != self.shard or not self.shard_execution_ids:
            self.misroutes += 1
            return
        if not 0 <= message.source_shard < len(self.shard_execution_ids):
            return
        if (sender != message.replica
                or sender not in self.shard_execution_ids[message.source_shard]):
            return
        if message.authenticator is None or not self.crypto.verify_mac(
                handoff_payload(message.epoch, message.lo, message.hi,
                                message.source_shard, message.target_shard,
                                message.state_digest),
                message.authenticator):
            return
        # Bound the buffer: shares are useful only near this replica's own
        # epoch (a little behind: a late duplicate; a little ahead: a
        # pre-arrival for a cut we have not executed yet).  Anything else --
        # including a flood of fabricated far-future ranges from a single
        # Byzantine source replica -- is dropped, mirroring the route-vote
        # acceptance window.
        if not (self.epoch - _HANDOFF_RETENTION_EPOCHS <= message.epoch
                <= self.epoch + _HANDOFF_RETENTION_EPOCHS):
            return
        digest = self.crypto.digest(
            message.entries + message.reply_table,
            size_hint=len(message.entries) + len(message.reply_table))
        if digest != message.state_digest:
            return
        key: RangeKey = (message.epoch, message.lo, message.hi)
        if key not in self._awaiting_ranges:
            if message.epoch <= self.epoch:
                # A share for a cut already behind us that we are not
                # blocked on: a late duplicate of an installed handoff (the
                # remaining source replicas' redundant sends) or a range
                # that was never ours to gain.  Nothing left to install.
                return
            if len(self._handoff_data) >= _HANDOFF_BUFFER_CAP:
                return  # pre-arrival buffer is full; RangeFetch recovers
        self._handoff_votes.setdefault(key, {})[sender] = message.state_digest
        self._handoff_data[(key, message.state_digest)] = (message.entries,
                                                           message.reply_table)
        self._try_install_ranges()

    def _try_install_ranges(self) -> None:
        """Install every awaited range with ``g + 1`` matching shares."""
        installed = False
        for key in list(self._awaiting_ranges):
            votes = self._handoff_votes.get(key, {})
            for digest in set(votes.values()):
                support = sum(1 for seen in votes.values() if seen == digest)
                if (support >= self.config.checkpoint_quorum
                        and (key, digest) in self._handoff_data):
                    self._install_range(key, digest)
                    installed = True
                    break
        if installed and not self._awaiting_ranges:
            blocked_at = self._cut_blocked_at.pop(self.epoch, None)
            if blocked_at is not None:
                self._h_cut_install.observe(self.now - blocked_at)
            if self._deferred_checkpoint is not None:
                seq = self._deferred_checkpoint
                self._deferred_checkpoint = None
                self._take_checkpoint(seq)
            self._process_pending()

    def _install_range(self, key: RangeKey, digest: bytes) -> None:
        entries, reply_table = self._handoff_data[(key, digest)]
        _, lo, hi = key
        self.app.install_range(lo, hi, entries)
        # Merge the source cluster's dedup table timestamp-monotonically: a
        # request executed there pre-cut must be answered from the table
        # here, never re-executed.  This replica's own table is frozen while
        # blocked at the cut, so the merge is deterministic across peers.
        for _, reply in pickle.loads(reply_table):
            current = self.reply_table.get(reply.client)
            if current is None or current.timestamp < reply.timestamp:
                self.reply_table[reply.client] = reply
        del self._awaiting_ranges[key]
        self._handoff_votes.pop(key, None)
        self._handoff_data = {
            stored: data for stored, data in self._handoff_data.items()
            if stored[0] != key
        }
        self.ranges_installed += 1

    def _prune_handoff_buffers(self) -> None:
        """Drop buffered shares that can never install: past epochs whose
        ranges this replica is not awaiting (late duplicates of installed
        handoffs, or ranges that were never ours to gain)."""
        def live(key: RangeKey) -> bool:
            return key in self._awaiting_ranges or key[0] > self.epoch

        self._handoff_votes = {
            key: votes for key, votes in self._handoff_votes.items() if live(key)
        }
        self._handoff_data = {
            stored: data for stored, data in self._handoff_data.items()
            if live(stored[0])
        }

    def _arm_range_fetch(self) -> None:
        self.set_timer(self.config.timers.execution_fetch_ms,
                       self._on_range_fetch_timeout,
                       label=f"{self.node_id}:range-fetch")

    def _on_range_fetch_timeout(self) -> None:
        if not self._awaiting_ranges:
            return
        for (epoch, lo, hi), source in self._awaiting_ranges.items():
            if not 0 <= source < len(self.shard_execution_ids):
                continue
            self.range_fetches += 1
            self.multicast(self.shard_execution_ids[source],
                           RangeFetch(epoch=epoch, target_shard=self.shard,
                                      lo=lo, hi=hi, replica=self.node_id))
        self._arm_range_fetch()

    # ------------------------------------------------------------------ #
    # Checkpoints carry the epoch (state transfer must land in the right
    # map, not just the right application state).
    # ------------------------------------------------------------------ #

    def _resend_replies(self, batch) -> None:
        """Also re-serve cross-shard artifacts on a genuine retransmission:
        the retrying client is waiting for the assembled reply, not the
        (empty) marker-slot bundle."""
        super()._resend_replies(batch)
        certificates = getattr(batch, "full_request_certificates",
                               batch.request_certificates)
        if self.config.cross_shard.enabled:
            request = cross_shard_request_of(certificates)
            if request is not None:
                self._resend_cross_shard(request.client, request.timestamp)

    def _checkpoint_extra(self) -> bytes:
        return json.dumps({"epoch": self.epoch}, sort_keys=True).encode()

    def _restore_extra(self, extra: bytes) -> None:
        if not extra:
            return
        self.epoch = int(json.loads(extra.decode())["epoch"])
        # A checkpoint is never taken while ranges are in flight (cuts defer
        # it), so the restored state carries every range of its epoch: any
        # handoff this replica was blocked on is already folded in, and the
        # buffered shares for it are dead weight (a future cut's shares are
        # re-fetchable via RangeFetch if they get dropped here).
        self._awaiting_ranges.clear()
        self._deferred_checkpoint = None
        self._prune_handoff_buffers()
        # Likewise, checkpoints defer while a cross-shard transaction is
        # blocked, so the restored state already carries its outcome (and
        # the restored reply table carries its exactly-once fragment).
        self._awaiting_txn = None

    # ------------------------------------------------------------------ #
    # Replies carry the shard id and epoch; vote tables are garbage
    # collected with the recent-batch window.
    # ------------------------------------------------------------------ #

    def _make_reply_body(self, view: int, seq: int,
                         replies: Tuple[ReplyBody, ...]) -> BatchReplyBody:
        return BatchReplyBody(view=view, seq=seq, replies=tuple(replies),
                              shard=self.shard, epoch=self.epoch)

    def _trim_recent(self) -> None:
        super()._trim_recent()
        self._trim_cross_shard()
        horizon = self.max_executed - 2 * self.config.checkpoint_interval
        if horizon <= 0:
            return
        self._route_votes = {
            seq: votes for seq, votes in self._route_votes.items() if seq > horizon
        }
        self._route_accepted = {
            seq: binding for seq, binding in self._route_accepted.items()
            if seq > horizon
        }

    def _trim_cross_shard(self) -> None:
        """Drop vote tallies and collations for operations already resolved
        here (the reply table records the resolution; late duplicates
        replay it)."""
        def live(key) -> bool:
            last = self.reply_table.get(key[0])
            return last is None or key[1] > last.timestamp

        self._xs_votes = {
            key: tallies for key, tallies in self._xs_votes.items() if live(key)
        }
        self._xs_vote_data = {
            stored: data for stored, data in self._xs_vote_data.items()
            if live(stored[0])
        }
        self._xs_collations = {
            key: collation for key, collation in self._xs_collations.items()
            if live(key) or key[1] == self.reply_table[key[0]].timestamp
        }
