"""Execution replicas of one shard.

A :class:`ShardExecutionNode` is an ordinary
:class:`~repro.core.execution.ExecutionNode` whose peers are the ``2g + 1``
replicas of *its own shard* and whose sequence space is the shard-local one
assigned by the shard routers.  The node converts each incoming
:class:`~repro.sharding.messages.ShardedBatch` into a
:class:`~repro.sharding.messages.ShardLocalBatch` by re-deriving, with its own
router, the subset of requests it owns -- so the inherited pipeline (in-order
execution, gap fetch, per-shard checkpoints, reply cache, state transfer)
runs unchanged on shard-local sequence numbers, and a misrouted or tampered
envelope is rejected rather than executed.

Misroute rejection (counted in :attr:`ShardExecutionNode.misroutes`) fires
when:

* the envelope is addressed to a different shard,
* none of the batch's requests are owned by this shard, or
* the owned subset claimed by a peer-transferred batch does not match the
  subset this node derives itself.

**Route authentication.**  The agreement certificate covers the *global*
sequence number; the shard-local ``shard_seq`` is derived, not signed, so a
single Byzantine agreement node could relabel a genuinely committed batch
with a wrong slot and scramble the shard's execution order.  To prevent
this, a replica accepts a ``(shard_seq, batch)`` binding only once ``f + 1``
distinct agreement nodes have sent the identical envelope -- every correct
agreement node computes the same deterministic assignment, so ``f + 1``
matching votes always include a correct one.  Bindings served by shard peers
(the gap-fetch protocol) need ``g + 1`` distinct peer votes instead; a
recovering replica that cannot gather them simply waits for the next stable
checkpoint, whose ``g + 1``-signed proof certifies everything below it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SystemConfig
from ..core.execution import ExecutionNode
from ..crypto.keys import Keystore
from ..messages.agreement import OrderedBatch
from ..messages.checkpoint import BatchTransfer
from ..messages.reply import BatchReplyBody, ReplyBody
from ..messages.request import ClientRequest
from ..net.message import Message
from ..sim.scheduler import Scheduler
from ..statemachine.interface import StateMachine
from ..util.ids import NodeId
from .messages import ShardedBatch, ShardLocalBatch
from .router import ShardRouter


class ShardExecutionNode(ExecutionNode):
    """One of the ``2g + 1`` execution replicas of one shard."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, state_machine: StateMachine,
                 agreement_ids: List[NodeId], execution_ids: List[NodeId],
                 client_ids: List[NodeId], upstream: List[NodeId],
                 shard: int, router: ShardRouter,
                 threshold_group: Optional[str] = None) -> None:
        super().__init__(node_id=node_id, scheduler=scheduler, config=config,
                         keystore=keystore, state_machine=state_machine,
                         agreement_ids=agreement_ids, execution_ids=execution_ids,
                         client_ids=client_ids, upstream=upstream,
                         threshold_group=threshold_group, encrypt_replies=False)
        self.shard = shard
        self.router = router
        self.misroutes = 0
        #: route-binding votes: shard_seq -> voter -> envelope digest
        self._route_votes: Dict[int, Dict[NodeId, bytes]] = {}
        #: shard_seq -> digest of the accepted (f+1 / g+1 vouched) binding
        self._route_accepted: Dict[int, bytes] = {}

    # ------------------------------------------------------------------ #
    # Message dispatch.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, ShardedBatch):
            self.handle_sharded_batch(sender, message)
        elif isinstance(message, OrderedBatch):
            # A raw (unrouted) batch has no shard-local sequence number; in a
            # sharded deployment it can only come from a confused or Byzantine
            # sender.
            self.misroutes += 1
        elif isinstance(message, BatchTransfer):
            # Peer fetch responses re-enter through the vote path: the
            # transferred binding counts as one peer vote, never as truth.
            if sender in self.execution_ids and isinstance(message.batch,
                                                           ShardLocalBatch):
                self.handle_sharded_batch(sender, message.batch.to_sharded_batch())
        else:
            super().on_message(sender, message)

    def handle_sharded_batch(self, sender: NodeId, message: ShardedBatch) -> None:
        if message.shard != self.shard:
            self.misroutes += 1
            return
        if not self._within_acceptance_window(message.shard_seq):
            # Bound the vote/pending tables: per-shard pipelining lets the
            # agreement cluster run far ahead in aggregate, and a Byzantine
            # agreement node could otherwise flood arbitrary future slots.
            # Legitimate far-ahead traffic is redelivered by the router
            # queues' retransmission timers once this replica catches up
            # (or it catches up wholesale via a stable checkpoint).
            return
        local = self._localize(message)
        if local is None:
            self.misroutes += 1
            return
        seq = message.shard_seq
        # Vote on the agreement-certificate *body* (view, global seq, batch
        # digest, nondet): it is identical across correct senders -- each
        # sender's assembled certificate carries a different authenticator
        # set -- and it binds the batch content, which _validate_batch checks
        # against it at acceptance time.
        digest = self.crypto.payload_digest(message.batch.agreement_certificate.payload)
        votes = self._route_votes.setdefault(seq, {})
        repeat = votes.get(sender) == digest
        votes[sender] = digest

        if seq <= self.max_executed:
            # Already executed (possibly via state transfer).  Resend the
            # reply certificate only on a *repeat* envelope from the same
            # sender -- that is a genuine retransmission, meaning our earlier
            # reply was lost; first contacts from other agreement nodes are
            # just their initial (now redundant) sends.
            if repeat:
                self._resend_replies(local)
            return
        accepted = self._route_accepted.get(seq)
        if accepted is not None:
            if accepted != digest:
                self.misroutes += 1
            return
        if not self._binding_vouched(votes, digest):
            return
        self.handle_ordered_batch(local)
        if local.seq in self.pending or self.max_executed >= local.seq:
            self._route_accepted[seq] = digest

    def _within_acceptance_window(self, shard_seq: int) -> bool:
        """Whether a routed slot is near enough to buffer.

        The window is generous (twice the checkpoint interval, or twice the
        configured pipeline window if that is larger) so it never
        constrains a healthy pipeline; it exists purely to keep the
        route-vote and pending tables bounded against floods.
        """
        depth = self.config.pipeline.per_shard_depth
        if depth is None:
            depth = self.config.pipeline_depth
        window = max(2 * self.config.checkpoint_interval, 2 * depth)
        return shard_seq <= self.max_executed + window

    def _binding_vouched(self, votes: Dict[NodeId, bytes], digest: bytes) -> bool:
        """``f + 1`` agreement senders or ``g + 1`` shard peers vouch for it."""
        agreement_votes = sum(1 for voter, seen in votes.items()
                              if seen == digest and voter in self.agreement_ids)
        if agreement_votes >= self.config.f + 1:
            return True
        peer_votes = sum(1 for voter, seen in votes.items()
                         if seen == digest and voter in self.execution_ids)
        return peer_votes >= self.config.g + 1

    def _localize(self, message: ShardedBatch) -> Optional[ShardLocalBatch]:
        """Build this shard's view of the envelope (None if nothing is owned)."""
        batch = message.batch
        owned = self._owned_requests(batch.request_certificates)
        if not owned:
            return None
        return ShardLocalBatch(
            shard=self.shard, seq=message.shard_seq, global_seq=batch.seq,
            view=batch.view, request_certificates=owned,
            full_request_certificates=batch.request_certificates,
            agreement_certificate=batch.agreement_certificate, nondet=batch.nondet,
        )

    def _owned_requests(self, certificates: Tuple) -> Tuple:
        """The subset of a batch's request certificates this shard owns."""
        return tuple(
            cert for cert in certificates
            if isinstance(cert.payload, ClientRequest)
            and self.router.shard_of_request(cert.payload) == self.shard
        )

    # ------------------------------------------------------------------ #
    # Validation (shard-local batches only).
    # ------------------------------------------------------------------ #

    def _validate_batch(self, batch) -> bool:
        if not isinstance(batch, ShardLocalBatch):
            return False
        if batch.shard != self.shard:
            self.misroutes += 1
            return False
        body = batch.agreement_certificate.payload
        # The agreement certificate covers the *global* sequence number and
        # the digest of the full batch.
        if (getattr(body, "seq", None) != batch.global_seq
                or getattr(body, "view", None) != batch.view):
            return False
        if not self.crypto.verify_certificate(batch.agreement_certificate,
                                              self.config.agreement_quorum,
                                              self.agreement_ids):
            return False
        expected = self.crypto.digest({
            "batch": [self.crypto.payload_digest(cert.payload)
                      for cert in batch.full_request_certificates],
        })
        if expected != body.batch_digest:
            return False
        # Fast path (perf.shard_verify_owned_only): client authenticators are
        # verified only for the requests this shard owns.  The agreement
        # certificate just checked above carries 2f + 1 commits, so at least
        # f + 1 *correct* agreement replicas validated every request
        # certificate in the batch before committing it, and the batch digest
        # binds the non-owned payloads; re-verifying requests another shard
        # will execute adds no safety for this shard's own state.
        verify_all = not self.config.perf.shard_verify_owned_only
        for certificate in batch.full_request_certificates:
            request = certificate.payload
            if not isinstance(request, ClientRequest):
                return False
            if request.client not in self.client_ids:
                return False
            owned_here = self.router.shard_of_request(request) == self.shard
            if (verify_all or owned_here) and not self.crypto.verify_certificate(
                    certificate, 1, [request.client]):
                return False
        # Misroute rejection: the owned subset must be exactly what this
        # node's own router derives (peer-transferred batches carry the
        # sender's filtering, which a Byzantine peer could doctor).
        owned = self._owned_requests(batch.full_request_certificates)
        if not owned or owned != batch.request_certificates:
            self.misroutes += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    # Replies carry the shard id; vote tables are garbage collected with
    # the recent-batch window.
    # ------------------------------------------------------------------ #

    def _make_reply_body(self, view: int, seq: int,
                         replies: Tuple[ReplyBody, ...]) -> BatchReplyBody:
        return BatchReplyBody(view=view, seq=seq, replies=tuple(replies),
                              shard=self.shard)

    def _trim_recent(self) -> None:
        super()._trim_recent()
        horizon = self.max_executed - 2 * self.config.checkpoint_interval
        if horizon <= 0:
            return
        self._route_votes = {
            seq: votes for seq, votes in self._route_votes.items() if seq > horizon
        }
        self._route_accepted = {
            seq: digest for seq, digest in self._route_accepted.items()
            if seq > horizon
        }