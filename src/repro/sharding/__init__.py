"""Sharded execution: one agreement cluster, many execution clusters.

The paper separates agreement from execution so that the ``3f + 1`` ordering
cluster never touches application state.  This subsystem exploits the other
direction of that cut: because ordered batches are opaque to the agreement
cluster, the execution side can be partitioned into ``num_shards``
independent ``2g + 1`` clusters -- each owning a key range or hash slice of
the application state -- behind the *same* agreement cluster.  Routing is a
deterministic function of the agreed global order, so sharding adds no
agreement rounds; execution throughput scales with the number of shards
while ordering capacity stays fixed.

* :mod:`~repro.sharding.partitioner` -- deterministic hash / key-range
  partitioners;
* :mod:`~repro.sharding.router` -- operation -> owning shard mapping shared
  by agreement nodes, execution replicas, and clients;
* :mod:`~repro.sharding.queue` -- the shard-routing message queue installed
  in each agreement node;
* :mod:`~repro.sharding.execution` -- shard execution replicas with misroute
  rejection and per-shard checkpoint/state-transfer lifecycles;
* :mod:`~repro.sharding.client` -- clients that collect the ``g + 1`` reply
  quorum from the owning shard only;
* :mod:`~repro.sharding.system` -- :class:`ShardedSystem`, the deployment
  builder.
"""

from .client import ShardAwareClient
from .execution import ShardExecutionNode
from .messages import (
    CrossShardReply,
    CrossShardSubReply,
    CrossShardVote,
    CrossShardVoteFetch,
    MapChange,
    RangeFetch,
    RangeHandoff,
    ShardedBatch,
    ShardLocalBatch,
    SubReplyBody,
    cross_shard_request_of,
    map_change_of,
)
from .partitioner import (
    DEFAULT_SHARD,
    HashPartitioner,
    KeyRangePartitioner,
    MovedRange,
    Partitioner,
    PartitionMap,
    PartitionMapRegistry,
    make_partitioner,
)
from .queue import ShardRouterQueue
from .rebalance import RebalanceController, ShardLoadWindow, apply_map_change
from .router import ShardRouter
from .system import ShardedSystem, sharded_topology

__all__ = [
    "CrossShardReply",
    "CrossShardSubReply",
    "CrossShardVote",
    "CrossShardVoteFetch",
    "DEFAULT_SHARD",
    "HashPartitioner",
    "KeyRangePartitioner",
    "MapChange",
    "SubReplyBody",
    "cross_shard_request_of",
    "MovedRange",
    "PartitionMap",
    "PartitionMapRegistry",
    "Partitioner",
    "RangeFetch",
    "RangeHandoff",
    "RebalanceController",
    "ShardAwareClient",
    "ShardedBatch",
    "ShardedSystem",
    "ShardExecutionNode",
    "ShardLoadWindow",
    "ShardLocalBatch",
    "ShardRouter",
    "ShardRouterQueue",
    "apply_map_change",
    "make_partitioner",
    "map_change_of",
    "sharded_topology",
]
