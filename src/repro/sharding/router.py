"""The shard router: operation -> owning execution cluster, per epoch.

A router pairs a :class:`~repro.sharding.partitioner.Partitioner` with an
application-supplied *key extractor* (e.g.
:func:`repro.apps.kvstore.extract_key`).  The same router instance (or an
identically-configured one) runs in three places:

* in every agreement node's :class:`~repro.sharding.queue.ShardRouterQueue`,
  to demultiplex the globally agreed sequence into per-shard subsequences;
* in every :class:`~repro.sharding.execution.ShardExecutionNode`, to verify
  that each request in a routed batch really belongs to it (misroute
  rejection: a Byzantine agreement node cannot make a shard execute a
  request it does not own);
* in every :class:`~repro.sharding.client.ShardAwareClient`, to know which
  shard's ``g + 1`` reply quorum to wait for.

Determinism across these sites is what makes sharding agreement-free: no
extra protocol round decides ownership, the key does.  With dynamic
rebalancing the mapping is additionally a function of the *partition-map
epoch*: every lookup takes the epoch whose map should answer, and each role
keeps its own epoch cursor advanced at the deterministic cut points the
agreed order defines (``None`` asks the latest known map -- correct only for
epoch-unaware callers such as workload drivers on a not-yet-rebalanced
system).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..messages.request import ClientRequest, EncryptedBody
from ..statemachine.interface import Operation
from .partitioner import DEFAULT_SHARD, Partitioner

#: extracts the routing key from an operation (None = keyless)
KeyExtractor = Callable[[Operation], Optional[str]]

#: extracts *all* routing keys from a multi-key operation (None = single-key)
MultiKeyExtractor = Callable[[Operation], Optional[Tuple[str, ...]]]


def _no_key(_: Operation) -> Optional[str]:
    return None


def _no_keys(_: Operation) -> Optional[Tuple[str, ...]]:
    return None


class ShardRouter:
    """Deterministic (request, epoch) -> shard mapping."""

    def __init__(self, partitioner: Partitioner,
                 key_extractor: Optional[KeyExtractor] = None,
                 multi_key_extractor: Optional[MultiKeyExtractor] = None) -> None:
        self.partitioner = partitioner
        self.key_extractor: KeyExtractor = key_extractor or _no_key
        self.multi_key_extractor: MultiKeyExtractor = (multi_key_extractor
                                                       or _no_keys)
        # Ad-hoc classification counters (the router instance is shared by
        # every role of one system, so these are system-wide totals; they
        # are surfaced through the observability hub's global probes).
        self.single_shard_classified = 0
        self.cross_shard_classified = 0

    def snapshot(self) -> dict:
        """Classification counters for the metrics registry's probes."""
        return {
            "num_shards": self.num_shards,
            "latest_epoch": self.latest_epoch,
            "single_shard_classified": self.single_shard_classified,
            "cross_shard_classified": self.cross_shard_classified,
        }

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    @property
    def latest_epoch(self) -> int:
        return self.partitioner.latest_epoch

    def routing_key(self, request: ClientRequest) -> Optional[str]:
        """The routing key of a client request (None = keyless/opaque)."""
        operation = request.operation
        if isinstance(operation, EncryptedBody):
            return None
        return self.key_extractor(operation)

    def shard_of_operation(self, operation: Operation,
                           epoch: Optional[int] = None) -> int:
        return self.partitioner.shard_of_key(self.key_extractor(operation), epoch)

    def shard_of_request(self, request: ClientRequest,
                         epoch: Optional[int] = None) -> int:
        """Shard owning a client request at ``epoch``.

        Encrypted request bodies (privacy-firewall deployments) hide the key
        from the router; the configuration layer forbids combining sharding
        with the firewall, so an encrypted body here is a protocol violation
        and routes to the default shard rather than crashing the router.
        """
        operation = request.operation
        if isinstance(operation, EncryptedBody):
            return DEFAULT_SHARD
        return self.shard_of_operation(operation, epoch)

    def shards_of_requests(self, requests: List[ClientRequest],
                           epoch: Optional[int] = None) -> List[int]:
        """Distinct owning shards of a batch's requests, in ascending order."""
        return sorted({self.shard_of_request(request, epoch)
                       for request in requests})

    def shards_of_certificates(self, certificates,
                               epoch: Optional[int] = None) -> List[int]:
        """Distinct owning shards of a batch of request *certificates* (the
        shape the agreement layer holds), ascending."""
        return self.shards_of_requests(
            [certificate.payload for certificate in certificates
             if isinstance(certificate.payload, ClientRequest)], epoch)

    # ------------------------------------------------------------------ #
    # Multi-key (cross-shard) classification.
    # ------------------------------------------------------------------ #

    def keys_of_operation(self, operation: Operation) -> Optional[Tuple[str, ...]]:
        """All routing keys of a multi-key operation (None for single-key
        operations, encrypted bodies, and keyless operations)."""
        if isinstance(operation, EncryptedBody):
            return None
        return self.multi_key_extractor(operation)

    def shards_of_operation_keys(self, operation: Operation,
                                 epoch: Optional[int] = None) -> List[int]:
        """Distinct owning shards of *all* of an operation's keys, ascending.

        Single-key (and keyless) operations degenerate to
        ``[shard_of_operation(...)]``, so the result always names at least
        one shard; a length greater than one is exactly the cross-shard
        condition.  Raises ``KeyError`` for an unknown epoch, like every
        other epoch-taking lookup.
        """
        keys = self.keys_of_operation(operation)
        if not keys:
            return [self.shard_of_operation(operation, epoch)]
        return sorted({self.partitioner.shard_of_key(key, epoch)
                       for key in keys})

    def is_cross_shard(self, request: ClientRequest,
                       epoch: Optional[int] = None) -> bool:
        """Whether a request's keys span more than one shard at ``epoch``."""
        operation = request.operation
        if isinstance(operation, EncryptedBody):
            return False
        cross = len(self.shards_of_operation_keys(operation, epoch)) > 1
        if cross:
            self.cross_shard_classified += 1
        else:
            self.single_shard_classified += 1
        return cross
