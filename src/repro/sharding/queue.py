"""The shard-routing message queue.

Each agreement node hosts a :class:`ShardRouterQueue` instead of the plain
:class:`~repro.core.message_queue.MessageQueue`.  The agreement library
establishes the same total order of committed batches on every correct
replica, so each queue can assign per-shard sequence numbers
*deterministically*: when the batch at global sequence ``n`` contains
requests owned by shard ``s``, the queue increments its shard-``s`` counter
and every correct agreement node computes the same ``(s, shard_seq)`` pair.
No extra agreement round is needed to shard -- the paper's separation
already provides the total order, and routing is a pure function of it.

Batches may be *staged* out of global order (``stage_batch``, used by
``PipelineConfig.ooo_shard_delivery``: a replica hands a batch over the
moment it commits locally, even while an earlier sequence number is still
gathering commit votes).  The queue buffers such arrivals and releases each
shard's parts along a **per-shard frontier over the global order**: a batch
reaches shard ``s`` as soon as every earlier batch is staged -- there is no
waiting for earlier batches to be *answered*, so a stalled shard never
holds back another shard's feed -- and the shard-local sequence numbers
assigned at release are a pure function of the committed prefix.

A batch touching requests of several shards (possible when ``bundle_size >
1``) is sent to *every* owning shard; each shard executes only the subset it
owns, so cross-shard bundles cost bandwidth but never violate ownership.

**Epoch cuts.**  With dynamic rebalancing, a
:class:`~repro.sharding.messages.MapChange` config operation occupies one
global sequence number, and the release frontier gives it deterministic cut
semantics for free: every batch released before the marker is routed by the
old partition map, the marker itself is routed to *every* cluster (each
assigns it the next shard-local sequence number, so each cluster meets the
cut at a well-defined point in its own order), the queue applies the change
(or deterministically no-ops it, if a concurrent cut made its parent epoch
stale), and every batch after it routes by the new map.  Envelopes carry the
routing epoch, which becomes part of the ``f + 1``-vouched route binding at
the execution replicas.

The queue also keeps the **per-shard load counters** the rebalancer reads:
released requests per cluster and per key over the current observation
window (reset at each cut, so the window always describes the live map).
Counting at release time means the counters are a pure function of the
committed prefix -- identical on every correct replica at the same log
position -- so the primary's proposals are reproducible.

Reply certificates are assembled per shard: ``g + 1`` matching
authenticators must come from the replicas of the shard named inside the
(authenticated) reply body, so a quorum can never be assembled across
clusters -- ``g`` Byzantine nodes *per shard* are tolerated, not ``g``
Byzantine nodes total.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..agreement.local import RetryOutcome
from ..config import AuthenticationScheme, SystemConfig
from ..core.message_queue import MessageQueue, PendingSend, _ReplyCollector
from ..crypto.certificate import Certificate
from ..messages.agreement import OrderedBatch
from ..messages.reply import BatchReply, BatchReplyBody, ClientReply
from ..messages.request import ClientRequest
from ..sim.process import Process
from ..statemachine.nondet import NonDetInput
from ..util.ids import NodeId
from .messages import ShardedBatch, cross_shard_request_of, map_change_of
from .rebalance import ShardLoadWindow, apply_map_change
from .router import ShardRouter

#: (shard, shard-local sequence number)
ShardPart = Tuple[int, int]


class ShardRouterQueue(MessageQueue):
    """Local state machine of one agreement node in the sharded architecture."""

    def __init__(self, owner: Process, config: SystemConfig,
                 shard_execution_ids: List[List[NodeId]],
                 client_ids: List[NodeId], router: ShardRouter,
                 shard_threshold_groups: Optional[List[str]] = None) -> None:
        all_execution = [node for shard in shard_execution_ids for node in shard]
        super().__init__(owner=owner, config=config, execution_ids=all_execution,
                         downstream=all_execution, client_ids=client_ids,
                         threshold_group=None)
        self.router = router
        self.shard_execution_ids = [list(ids) for ids in shard_execution_ids]
        self.shard_threshold_groups = shard_threshold_groups
        self.num_shards = router.num_shards

        #: per-shard next local sequence number (deterministic across replicas)
        self._next_shard_seq: List[int] = [0] * self.num_shards
        #: committed batches staged out of global order, keyed by global seq
        self._staged: Dict[int, OrderedBatch] = {}
        #: highest global sequence number released to the shard frontiers
        #: (every batch at or below it has been routed)
        self._released_seq = 0
        #: book-keeping for batches awaiting their reply, keyed by shard part
        self.shard_pending: Dict[ShardPart, PendingSend] = {}
        #: shard parts not yet answered, per shard: shard_seq -> global seq
        self._unanswered: List[Dict[int, int]] = [dict() for _ in range(self.num_shards)]
        #: global seq -> number of shard parts still awaiting a reply
        self._parts_outstanding: Dict[int, int] = {}
        #: global sequence numbers fully answered above the watermark
        self._answered: Set[int] = set()
        #: reply-certificate assembly, keyed by (shard, shard_seq, body digest)
        self._shard_collectors: Dict[Tuple[int, int, bytes], _ReplyCollector] = {}

        #: this node's partition-map epoch cursor: the epoch governing the
        #: *next* released batch (advanced exactly at map-change markers)
        self.epoch = 0
        #: released-request load counters over the current observation window
        self.load_window = ShardLoadWindow(num_clusters=self.num_shards)
        #: cumulative released requests per cluster (never reset; the
        #: example and benchmarks read these for observability)
        self.routed_by_shard: List[int] = [0] * self.num_shards

        # Statistics.
        self.misrouted_replies = 0
        self.epoch_cuts = 0
        self.map_changes_rejected = 0
        self.cross_shard_markers = 0

        #: frontier snapshots at checkpoint cuts: global seq -> (per-shard
        #: next sequence numbers, epoch cursor), captured the moment the
        #: release frontier crosses the cut so the snapshot is a pure
        #: function of the released prefix (release may run ahead of the
        #: delivery pass that emits the checkpoint vote)
        self._sync_snapshots: Dict[int, Tuple[Tuple[int, ...], int]] = {}

        # Observability (passive): time each batch spends buffered between
        # staging (local commit) and release along the per-shard frontier.
        self._staged_at: Dict[int, float] = {}
        self._h_stall = owner.metrics.histogram("shardqueue.frontier_stall_ms")
        self._c_released = owner.metrics.counter("shardqueue.batches_released")
        self._g_staged = owner.metrics.gauge("shardqueue.staged_depth")
        owner.metrics.register_probe("shardqueue.state", self._shard_probe)

    def _shard_probe(self) -> dict:
        """Snapshot of the router queue's ad-hoc counters and occupancy."""
        return {
            "epoch": self.epoch,
            "epoch_cuts": self.epoch_cuts,
            "map_changes_rejected": self.map_changes_rejected,
            "cross_shard_markers": self.cross_shard_markers,
            "misrouted_replies": self.misrouted_replies,
            "routed_by_shard": list(self.routed_by_shard),
            "shard_outstanding": [len(parts) for parts in self._unanswered],
            "staged_depth": len(self._staged),
            "load_window": self.load_window.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # LocalExecutor interface: routing agreed batches.
    # ------------------------------------------------------------------ #

    def execute_batch(self, seq: int, view: int,
                      request_certificates: Tuple[Certificate, ...],
                      agreement_certificate: Certificate,
                      nondet: NonDetInput) -> None:
        # The agreement replica's contiguous delivery pass; batches already
        # staged (and released) through the out-of-order path are skipped.
        self.stage_batch(seq=seq, view=view,
                         request_certificates=request_certificates,
                         agreement_certificate=agreement_certificate,
                         nondet=nondet)

    def stage_batch(self, seq: int, view: int,
                    request_certificates: Tuple[Certificate, ...],
                    agreement_certificate: Certificate,
                    nondet: NonDetInput) -> None:
        """Accept a *committed* batch in any global-sequence order.

        Batches are buffered until every earlier global sequence number has
        been staged, then released along the per-shard frontiers in global
        order.  The shard-local sequence numbers assigned at release time
        are therefore a pure function of the committed prefix -- identical
        on every correct replica no matter how far out of order the commits
        completed locally -- which is what keeps sharding agreement-free
        even with ``PipelineConfig.ooo_shard_delivery``.
        """
        if seq <= self._released_seq or seq in self._staged:
            return
        self.max_n = max(self.max_n, seq)
        self._staged[seq] = OrderedBatch(
            seq=seq, view=view,
            request_certificates=tuple(request_certificates),
            agreement_certificate=agreement_certificate, nondet=nondet)
        self._staged_at[seq] = self.owner.now
        if self.owner.tracing:
            self._trace_requests(tuple(request_certificates), "stage")
        self._advance_release_frontier()
        self._g_staged.set(len(self._staged))

    def _advance_release_frontier(self) -> None:
        """Release staged batches in global order until a gap (or a hold).

        ``_release_hold`` lets a subclass pause the frontier at a specific
        batch -- the multi-log queue holds a cross-group marker until its
        certified cross-log cut arrives -- and resume by calling this method
        again once the hold clears.  The base queue never holds, so this is
        exactly the old contiguous release loop.
        """
        while True:
            next_batch = self._staged.get(self._released_seq + 1)
            if next_batch is None or self._release_hold(next_batch):
                return
            self._released_seq += 1
            del self._staged[self._released_seq]
            self._route_batch(next_batch)
            self._note_checkpoint_cut(self._released_seq)

    def _release_hold(self, batch: OrderedBatch) -> bool:
        """Whether the frontier must pause before releasing ``batch``."""
        return False

    def _route_batch(self, batch: OrderedBatch) -> None:
        """Advance the per-shard frontiers over one released batch."""
        staged_at = self._staged_at.pop(batch.seq, None)
        if staged_at is not None:
            self._h_stall.observe(self.owner.now - staged_at)
        self._c_released.inc()
        if self.owner.tracing:
            self._trace_requests(batch.request_certificates, "release")
        change = map_change_of(batch.request_certificates)
        if change is not None:
            # A map-change marker is routed to *every* cluster -- each one
            # assigns it the next shard-local sequence number, so each
            # cluster's replicas meet the epoch cut at a deterministic point
            # in their own execution order (clusters untouched by the move
            # just bump their epoch and reply).  The envelope is stamped
            # with the epoch the marker *closes*.
            shards = list(range(self.num_shards))
        elif (cross := self._cross_shard_marker_of(batch)) is not None:
            # A cross-shard marker is routed to every cluster its keys
            # touch *at the release epoch* -- the release frontier has
            # already fed each of those shards every earlier batch of the
            # agreed order, so the marker's slot in each shard's local
            # sequence is a consistent cut over the global prefix.  The
            # routing epoch rides in the vouched binding like any other
            # batch; the operation's own *pinned* epoch is judged against
            # it at execution, where a mismatch aborts deterministically.
            shards = self.router.shards_of_operation_keys(cross.operation,
                                                          epoch=self.epoch)
            self.cross_shard_markers += 1
            self._note_load(batch)
        else:
            certificates = batch.request_certificates
            if self.config.cross_shard.enabled and len(certificates) > 1:
                # A cross-shard request smuggled into a mixed bundle (only
                # a faulty primary builds one -- honest primaries order
                # markers alone) is excluded from routing at the release
                # epoch, the same epoch execution replicas judge ownership
                # at: no shard ever executes it against partial state, and
                # the client's retransmission re-orders it as a marker.
                certificates = tuple(
                    certificate for certificate in certificates
                    if not (isinstance(certificate.payload, ClientRequest)
                            and self.router.is_cross_shard(certificate.payload,
                                                           epoch=self.epoch)))
            shards = self.router.shards_of_certificates(certificates,
                                                        epoch=self.epoch)
            self._note_load(batch)
        shards = self._owned_route_targets(batch, shards)
        if not shards:
            # Every request was excluded: the slot is vacuously answered so
            # the pipeline accounting never waits on a reply nobody owes.
            self._answered.add(batch.seq)
            while (self.highest_reply_seq + 1) in self._answered:
                self.highest_reply_seq += 1
                self._answered.discard(self.highest_reply_seq)
            return
        self._parts_outstanding[batch.seq] = len(shards)
        for shard in shards:
            self._next_shard_seq[shard] += 1
            shard_seq = self._next_shard_seq[shard]
            envelope = ShardedBatch(shard=shard, shard_seq=shard_seq,
                                    batch=batch, epoch=self.epoch,
                                    log=self._ordering_log())
            self._unanswered[shard][shard_seq] = batch.seq
            pending = PendingSend(batch=envelope,
                                  timeout_ms=self.config.timers.agreement_retransmit_ms)
            self.shard_pending[(shard, shard_seq)] = pending
            # Unlike the unsharded queue, every agreement node multicasts the
            # envelope immediately (ignoring primary_sends_first): shard_seq
            # is not covered by the agreement certificate, so execution
            # replicas accept a routing binding only after f + 1 distinct
            # agreement nodes vouch for it -- the extra sends are what let
            # that quorum form without waiting for retransmission timeouts.
            self._send_to_shard(shard, envelope)
            self._arm_shard_timer(pending)
        if change is not None:
            self._apply_cut(change)

    def _owned_route_targets(self, batch: OrderedBatch, shards):
        """The subset of ``shards`` this queue actually routes to.

        The base queue owns every shard.  A multi-log queue owns only its
        log group's shards and filters here, so a batch whose targets all
        live in other groups falls through to the vacuous-answer path and
        the pipeline accounting never waits on a reply another log's
        clusters owe.
        """
        return shards

    def _ordering_log(self):
        """The agreement log this queue orders for (stamped into routed
        envelopes and carried through to sub-reply fragments, whose marker
        sequence numbers live in per-log spaces).  None for the single-log
        base queue, which keeps the field off the wire."""
        return None

    def _cross_shard_marker_of(self, batch: OrderedBatch):
        """The batch's client request if it is a cross-shard marker here.

        Judged at this queue's *release* epoch, so every correct replica
        classifies identically at the same log position: a multi-key
        request whose keys collapsed onto one shard (a rebalance merged
        them between ordering and release) simply routes as a normal batch
        and executes locally on that shard.
        """
        if not self.config.cross_shard.enabled:
            return None
        request = cross_shard_request_of(batch.request_certificates)
        if request is None or not self.router.is_cross_shard(request,
                                                             epoch=self.epoch):
            return None
        return request

    def _note_load(self, batch: OrderedBatch) -> None:
        """Count one released batch into the rebalancer's load window."""
        for certificate in batch.request_certificates:
            request = certificate.payload
            if not isinstance(request, ClientRequest):
                continue
            keys = self.router.keys_of_operation(request.operation)
            if keys:
                # Multi-key operation: every key loads its own cluster.
                for key in keys:
                    cluster = self.router.partitioner.shard_of_key(
                        key, self.epoch)
                    self.load_window.note(cluster, key)
                    self.routed_by_shard[cluster] += 1
                continue
            key = self.router.routing_key(request)
            cluster = self.router.shard_of_request(request, epoch=self.epoch)
            self.load_window.note(cluster, key)
            self.routed_by_shard[cluster] += 1

    def _apply_cut(self, change) -> None:
        """Apply a released map change (or deterministically no-op it).

        Runs at the same position of the global order on every correct
        replica, against the same current map -- so either all of them move
        to the new epoch here, or all of them reject the change as stale.
        The load window resets either way: post-cut traffic is judged
        against the map that now routes it.
        """
        registry = getattr(self.router.partitioner, "registry", None)
        if registry is None:
            self.map_changes_rejected += 1
            return  # hash partitioning never rebalances
        new_map = apply_map_change(registry.map_for(self.epoch), change)
        if new_map is None:
            self.map_changes_rejected += 1
            return
        registry.append(new_map)
        self.epoch = new_map.epoch
        self.epoch_cuts += 1
        self.load_window.reset()

    def _send_to_shard(self, shard: int, envelope: ShardedBatch) -> None:
        self.owner.multicast(self.shard_execution_ids[shard], envelope)
        self.batches_sent += 1

    def _arm_shard_timer(self, pending: PendingSend) -> None:
        envelope: ShardedBatch = pending.batch
        part = (envelope.shard, envelope.shard_seq)
        pending.timer = self.owner.set_timer(
            pending.timeout_ms,
            lambda part=part: self._on_shard_retransmit_timeout(part),
            label=f"{self.owner.node_id}:mq-retransmit:s{part[0]}:{part[1]}",
        )

    def _on_shard_retransmit_timeout(self, part: ShardPart) -> None:
        pending = self.shard_pending.get(part)
        if pending is None:
            return
        self._send_to_shard(part[0], pending.batch)
        self.retransmissions += 1
        pending.retransmissions += 1
        pending.timeout_ms *= 2
        self._arm_shard_timer(pending)

    def retry_hint(self, request_certificate: Certificate) -> RetryOutcome:
        """Serve a client retransmission from the cache or pending sends."""
        request: ClientRequest = request_certificate.payload
        cached = self.cache.get(request.client)
        if (self.config.use_reply_cache and cached is not None
                and cached.reply.timestamp >= request.timestamp):
            self.owner.send(request.client, cached)
            self.cache_hits += 1
            return RetryOutcome.HANDLED
        if (self.config.cross_shard.enabled
                and self.router.is_cross_shard(request, epoch=self.epoch)):
            # A cross-shard marker has one pending part per *touched* shard
            # and every touched cluster contributes to the answer: resend
            # them all.  Duplicate markers reaching an execution replica
            # that already executed make it re-serve its cached sub-reply
            # (and any assembled reply), which is also how a crashed
            # collator's duty falls over to the other touched clusters.
            handled = False
            for part, pending in self.shard_pending.items():
                envelope: ShardedBatch = pending.batch
                for cert in envelope.batch.request_certificates:
                    pending_request: ClientRequest = cert.payload
                    if (isinstance(pending_request, ClientRequest)
                            and pending_request.client == request.client
                            and pending_request.timestamp == request.timestamp):
                        self._send_to_shard(part[0], envelope)
                        self.retransmissions += 1
                        handled = True
            return RetryOutcome.HANDLED if handled else RetryOutcome.NEED_ORDER
        # A multi-shard bundle has one pending part per owning shard, each
        # carrying the full request list; resend only to the shard that owns
        # the retransmitted request -- the others cannot regenerate its
        # reply.  Ownership is judged by the *current* epoch; a part routed
        # pre-cut for a since-moved key is retransmitted by its own
        # pending-send timer regardless.
        owner = self.router.shard_of_request(request, epoch=self.epoch)
        for part, pending in self.shard_pending.items():
            if part[0] != owner:
                continue
            envelope: ShardedBatch = pending.batch
            for cert in envelope.batch.request_certificates:
                pending_request: ClientRequest = cert.payload
                if (pending_request.client == request.client
                        and pending_request.timestamp == request.timestamp):
                    self._send_to_shard(owner, envelope)
                    self.retransmissions += 1
                    return RetryOutcome.HANDLED
        return RetryOutcome.NEED_ORDER

    def highest_ready_seq(self) -> Optional[int]:
        """Pipeline back-pressure watermark.

        With sharding, replies complete out of global order (a fast shard can
        answer global sequence 9 before a slow one answers 3), so the
        watermark is the highest *contiguously* answered global sequence
        number -- the conservative bound that keeps the paper's pipeline
        invariant (at most ``P`` unanswered sequence numbers) intact.  With
        ``PipelineConfig.per_shard_depth`` the agreement replica bypasses
        this global floor and gates on :meth:`shard_outstanding` instead.
        """
        return self.highest_reply_seq

    def seq_answered(self, seq: int) -> bool:
        """Whether every shard part of global sequence ``seq`` is answered
        (true above the contiguous watermark for out-of-order completions)."""
        return seq <= self.highest_reply_seq or seq in self._answered

    def shard_outstanding(self, shard: int) -> int:
        """Batches released towards ``shard`` but not yet answered -- the
        per-shard pipeline occupancy the skew-aware admission gate checks."""
        return len(self._unanswered[shard])

    # ------------------------------------------------------------------ #
    # Checkpoint state transfer.
    # ------------------------------------------------------------------ #

    def _note_checkpoint_cut(self, seq: int) -> None:
        """Snapshot the routing frontiers when release crosses a checkpoint.

        Captured here -- not when the checkpoint vote is emitted -- because
        out-of-order staging lets the release frontier run ahead of the
        hosting replica's contiguous delivery pass: the vote must describe
        the state at exactly the cut, a pure function of the released
        prefix, identical on every correct replica.
        """
        if seq % self.config.checkpoint_interval == 0:
            self._sync_snapshots[seq] = (tuple(self._next_shard_seq), self.epoch)

    def checkpoint_sync_state(self, seq: int) -> Tuple[Tuple[str, object], ...]:
        """Transferable frontier state at the checkpoint cut: the per-shard
        sequence counters and the epoch cursor.  A replica that adopts these
        assigns the same ``(shard, shard_seq)`` pairs to future batches as
        the replicas that actually released the gap."""
        snapshot = self._sync_snapshots.get(seq)
        if snapshot is None:
            return ()  # not a checkpoint boundary (defensive)
        frontiers, epoch = snapshot
        return (("frontiers", frontiers), ("epoch", epoch))

    def on_stable_checkpoint(self, seq: int) -> None:
        self._sync_snapshots = {
            cut: snapshot for cut, snapshot in self._sync_snapshots.items()
            if cut > seq
        }

    def sync_to_checkpoint(self, seq: int,
                           sync_state: Tuple[Tuple[str, object], ...]) -> None:
        """Adopt a quorum-certified checkpoint cut this queue fell behind.

        The skipped batches were released, routed, and answered by the
        other replicas' queues; this queue will never see them.  Jumping
        ``_released_seq`` alone would be unsound -- future batches would be
        assigned stale shard-local sequence numbers that execution replicas
        ignore, wedging this node the moment it becomes primary -- so the
        digest-verified frontier state from the checkpoint votes is adopted
        wholesale.  The reply watermark advances vacuously (the gap's
        replies were collected elsewhere) and load counters simply miss the
        gap: they feed a rebalancing heuristic, not a safety argument.
        """
        state = dict(sync_state)
        frontiers = state.get("frontiers")
        if frontiers is not None and len(frontiers) == self.num_shards:
            self._next_shard_seq = list(frontiers)
        epoch = state.get("epoch")
        registry = getattr(self.router.partitioner, "registry", None)
        if (epoch is not None and epoch > self.epoch and registry is not None
                and registry.has_epoch(epoch)):
            # The maps themselves are derived deterministically from the
            # agreed config-operation history (shared registry); only the
            # cursor needs transferring.
            self.epoch = epoch
            self.load_window.reset()
        self.max_n = max(self.max_n, seq)
        for stale in [n for n in self._staged if n <= seq]:
            self._staged.pop(stale)
            self._staged_at.pop(stale, None)
        if seq > self._released_seq:
            self._released_seq = seq
            self._advance_release_frontier()
        self._g_staged.set(len(self._staged))
        if seq > self.highest_reply_seq:
            self.highest_reply_seq = seq
            self._answered = {n for n in self._answered if n > seq}
            while (self.highest_reply_seq + 1) in self._answered:
                self.highest_reply_seq += 1
                self._answered.discard(self.highest_reply_seq)

    def cross_shard_probe(self):
        """The agreement replica's cross-shard request probe.

        Maps a client request to the ascending list of shards its keys
        touch at this queue's live epoch (None for single-shard requests),
        so the primary orders multi-shard requests as single-certificate
        marker batches.  Classification at *release* time -- by this very
        queue -- stays authoritative: if the epoch moves between ordering
        and release, the release-epoch touched set routes the marker.
        """
        def probe(request: ClientRequest):
            if not self.router.is_cross_shard(request, epoch=self.epoch):
                return None
            return self.router.shards_of_operation_keys(request.operation,
                                                        epoch=self.epoch)

        return probe

    def request_classifier(self):
        """The deterministic request -> shard mapping (for the primary's
        per-shard batching and admission).  Reads this queue's live epoch,
        so freshly admitted requests are queued by the map that will route
        them; requests already queued under an older epoch are re-judged at
        release time, where routing is authoritative."""
        return lambda request: self.router.shard_of_request(request,
                                                            epoch=self.epoch)

    def load_observation(self):
        """The rebalance controller's inputs: the current observation
        window and the partition map it describes."""
        registry = getattr(self.router.partitioner, "registry", None)
        pmap = registry.map_for(self.epoch) if registry is not None else None
        return self.load_window, pmap

    # ------------------------------------------------------------------ #
    # Reply certificates from the execution clusters.
    # ------------------------------------------------------------------ #

    def on_batch_reply(self, sender: NodeId, message: BatchReply) -> None:
        body = message.body
        if body.seq != message.seq:
            return
        shard = body.shard
        if shard is None or not 0 <= shard < self.num_shards:
            self.misrouted_replies += 1
            return
        full = self._assemble_shard(body, message.certificate)
        if full is None:
            return
        self._accept_shard_reply(body, full)

    def _assemble_shard(self, body: BatchReplyBody,
                        certificate: Certificate) -> Optional[Certificate]:
        """Merge partials until ``g + 1`` *same-shard* signers vouch for the body."""
        shard = body.shard
        default_group = (self.shard_threshold_groups[shard]
                         if self.shard_threshold_groups is not None else None)
        return self._assemble_into(self._shard_collectors, (shard,), body,
                                   certificate,
                                   universe=self.shard_execution_ids[shard],
                                   default_group=default_group)

    def _accept_shard_reply(self, body: BatchReplyBody,
                            certificate: Certificate) -> None:
        """A full reply certificate for shard part ``(body.shard, body.seq)``."""
        shard, shard_seq = body.shard, body.seq
        # The shard executes in shard-local order, so a reply for shard_seq
        # settles every part of this shard at or below it.
        for part in [key for key in self.shard_pending
                     if key[0] == shard and key[1] <= shard_seq]:
            pending = self.shard_pending.pop(part)
            if pending.timer is not None:
                pending.timer.cancel()
        settled = [s for s in self._unanswered[shard] if s <= shard_seq]
        for s in sorted(settled):
            global_seq = self._unanswered[shard].pop(s)
            remaining = self._parts_outstanding.get(global_seq, 0) - 1
            if remaining <= 0:
                self._parts_outstanding.pop(global_seq, None)
                if global_seq > self.highest_reply_seq:
                    # A checkpoint sync may have moved the watermark past a
                    # still-pending part; its late reply must not linger.
                    self._answered.add(global_seq)
            else:
                self._parts_outstanding[global_seq] = remaining
        while (self.highest_reply_seq + 1) in self._answered:
            self.highest_reply_seq += 1
            self._answered.discard(self.highest_reply_seq)
        # Garbage collect assembly state for old parts of this shard.
        horizon = shard_seq - self.config.pipeline_depth
        self._shard_collectors = {
            key: value for key, value in self._shard_collectors.items()
            if key[0] != shard or key[1] > horizon
        }
        # Forward each client its reply and update the cache.
        for reply in body.replies:
            client_reply = ClientReply(reply=reply, body=body, certificate=certificate)
            if self.config.use_reply_cache:
                cached = self.cache.get(reply.client)
                if cached is None or cached.reply.timestamp <= reply.timestamp:
                    self.cache[reply.client] = client_reply
            self.owner.send(reply.client, client_reply)
            self.replies_forwarded += 1
        self._notify_pipeline_progress()
