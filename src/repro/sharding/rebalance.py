"""Dynamic shard rebalancing: load-triggered partition-map changes.

The static partitioner chosen at construction time is only right for the
workload it was chosen for; a hot key range saturates one execution cluster
while the others idle.  This module closes the loop:

1. **Trigger** -- every :class:`~repro.sharding.queue.ShardRouterQueue`
   already counts, per observation window, how many released requests each
   cluster (and each key) received.  The :class:`RebalanceController`
   attached to the *primary* agreement replica inspects those counters on a
   timer.
2. **Agreement** -- when a cluster is hot (or two adjacent ranges are cold),
   the controller builds a :class:`~repro.sharding.messages.MapChange` and
   the primary orders it through the ordinary agreement log as a config
   operation: no new protocol phase, the change is just a batch.
3. **Cut** -- the change's position in the agreed global order is the epoch
   cut.  Each shard router releases epoch-``e`` traffic up to the marker,
   applies the change (:func:`apply_map_change` -- deterministically a
   no-op if the change lost a race with a concurrent cut), and routes
   everything after it by epoch ``e + 1``.
4. **Handoff** -- execution clusters hand the moved ranges' state off at
   their own in-stream cut points (see
   :class:`~repro.sharding.execution.ShardExecutionNode`).

Every decision input is a deterministic function of the released (committed)
traffic, so benchmark runs replay bit-identically for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import RebalanceConfig
from .messages import MapChange
from .partitioner import PartitionMap, key_in_range


def apply_map_change(pmap: PartitionMap, change: MapChange) -> Optional[PartitionMap]:
    """Apply ``change`` to ``pmap``; ``None`` if it is not applicable.

    This is the *cut-time* validity judgement: every correct node evaluates
    it at the same position in the agreed order against the same current
    map, so all of them either apply the change or all treat it as a no-op.
    A change whose ``parent_epoch`` is stale (a concurrent cut won the race)
    or whose keys no longer fit the current boundaries is rejected here --
    never half-applied.
    """
    if change.parent_epoch != pmap.epoch:
        return None
    if not change.well_formed(pmap.num_clusters):
        return None
    try:
        if change.kind == "split":
            return pmap.split(change.key, change.owner)
        if change.kind == "merge":
            return pmap.merge(change.key)
        if change.kind == "move":
            return pmap.move_boundary(change.key, change.to_key)
    except Exception:
        return None
    return None


@dataclass
class ShardLoadWindow:
    """Released-request counters over one observation window.

    Maintained by each shard router (counting at release time, i.e. over
    *committed* traffic, so all replicas observe identical values at the
    same log position); reset at every epoch cut so the window always
    describes the current map.
    """

    num_clusters: int
    requests_by_cluster: List[int] = field(default_factory=list)
    requests_by_key: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.requests_by_cluster:
            self.requests_by_cluster = [0] * self.num_clusters

    @property
    def total(self) -> int:
        return sum(self.requests_by_cluster)

    def note(self, cluster: int, key: Optional[str]) -> None:
        self.requests_by_cluster[cluster] += 1
        if key is not None:
            self.requests_by_key[key] = self.requests_by_key.get(key, 0) + 1

    def reset(self) -> None:
        self.requests_by_cluster = [0] * self.num_clusters
        self.requests_by_key.clear()

    def snapshot(self) -> dict:
        """Window totals for the metrics registry's probes (keys elided --
        only their count, so snapshots stay bounded under hot-key skew)."""
        return {
            "total": self.total,
            "requests_by_cluster": list(self.requests_by_cluster),
            "distinct_keys": len(self.requests_by_key),
        }


def split_point(window: ShardLoadWindow, pmap: PartitionMap,
                range_index: int) -> Optional[str]:
    """The weighted-median key of a range's observed traffic.

    Splitting at the median sends (approximately) half the range's observed
    load to the new owner.  ``None`` when the range's traffic concentrates
    on a single key or its head -- one key cannot be split, and a boundary
    equal to the range's first loaded key would move everything (a plain
    ownership move, which the ``move`` policy covers, not a split).
    """
    lo, hi = pmap.range_bounds(range_index)
    keys = sorted(key for key in window.requests_by_key
                  if key_in_range(key, lo, hi))
    if len(keys) < 2:
        return None
    total = sum(window.requests_by_key[key] for key in keys)
    running = 0
    for key in keys:
        running += window.requests_by_key[key]
        if running * 2 >= total:
            median = key
            break
    # The split boundary is the first loaded key *after* the median mass,
    # so both halves keep at least one loaded key.
    later = [key for key in keys if key > median]
    if not later:
        later = keys[1:]
    return later[0] if later else None


class RebalanceController:
    """The primary's load-watching policy loop.

    ``propose(...)`` is consulted on a timer by the hosting agreement
    replica (only when it is the primary) and returns the next
    :class:`MapChange` to order, or ``None``.  The controller is
    intentionally simple -- split the hottest range of a hot cluster toward
    the least-loaded cluster, merge adjacent cold ranges, honour a cooldown
    -- and entirely mechanical: richer policies (e.g. the approximate-MDP
    controllers of the dynamic-resource-management literature) can replace
    it behind the same two-method surface.
    """

    def __init__(self, config: RebalanceConfig) -> None:
        config.validate()
        self.config = config
        self._last_proposed_at: Optional[float] = None
        # Statistics (benchmarks and the example read these).
        self.splits_proposed = 0
        self.merges_proposed = 0
        self.moves_proposed = 0

    @property
    def proposals(self) -> int:
        return self.splits_proposed + self.merges_proposed + self.moves_proposed

    def snapshot(self) -> dict:
        """Proposal counters for the metrics registry's probes."""
        return {
            "splits_proposed": self.splits_proposed,
            "merges_proposed": self.merges_proposed,
            "moves_proposed": self.moves_proposed,
            "last_proposed_at_ms": self._last_proposed_at,
        }

    def propose(self, window: ShardLoadWindow, pmap: PartitionMap,
                now: float) -> Optional[MapChange]:
        """The next map change worth ordering, or ``None``.

        Side-effect free: the caller reports back with :meth:`note_ordered`
        once the change actually entered the log, and only then does the
        cooldown start -- a proposal the primary had to drop (log watermark
        full, view change in progress) must not silence the controller for
        a whole cooldown while the hot shard stays saturated.
        """
        if not self.config.enabled:
            return None
        if (self._last_proposed_at is not None
                and now - self._last_proposed_at < self.config.cooldown_ms):
            return None
        if window.total < self.config.min_window_requests:
            return None
        return (self._propose_split(window, pmap)
                or self._propose_merge(window, pmap))

    def note_ordered(self, change: MapChange, now: float) -> None:
        """Record that ``change`` was ordered: start the cooldown and count it."""
        self._last_proposed_at = now
        if change.kind == "split":
            self.splits_proposed += 1
        elif change.kind == "merge":
            self.merges_proposed += 1
        else:
            self.moves_proposed += 1

    # ------------------------------------------------------------------ #
    # Policies.
    # ------------------------------------------------------------------ #

    def _range_loads(self, window: ShardLoadWindow,
                     pmap: PartitionMap) -> List[int]:
        loads = [0] * pmap.num_ranges
        for key, count in window.requests_by_key.items():
            loads[pmap.range_of_key(key)] += count
        return loads

    def _propose_split(self, window: ShardLoadWindow,
                       pmap: PartitionMap) -> Optional[MapChange]:
        if pmap.num_ranges >= self.config.max_ranges:
            return None
        per_cluster = window.requests_by_cluster
        mean = window.total / max(len(per_cluster), 1)
        hot = max(range(len(per_cluster)), key=lambda c: per_cluster[c])
        if per_cluster[hot] < self.config.hot_ratio * mean:
            return None
        cold = min(range(len(per_cluster)), key=lambda c: per_cluster[c])
        if cold == hot:
            return None
        range_loads = self._range_loads(window, pmap)
        hot_ranges = pmap.ranges_of_owner(hot)
        if not hot_ranges:
            return None
        busiest = max(hot_ranges, key=lambda r: range_loads[r])
        at = split_point(window, pmap, busiest)
        if at is None or at in pmap.boundaries:
            return None
        return MapChange(kind="split", parent_epoch=pmap.epoch, key=at,
                         owner=cold)

    def _propose_merge(self, window: ShardLoadWindow,
                       pmap: PartitionMap) -> Optional[MapChange]:
        # Never merge below the deployment's construction-time granularity:
        # the initial map gave each cluster one range, and keeping at least
        # that many ranges means a later hotspot always has somewhere to go.
        if pmap.num_ranges <= pmap.num_clusters:
            return None
        per_cluster = window.requests_by_cluster
        mean = window.total / max(len(per_cluster), 1)
        ceiling = self.config.cold_ratio * mean
        range_loads = self._range_loads(window, pmap)
        best: Optional[int] = None
        for index in range(pmap.num_ranges - 1):
            # Only the *ranges* need to be cold: their owners may be busy
            # with the current hotspot elsewhere, and merging two abandoned
            # ranges moves next to no state while shrinking the map.
            if range_loads[index] > ceiling or range_loads[index + 1] > ceiling:
                continue
            if best is None or (range_loads[index] + range_loads[index + 1]
                                < range_loads[best] + range_loads[best + 1]):
                best = index
        if best is None:
            return None
        return MapChange(kind="merge", parent_epoch=pmap.epoch,
                         key=pmap.boundaries[best])
