"""Shard-aware clients.

A client of the sharded service computes -- with the same deterministic
router every replica uses -- which shard owns each operation it submits, and
then accepts a reply only when ``g + 1`` matching authenticators come from
*that shard's* ``2g + 1`` execution replicas.  A certificate assembled from
another shard's replicas (or a reply body whose authenticated ``shard`` field
does not match the expected owner) is rejected and counted in
:attr:`ShardAwareClient.misrouted_replies`: without this check, ``g + 1``
Byzantine nodes spread across *different* shards could forge a reply even
though no single shard exceeds its fault bound.

**Rebalancing.**  The client keeps its own partition-map epoch cursor;
requests are routed (for reply-quorum purposes -- submission always goes to
the agreement cluster) by the newest map the client knows.  When a rebalance
moves the key mid-flight, the reply arrives from the *new* owner carrying a
newer ``epoch`` inside the authenticated reply body.  The client advances
only when that claim is consistent: the epoch must exist in the agreed map
history and map the pending operation's key to exactly the shard the reply
names -- and even then the reply completes only with ``g + 1`` matching
authenticators from *that* shard's replicas, so a forged epoch buys an
attacker nothing the fault bounds didn't already concede.  A reply naming a
shard no known epoch supports is counted as misrouted, exactly like a wrong
shard was before rebalancing existed.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config import SystemConfig
from ..core.client import ClientNode, CompletedRequest
from ..crypto.keys import Keystore
from ..messages.reply import ClientReply
from ..net.message import Message
from ..sim.scheduler import Scheduler
from ..statemachine.interface import Operation
from ..util.ids import NodeId
from .router import ShardRouter


class ShardAwareClient(ClientNode):
    """A client that routes requests to shards and votes per-shard replies."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, agreement_ids: List[NodeId],
                 request_verifiers: List[NodeId],
                 shard_execution_ids: List[List[NodeId]],
                 router: ShardRouter,
                 shard_threshold_groups: Optional[List[str]] = None) -> None:
        all_execution = [node for shard in shard_execution_ids for node in shard]
        super().__init__(node_id=node_id, scheduler=scheduler, config=config,
                         keystore=keystore, agreement_ids=agreement_ids,
                         request_verifiers=request_verifiers,
                         reply_quorum=config.reply_quorum,
                         reply_universe=all_execution,
                         threshold_group=None, encrypt_requests=False)
        self.router = router
        self.shard_execution_ids = [list(ids) for ids in shard_execution_ids]
        self.shard_threshold_groups = shard_threshold_groups
        #: this client's partition-map epoch cursor (advanced only by
        #: consistent, authenticated newer-epoch replies)
        self.epoch = 0
        self._expected_shard: Optional[int] = None
        self._pending_operation: Optional[Operation] = None
        self.misrouted_replies = 0
        self.epoch_advances = 0

    def _issue(self, operation: Operation, timestamp: int,
               callback: Optional[Callable[[CompletedRequest], None]],
               issued_at: Optional[float] = None) -> None:
        self._pending_operation = operation
        self._expect_shard(self.router.shard_of_operation(operation,
                                                          epoch=self.epoch))
        super()._issue(operation, timestamp, callback, issued_at=issued_at)

    def _expect_shard(self, shard: int) -> None:
        """Scope the inherited quorum counting to the owning shard: only its
        replicas may contribute the g + 1 matching authenticators."""
        self._expected_shard = shard
        self.reply_universe = self.shard_execution_ids[shard]
        if self.shard_threshold_groups is not None:
            self.threshold_group = self.shard_threshold_groups[shard]

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, ClientReply):
            self._maybe_advance_epoch(message)
            if self._is_misrouted(message):
                self.misrouted_replies += 1
                return
        super().on_message(sender, message)

    def _maybe_advance_epoch(self, message: ClientReply) -> None:
        """Adopt a newer epoch claimed by a reply for our pending request.

        The claim must be *consistent* before it steers quorum counting: the
        epoch has to exist in the agreed map history and map the pending
        operation's key to the very shard the reply names.  Adoption alone
        completes nothing -- the reply still needs ``g + 1`` matching
        authenticators from the named shard's replicas, which correct nodes
        only produce for bodies (epoch included) they actually executed.
        """
        pending = self._pending
        body = message.body
        if (pending is None or body.epoch is None or body.epoch <= self.epoch
                or body.shard is None):
            return
        if (message.reply.client != self.node_id
                or message.reply.timestamp != pending.timestamp):
            return
        registry = getattr(self.router.partitioner, "registry", None)
        if registry is None or not registry.has_epoch(body.epoch):
            return
        if self._pending_operation is None:
            return
        expected = self.router.shard_of_operation(self._pending_operation,
                                                  epoch=body.epoch)
        if body.shard != expected:
            return
        self.epoch = body.epoch
        self.epoch_advances += 1
        self._expect_shard(expected)

    def _is_misrouted(self, message: ClientReply) -> bool:
        """A reply for our outstanding request claiming the wrong shard."""
        pending = self._pending
        if pending is None or message.reply.timestamp != pending.timestamp:
            return False
        if message.reply.client != self.node_id:
            return False
        return message.body.shard != self._expected_shard
