"""Shard-aware clients.

A client of the sharded service computes -- with the same deterministic
router every replica uses -- which shard owns each operation it submits, and
then accepts a reply only when ``g + 1`` matching authenticators come from
*that shard's* ``2g + 1`` execution replicas.  A certificate assembled from
another shard's replicas (or a reply body whose authenticated ``shard`` field
does not match the expected owner) is rejected and counted in
:attr:`ShardAwareClient.misrouted_replies`: without this check, ``g + 1``
Byzantine nodes spread across *different* shards could forge a reply even
though no single shard exceeds its fault bound.

**Rebalancing.**  The client keeps its own partition-map epoch cursor;
requests are routed (for reply-quorum purposes -- submission always goes to
the agreement cluster) by the newest map the client knows.  When a rebalance
moves the key mid-flight, the reply arrives from the *new* owner carrying a
newer ``epoch`` inside the authenticated reply body.  The client advances
only when that claim is consistent: the epoch must exist in the agreed map
history and map the pending operation's key to exactly the shard the reply
names -- and even then the reply completes only with ``g + 1`` matching
authenticators from *that* shard's replicas, so a forged epoch buys an
attacker nothing the fault bounds didn't already concede.  A reply naming a
shard no known epoch supports is counted as misrouted, exactly like a wrong
shard was before rebalancing existed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from ..config import SystemConfig
from ..core.client import ClientNode, CompletedRequest
from ..crypto.keys import Keystore
from ..messages.reply import BatchReplyBody, ClientReply, ReplyBody
from ..net.message import Message
from ..sim.scheduler import Scheduler
from ..statemachine.interface import Operation, OperationResult
from ..util.ids import NodeId
from .messages import CrossShardReply, SubReplyBody, sub_reply_rounds_consistent
from .router import ShardRouter


class ShardAwareClient(ClientNode):
    """A client that routes requests to shards and votes per-shard replies."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, agreement_ids: List[NodeId],
                 request_verifiers: List[NodeId],
                 shard_execution_ids: List[List[NodeId]],
                 router: ShardRouter,
                 shard_threshold_groups: Optional[List[str]] = None) -> None:
        all_execution = [node for shard in shard_execution_ids for node in shard]
        super().__init__(node_id=node_id, scheduler=scheduler, config=config,
                         keystore=keystore, agreement_ids=agreement_ids,
                         request_verifiers=request_verifiers,
                         reply_quorum=config.reply_quorum,
                         reply_universe=all_execution,
                         threshold_group=None, encrypt_requests=False)
        self.router = router
        self.shard_execution_ids = [list(ids) for ids in shard_execution_ids]
        self.shard_threshold_groups = shard_threshold_groups
        #: this client's partition-map epoch cursor (advanced only by
        #: consistent, authenticated newer-epoch replies)
        self.epoch = 0
        #: multi-log hook (set by the multi-log wiring): shard -> log,
        #: used to group sub-reply fragments whose op_seq lives in per-log
        #: sequence spaces.  None in single-log deployments.
        self.log_of_shard = None
        self._expected_shard: Optional[int] = None
        self._pending_operation: Optional[Operation] = None
        #: in-flight cross-shard operation: the original (unstamped)
        #: operation, its touched shards, and the epoch-retry count
        self._pending_cross: Optional[Dict[str, Any]] = None
        self.misrouted_replies = 0
        self.epoch_advances = 0
        self.cross_shard_completed = 0
        self.cross_shard_retries = 0
        self.invalid_cross_shard_replies = 0
        self.collator_equivocations = 0
        self.metrics.register_probe("shardclient.state", lambda: {
            "epoch": self.epoch,
            "epoch_advances": self.epoch_advances,
            "misrouted_replies": self.misrouted_replies,
            "cross_shard_completed": self.cross_shard_completed,
            "cross_shard_retries": self.cross_shard_retries,
            "invalid_cross_shard_replies": self.invalid_cross_shard_replies,
            "collator_equivocations": self.collator_equivocations,
        })

    def _issue(self, operation: Operation, timestamp: int,
               callback: Optional[Callable[[CompletedRequest], None]],
               issued_at: Optional[float] = None) -> None:
        self._pending_operation = operation
        touched = self.router.shards_of_operation_keys(operation,
                                                       epoch=self.epoch)
        if len(touched) > 1:
            problem = self._cross_shard_problem(operation)
            if problem is not None:
                # Fail the request locally instead of raising: _issue also
                # runs inside the reply path (queued submissions pop when
                # the outstanding request completes), where an exception
                # would tear down the whole event dispatch.
                self._fail_locally(operation, timestamp, callback,
                                   issued_at, problem)
                return
            operation = self._issue_cross_shard(operation, touched)
        else:
            self._pending_cross = None
            self._expect_shard(touched[0])
        super()._issue(operation, timestamp, callback, issued_at=issued_at)

    def _cross_shard_problem(self, operation: Operation) -> Optional[str]:
        """Why a multi-shard operation cannot be issued (None = it can)."""
        if not self.config.cross_shard.enabled:
            return ("operation touches multiple shards but cross-shard "
                    "operations are disabled (CrossShardConfig.enabled)")
        keys = self.router.keys_of_operation(operation) or ()
        if len(keys) > self.config.cross_shard.max_keys:
            return (f"cross-shard operation touches {len(keys)} keys "
                    f"(max_keys is {self.config.cross_shard.max_keys})")
        if (self.config.multilog.enabled and operation.kind == "txn"
                and operation.args.get("reads")):
            # Under multi-log ordering a read-validating transaction's vote
            # round could deadlock against another ordered inversely by a
            # different log, so the system refuses them outright (see
            # README "Multi-log ordering").  Snapshot reads and write-only
            # transactions remain fully supported across log groups.
            return ("read-validating cross-shard transactions are not "
                    "supported under multi-log ordering (multilog.num_logs "
                    "> 1); use multi_get + write-only txn")
        return None

    def _fail_locally(self, operation: Operation, timestamp: int,
                      callback: Optional[Callable[[CompletedRequest], None]],
                      issued_at: Optional[float], error: str) -> None:
        """Complete a request with a local error without touching the wire."""
        record = CompletedRequest(
            timestamp=timestamp, operation=operation,
            result=OperationResult(value=None, error=error),
            issued_at_ms=self.now if issued_at is None else issued_at,
            completed_at_ms=self.now, seq=0, view=self._last_known_view)
        self.completed.append(record)
        if callback is not None:
            callback(record)
        if self._queue:
            queued, queued_timestamp, queued_callback, submitted_at = \
                self._queue.pop(0)
            self._issue(queued, queued_timestamp, queued_callback,
                        issued_at=submitted_at)

    def _issue_cross_shard(self, operation: Operation,
                           touched: List[int]) -> Operation:
        """Prepare a multi-shard operation: pin this client's epoch cursor
        into the signed request (the cut judges it -- a rebalance racing
        the marker aborts deterministically instead of answering from a
        torn key->shard assignment) and expect the assembled reply from the
        deterministic collator, the lowest touched shard."""
        self._pending_cross = {"operation": operation, "pinned": self.epoch,
                               "touched": list(touched), "retries": 0}
        self._expect_shard(min(touched))
        return dataclasses.replace(
            operation, args={**operation.args, "epoch": self.epoch})

    def _expect_shard(self, shard: int) -> None:
        """Scope the inherited quorum counting to the owning shard: only its
        replicas may contribute the g + 1 matching authenticators."""
        self._expected_shard = shard
        self.reply_universe = self.shard_execution_ids[shard]
        if self.shard_threshold_groups is not None:
            self.threshold_group = self.shard_threshold_groups[shard]

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, CrossShardReply):
            self.handle_cross_shard_reply(sender, message)
            return
        if isinstance(message, ClientReply):
            if self._pending_cross is not None:
                # A cross-shard operation normally completes only through
                # the sub-certified assembled reply; stray per-shard
                # replies (e.g. a reply-table placeholder re-served on a
                # duplicate) must not satisfy the ordinary quorum counting.
                # The one exception: a rebalance cut merged the operation's
                # keys onto a single shard before the marker released, so
                # it executed as an ordinary request there.  Such replies
                # feed the ordinary quorum machinery -- scoped to the one
                # claimed shard -- but the cross-shard expectation is kept
                # until a full quorum actually completes, so a single
                # forged reply can neither complete nor wedge the client.
                if self._collapse_candidate(message):
                    super().on_message(sender, message)
                return
            self._maybe_advance_epoch(message)
            if self._is_misrouted(message):
                self.misrouted_replies += 1
                return
        super().on_message(sender, message)

    def _collapse_candidate(self, message: ClientReply) -> bool:
        """Whether a normal reply plausibly answers a pending multi-shard
        operation that became single-shard.

        A rebalance cut ordered *after* submission can merge every key of
        the operation onto one shard; the release-time router then routes
        it as an ordinary request and normal per-shard replies come back.
        The claim steers quorum counting only when it is consistent: the
        reply's epoch must be at least the pinned epoch (an older epoch
        could never have re-routed a request pinned later), exist in the
        agreed map history, and map the operation's keys to exactly the one
        shard the reply names.  Steering completes nothing by itself -- the
        reply still needs ``g + 1`` matching authenticators from that
        shard's replicas, so a forged claim from one Byzantine replica buys
        nothing: the cross-shard path stays armed until a real quorum
        completes the request.
        """
        pending = self._pending
        cross = self._pending_cross
        body = message.body
        if (pending is None or cross is None or body.epoch is None
                or body.shard is None):
            return False
        if (message.reply.client != self.node_id
                or message.reply.timestamp != pending.timestamp):
            return False
        if body.epoch < cross["pinned"]:
            return False
        if body.epoch != 0:
            registry = getattr(self.router.partitioner, "registry", None)
            if registry is None or not registry.has_epoch(body.epoch):
                return False
        try:
            shards = self.router.shards_of_operation_keys(cross["operation"],
                                                          epoch=body.epoch)
        except KeyError:
            return False
        if len(shards) != 1 or body.shard != shards[0]:
            return False
        if body.epoch > self.epoch:
            self.epoch = body.epoch
            self.epoch_advances += 1
        self._expect_shard(shards[0])
        return True

    def _complete(self, pending, reply, body) -> None:
        # Any completion -- assembled cross-shard reply, collapsed ordinary
        # quorum, or local failure -- retires the cross expectation before
        # the next queued submission issues.
        self._pending_cross = None
        super()._complete(pending, reply, body)

    # ------------------------------------------------------------------ #
    # Cross-shard replies.
    # ------------------------------------------------------------------ #

    def handle_cross_shard_reply(self, sender: NodeId,
                                 message: CrossShardReply) -> None:
        """Accept an assembled cross-shard reply on sub-certificate evidence.

        The collator's summary is never trusted: the client re-derives the
        result from the per-shard ``g + 1``-certified fragments and rejects
        a reply whose summary disagrees -- an equivocating collator is
        detected, not believed.  Every fragment must name the same status,
        epoch, and marker sequence number, the fragment shards must be
        exactly the operation's touched set at the reply's epoch, and each
        fragment needs ``g + 1`` valid signers from its own shard's
        replicas (the same per-shard quorum discipline ordinary replies
        use).
        """
        pending = self._pending
        cross = self._pending_cross
        if pending is None or cross is None:
            return
        if (message.client != self.node_id
                or message.timestamp != pending.timestamp):
            return
        bodies = self._verified_sub_bodies(message, pending.timestamp)
        if bodies is None:
            self.invalid_cross_shard_replies += 1
            return
        first = bodies[0]
        merged: Dict[str, Any] = {}
        for body in sorted(bodies, key=lambda body: body.shard):
            merged.update(body.values)
        if message.assembled != merged:
            self.collator_equivocations += 1
            self.invalid_cross_shard_replies += 1
            return
        if first.status == "epoch-retry":
            self._handle_epoch_retry(pending, cross, first.epoch)
            return
        if first.epoch > self.epoch:
            self.epoch = first.epoch
            self.epoch_advances += 1
        operation: Operation = cross["operation"]
        if first.status == "ok":
            result = OperationResult(value={"values": merged},
                                     size=16 + 16 * len(merged))
        elif first.status in ("committed", "aborted"):
            result = OperationResult(value={"committed":
                                            first.status == "committed",
                                            "observed": merged},
                                     size=24 + 16 * len(merged))
        else:
            result = OperationResult(value=None,
                                     error=f"cross-shard {first.status}")
        self._complete_cross(pending, first.view, first.op_seq, result)

    def _verified_sub_bodies(self, message: CrossShardReply,
                             timestamp: int) -> Optional[List[SubReplyBody]]:
        bodies: List[SubReplyBody] = []
        for certificate in message.sub_certificates:
            body = certificate.payload
            if not isinstance(body, SubReplyBody):
                return None
            bodies.append(body)
        if not bodies:
            return None
        first = bodies[0]
        for body in bodies:
            if body.client != self.node_id or body.timestamp != timestamp:
                return None
        if not sub_reply_rounds_consistent(bodies, self.log_of_shard):
            return None
        if first.epoch != 0:
            registry = getattr(self.router.partitioner, "registry", None)
            if registry is None or not registry.has_epoch(first.epoch):
                return None
        operation = (self._pending_cross or {}).get("operation")
        if operation is None:
            return None
        try:
            expected = self.router.shards_of_operation_keys(operation,
                                                            epoch=first.epoch)
        except KeyError:
            return None
        if sorted(body.shard for body in bodies) != expected:
            return None
        for certificate, body in zip(message.sub_certificates, bodies):
            signers = self.crypto.valid_signers(
                certificate, self.shard_execution_ids[body.shard])
            if len(signers) < self.config.reply_quorum:
                return None
        return bodies

    def _handle_epoch_retry(self, pending, cross: Dict[str, Any],
                            new_epoch: int) -> None:
        """A certified deterministic abort: the operation's pinned epoch
        went stale under a rebalance cut.  Adopt the newer epoch and
        transparently re-issue on it (bounded by the retry limit)."""
        if new_epoch > self.epoch:
            self.epoch = new_epoch
            self.epoch_advances += 1
        if cross["retries"] >= self.config.cross_shard.retry_limit:
            self._complete_cross(pending, 0, 0, OperationResult(
                value=None, error="cross-shard epoch retry limit exceeded"))
            return
        retries = cross["retries"] + 1
        self.cross_shard_retries += 1
        if pending.timer is not None:
            pending.timer.cancel()
        self._pending = None
        self._pending_cross = None
        timestamp = self._next_timestamp
        self._next_timestamp += 1
        # Per-client timestamps must stay monotone in *issue* order, and
        # queued submissions were numbered at submit time -- renumber them
        # past the retry's fresh timestamp or the replicas would treat them
        # as retransmissions of the already-answered retry.
        self._queue = [
            (queued, self._next_timestamp + offset, queued_callback,
             submitted_at)
            for offset, (queued, _, queued_callback, submitted_at)
            in enumerate(self._queue)
        ]
        self._next_timestamp += len(self._queue)
        self._issue(cross["operation"], timestamp, pending.callback,
                    issued_at=pending.issued_at_ms)
        if self._pending_cross is not None:
            self._pending_cross["retries"] = retries

    def _complete_cross(self, pending, view: int, seq: int,
                        result: OperationResult) -> None:
        reply = ReplyBody(view=view, seq=seq, timestamp=pending.timestamp,
                          client=self.node_id, result=result)
        body = BatchReplyBody(view=view, seq=seq, replies=(reply,),
                              shard=self._expected_shard, epoch=self.epoch)
        self._pending_cross = None
        self.cross_shard_completed += 1
        self._complete(pending, reply, body)

    def _maybe_advance_epoch(self, message: ClientReply) -> None:
        """Adopt a newer epoch claimed by a reply for our pending request.

        The claim must be *consistent* before it steers quorum counting: the
        epoch has to exist in the agreed map history and map the pending
        operation's key to the very shard the reply names.  Adoption alone
        completes nothing -- the reply still needs ``g + 1`` matching
        authenticators from the named shard's replicas, which correct nodes
        only produce for bodies (epoch included) they actually executed.
        """
        pending = self._pending
        body = message.body
        if (pending is None or body.epoch is None or body.epoch <= self.epoch
                or body.shard is None):
            return
        if (message.reply.client != self.node_id
                or message.reply.timestamp != pending.timestamp):
            return
        registry = getattr(self.router.partitioner, "registry", None)
        if registry is None or not registry.has_epoch(body.epoch):
            return
        if self._pending_operation is None:
            return
        expected = self.router.shard_of_operation(self._pending_operation,
                                                  epoch=body.epoch)
        if body.shard != expected:
            return
        self.epoch = body.epoch
        self.epoch_advances += 1
        self._expect_shard(expected)

    def _is_misrouted(self, message: ClientReply) -> bool:
        """A reply for our outstanding request claiming the wrong shard."""
        pending = self._pending
        if pending is None or message.reply.timestamp != pending.timestamp:
            return False
        if message.reply.client != self.node_id:
            return False
        return message.body.shard != self._expected_shard
