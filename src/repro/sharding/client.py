"""Shard-aware clients.

A client of the sharded service computes -- with the same deterministic
router every replica uses -- which shard owns each operation it submits, and
then accepts a reply only when ``g + 1`` matching authenticators come from
*that shard's* ``2g + 1`` execution replicas.  A certificate assembled from
another shard's replicas (or a reply body whose authenticated ``shard`` field
does not match the expected owner) is rejected and counted in
:attr:`ShardAwareClient.misrouted_replies`: without this check, ``g + 1``
Byzantine nodes spread across *different* shards could forge a reply even
though no single shard exceeds its fault bound.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config import SystemConfig
from ..core.client import ClientNode, CompletedRequest
from ..crypto.keys import Keystore
from ..messages.reply import ClientReply
from ..net.message import Message
from ..sim.scheduler import Scheduler
from ..statemachine.interface import Operation
from ..util.ids import NodeId
from .router import ShardRouter


class ShardAwareClient(ClientNode):
    """A client that routes requests to shards and votes per-shard replies."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, agreement_ids: List[NodeId],
                 request_verifiers: List[NodeId],
                 shard_execution_ids: List[List[NodeId]],
                 router: ShardRouter,
                 shard_threshold_groups: Optional[List[str]] = None) -> None:
        all_execution = [node for shard in shard_execution_ids for node in shard]
        super().__init__(node_id=node_id, scheduler=scheduler, config=config,
                         keystore=keystore, agreement_ids=agreement_ids,
                         request_verifiers=request_verifiers,
                         reply_quorum=config.reply_quorum,
                         reply_universe=all_execution,
                         threshold_group=None, encrypt_requests=False)
        self.router = router
        self.shard_execution_ids = [list(ids) for ids in shard_execution_ids]
        self.shard_threshold_groups = shard_threshold_groups
        self._expected_shard: Optional[int] = None
        self.misrouted_replies = 0

    def _issue(self, operation: Operation, timestamp: int,
               callback: Optional[Callable[[CompletedRequest], None]],
               issued_at: Optional[float] = None) -> None:
        shard = self.router.shard_of_operation(operation)
        self._expected_shard = shard
        # Scope the inherited quorum counting to the owning shard: only its
        # replicas may contribute the g + 1 matching authenticators.
        self.reply_universe = self.shard_execution_ids[shard]
        if self.shard_threshold_groups is not None:
            self.threshold_group = self.shard_threshold_groups[shard]
        super()._issue(operation, timestamp, callback, issued_at=issued_at)

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, ClientReply) and self._is_misrouted(message):
            self.misrouted_replies += 1
            return
        super().on_message(sender, message)

    def _is_misrouted(self, message: ClientReply) -> bool:
        """A reply for our outstanding request claiming the wrong shard."""
        pending = self._pending
        if pending is None or message.reply.timestamp != pending.timestamp:
            return False
        if message.reply.client != self.node_id:
            return False
        return message.body.shard != self._expected_shard
