"""System assembly for the sharded architecture.

:class:`ShardedSystem` extends :class:`~repro.core.system.SimulatedSystem`
with the paper's separation taken one step further: a single ``3f + 1``
agreement cluster orders *all* requests, and ``num_shards`` independent
``2g + 1`` execution clusters -- each with its own application state, reply
cache, checkpoint protocol, and state transfer -- execute the per-shard
subsequences that the deterministic shard routers carve out of the global
order.  Execution capacity therefore grows horizontally with the number of
shards while the agreement cluster stays fixed, which is exactly what the
separation of agreement from execution buys: ordering does not need to know
*what* it orders, so it does not need to grow with application state or load.

The restricted topology mirrors the physical wiring this deployment would
use: clients talk to the agreement cluster (and, for the direct-reply
optimisation, to execution replicas), the agreement cluster talks to every
execution replica, and execution replicas talk only to *their own shard's*
peers -- there is no cross-shard link, so shard isolation is enforced by the
network just like the privacy firewall's wiring is.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..agreement.replica import AgreementReplica
from ..config import AuthenticationScheme, SystemConfig
from ..core.system import SimulatedSystem
from ..errors import ConfigurationError
from ..net.topology import Topology
from ..sim.process import Process
from ..statemachine.interface import StateMachine
from ..util.ids import NodeId, agreement_id, client_id, execution_id
from .client import ShardAwareClient
from .execution import ShardExecutionNode
from .partitioner import make_partitioner
from .queue import ShardRouterQueue
from .rebalance import RebalanceController
from .router import KeyExtractor, ShardRouter

#: name prefix of each shard's threshold-signature group
SHARD_THRESHOLD_GROUP_PREFIX = "execution-replies-shard"


def sharded_topology(clients: List[NodeId], agreement: List[NodeId],
                     shard_execution_ids: List[List[NodeId]],
                     allow_client_execution: bool = True,
                     cross_shard_links: bool = False) -> Topology:
    """Physical wiring of the sharded deployment.

    Static deployments have *no* cross-shard links: shard isolation is
    enforced by the network.  Dynamic rebalancing needs the clusters wired
    to each other (``cross_shard_links=True``) so a moved key range's state
    can be handed off at an epoch cut -- the trust model is unchanged, since
    handoffs are accepted only with ``g + 1`` matching source-replica
    shares, never on the say-so of one peer.
    """
    topo = Topology(fully_connected=False)
    topo.add_links(clients, agreement)
    topo.add_links(agreement, agreement)
    for shard_ids in shard_execution_ids:
        topo.add_links(agreement, shard_ids)
        topo.add_links(shard_ids, shard_ids)
        if allow_client_execution:
            topo.add_links(clients, shard_ids)
    if cross_shard_links:
        for i, left in enumerate(shard_execution_ids):
            for right in shard_execution_ids[i + 1:]:
                topo.add_links(left, right)
    return topo


class ShardedSystem(SimulatedSystem):
    """One agreement cluster in front of ``num_shards`` execution clusters.

    ``app_factory`` is called once per execution replica (``num_shards *
    (2g + 1)`` times); each shard's replicas evolve their own partition of
    the application state.  ``key_extractor`` maps operations to routing keys
    (default: :func:`repro.apps.kvstore.extract_key` when the application
    class exposes one; keyless operations route to shard 0).
    """

    def __init__(self, config: SystemConfig,
                 app_factory: Callable[[], StateMachine],
                 key_extractor: Optional[KeyExtractor] = None,
                 num_clients: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        if config.use_privacy_firewall:
            raise ConfigurationError(
                "ShardedSystem does not support the privacy firewall "
                "(the shard router must read operation keys)"
            )
        super().__init__(config, seed=seed)
        count = num_clients if num_clients is not None else config.num_clients
        num_shards = config.sharding.num_shards
        cluster_size = config.num_execution_nodes

        if key_extractor is None:
            key_extractor = getattr(app_factory, "extract_key", None)
        multi_key_extractor = getattr(app_factory, "extract_keys", None)
        self.router = ShardRouter(make_partitioner(config.sharding),
                                  key_extractor, multi_key_extractor)
        self.obs.register_global_probe("shard_router", self.router.snapshot)

        self.agreement_ids = [agreement_id(i) for i in range(config.num_agreement_nodes)]
        self.shard_execution_ids: List[List[NodeId]] = [
            [execution_id(shard * cluster_size + j) for j in range(cluster_size)]
            for shard in range(num_shards)
        ]
        self.execution_ids = [node for shard in self.shard_execution_ids
                              for node in shard]
        self.client_ids = [client_id(i) for i in range(count)]

        # ---------------- Per-shard threshold groups. ---------------- #
        shard_threshold_groups: Optional[List[str]] = None
        if config.authentication is AuthenticationScheme.THRESHOLD:
            shard_threshold_groups = []
            for shard, shard_ids in enumerate(self.shard_execution_ids):
                group = f"{SHARD_THRESHOLD_GROUP_PREFIX}{shard}"
                self.keystore.create_threshold_group(group, shard_ids,
                                                     config.reply_quorum)
                shard_threshold_groups.append(group)
        self.shard_threshold_groups = shard_threshold_groups

        # ---------------- Topology. ---------------- #
        self.network.topology = sharded_topology(
            clients=self.client_ids, agreement=self.agreement_ids,
            shard_execution_ids=self.shard_execution_ids,
            # Cross-shard assembled replies flow execution -> client, so
            # cross-shard deployments keep the client links even without
            # the direct-reply optimisation.
            allow_client_execution=(config.direct_execution_reply
                                    or config.cross_shard.enabled),
            cross_shard_links=(config.rebalance.enabled
                               or config.cross_shard.enabled))

        # ---------------- Execution clusters (one per shard). ---------- #
        self.shard_execution_nodes: List[List[ShardExecutionNode]] = []
        for shard, shard_ids in enumerate(self.shard_execution_ids):
            cluster: List[ShardExecutionNode] = []
            group = (shard_threshold_groups[shard]
                     if shard_threshold_groups is not None else None)
            for node_id in shard_ids:
                node = ShardExecutionNode(
                    node_id=node_id, scheduler=self.scheduler, config=config,
                    keystore=self.keystore, state_machine=app_factory(),
                    agreement_ids=self.agreement_ids, execution_ids=shard_ids,
                    client_ids=self.client_ids, upstream=self.agreement_ids,
                    shard=shard, router=self.router, threshold_group=group,
                    shard_execution_ids=self.shard_execution_ids,
                )
                cluster.append(node)
                self.network.register(node)
            self.shard_execution_nodes.append(cluster)

        # ---------------- Agreement cluster with shard routers. -------- #
        cert_verifiers = self.agreement_ids + self.execution_ids
        self.message_queues: List[ShardRouterQueue] = []
        self.agreement_replicas: List[AgreementReplica] = []
        for node_id in self.agreement_ids:
            replica = AgreementReplica(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, local=None,  # type: ignore[arg-type]
                agreement_ids=self.agreement_ids, client_ids=self.client_ids,
                cert_verifiers=cert_verifiers,
            )
            queue = ShardRouterQueue(
                owner=replica, config=config,
                shard_execution_ids=self.shard_execution_ids,
                client_ids=self.client_ids, router=self.router,
                shard_threshold_groups=shard_threshold_groups,
            )
            replica.local = queue
            if config.pipeline.per_shard_depth is not None:
                # Skew-aware concurrency: single-shard bundles with per-shard
                # AIMD controllers and per-shard admission windows (the
                # classifier reads the queue's live partition-map epoch).
                replica.enable_per_shard_batching(queue.request_classifier())
            if config.cross_shard.enabled:
                # Multi-shard requests are ordered as single-certificate
                # consistent-cut markers (classified at the queue's live
                # epoch).
                replica.enable_cross_shard(queue.cross_shard_probe())
            if config.rebalance.enabled:
                # Every replica hosts a rebalance controller (any of them
                # may become primary); only the current primary proposes.
                controller = RebalanceController(config.rebalance)
                replica.attach_rebalancer(controller, queue.load_observation)
                replica.metrics.register_probe("rebalance.controller",
                                               controller.snapshot)
            self.message_queues.append(queue)
            self.agreement_replicas.append(replica)
            self.network.register(replica)

        # ---------------- Clients. ---------------- #
        request_verifiers = self.agreement_ids + self.execution_ids
        self.clients = []
        for node_id in self.client_ids:
            client = ShardAwareClient(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, agreement_ids=self.agreement_ids,
                request_verifiers=request_verifiers,
                shard_execution_ids=self.shard_execution_ids,
                router=self.router,
                shard_threshold_groups=shard_threshold_groups,
            )
            self.clients.append(client)
            self.network.register(client)

    # ------------------------------------------------------------------ #
    # Accessors and fault injection.
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return len(self.shard_execution_ids)

    def server_processes(self) -> List[Process]:
        processes: List[Process] = list(self.agreement_replicas)
        for cluster in self.shard_execution_nodes:
            processes.extend(cluster)
        return processes

    def agreement_replica(self, index: int) -> AgreementReplica:
        return self.agreement_replicas[index]

    def execution_cluster(self, shard: int) -> List[ShardExecutionNode]:
        return self.shard_execution_nodes[shard]

    def execution_node(self, shard: int, index: int) -> ShardExecutionNode:
        return self.shard_execution_nodes[shard][index]

    def crash_agreement(self, index: int) -> None:
        """Crash one agreement replica (tolerated for up to ``f``)."""
        self.agreement_replicas[index].crash()

    def crash_execution(self, shard: int, index: int) -> None:
        """Crash one execution replica of ``shard`` (up to ``g`` per shard)."""
        self.shard_execution_nodes[shard][index].crash()

    def shard_of_key(self, key: str, epoch: Optional[int] = None) -> int:
        """The shard owning ``key`` (convenience for tests and demos)."""
        return self.router.partitioner.shard_of_key(key, epoch)

    # ------------------------------------------------------------------ #
    # Rebalancing observability (example, benchmarks, tests).
    # ------------------------------------------------------------------ #

    def partition_epoch(self) -> int:
        """The partition-map epoch agreement node 0's router has reached."""
        return self.message_queues[0].epoch

    def partition_map(self):
        """The partition map at :meth:`partition_epoch` (None for hash)."""
        _, pmap = self.message_queues[0].load_observation()
        return pmap

    def shard_load_window(self) -> List[int]:
        """Released requests per cluster in the current observation window."""
        return list(self.message_queues[0].load_window.requests_by_cluster)

    def shard_load_total(self) -> List[int]:
        """Cumulative released requests per cluster since construction."""
        return list(self.message_queues[0].routed_by_shard)

    def epoch_cuts(self) -> int:
        """Epoch cuts applied by agreement node 0's router."""
        return self.message_queues[0].epoch_cuts

    def map_changes(self) -> List:
        """Map changes proposed so far (split/merge/move counters per
        replica's controller; index 0 is usually the primary)."""
        return [replica._rebalancer for replica in self.agreement_replicas]

    def requests_executed_by_shard(self) -> List[int]:
        """Requests executed per shard (max over each shard's correct nodes)."""
        return [max(node.requests_executed for node in cluster)
                for cluster in self.shard_execution_nodes]

    def total_requests_executed(self) -> int:
        """Requests executed across all shards."""
        return sum(self.requests_executed_by_shard())
