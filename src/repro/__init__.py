"""repro -- a reproduction of *Separating Agreement from Execution for
Byzantine Fault Tolerant Services* (Yin, Martin, Venkataramani, Alvisi,
Dahlin; SOSP 2003).

The package implements, in simulation:

* a BASE/PBFT-style Byzantine **agreement** library (``repro.agreement``),
* the paper's **separated architecture**: agreement nodes host message
  queues, ``2g + 1`` execution replicas process ordered requests
  (``repro.core``),
* the **privacy firewall** filter array (``repro.firewall``),
* the substrates those need: a discrete-event simulator (``repro.sim``), an
  unreliable network (``repro.net``), cryptographic primitives with a cost
  model (``repro.crypto``), replicated applications (``repro.apps``), and the
  workloads, fault injectors, and analysis used to reproduce every figure and
  table of the paper's evaluation (``repro.workloads``, ``repro.faults``,
  ``repro.analysis``).

Quickstart::

    from repro import SystemConfig, SeparatedSystem
    from repro.apps.counter import CounterService, increment

    system = SeparatedSystem(SystemConfig.separate_different_mac(), CounterService)
    record = system.invoke(increment(5))
    print(record.result.value, record.latency_ms)
"""

from .config import (
    AuthenticationScheme,
    CryptoCosts,
    Deployment,
    NetworkConfig,
    ObservabilityConfig,
    ShardingConfig,
    SystemConfig,
    TimerConfig,
)
from .core import (
    ClientNode,
    CompletedRequest,
    CoupledSystem,
    ExecutionNode,
    MessageQueue,
    SeparatedSystem,
    UnreplicatedSystem,
)
from .errors import (
    CertificateError,
    ConfigurationError,
    CryptoError,
    LivenessTimeoutError,
    ProtocolError,
    ReproError,
    VerificationError,
)
from .sharding import ShardedSystem
from .statemachine import NonDetInput, Operation, OperationResult, StateMachine

__version__ = "1.0.0"

__all__ = [
    "AuthenticationScheme",
    "CryptoCosts",
    "Deployment",
    "NetworkConfig",
    "ObservabilityConfig",
    "ShardingConfig",
    "SystemConfig",
    "TimerConfig",
    "ShardedSystem",
    "ClientNode",
    "CompletedRequest",
    "CoupledSystem",
    "ExecutionNode",
    "MessageQueue",
    "SeparatedSystem",
    "UnreplicatedSystem",
    "CertificateError",
    "ConfigurationError",
    "CryptoError",
    "LivenessTimeoutError",
    "ProtocolError",
    "ReproError",
    "VerificationError",
    "NonDetInput",
    "Operation",
    "OperationResult",
    "StateMachine",
    "__version__",
]
