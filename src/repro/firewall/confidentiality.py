"""Confidentiality auditing.

The paper's confidentiality guarantee is *output set confidentiality*: the
sequence of reply bodies that crosses the correct cut of filters must be a
sequence that a single correct, unreplicated implementation of the service
could also have produced over an unreliable network (which may drop, delay,
replicate, and reorder replies).

The :class:`ConfidentialityAuditor` installs a network tap that records every
message crossing the boundary below the firewall (filters/agreement -> clients
or agreement nodes) and checks two things:

* no plaintext confidential payload crosses the boundary (bodies must be
  encrypted objects the receiving role cannot open), and
* every reply body forwarded below the correct cut matches the reply a
  reference (correct, unreplicated) execution of the agreed request sequence
  produces -- i.e. minority/corrupt replies from faulty execution nodes were
  filtered out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.digest import digest
from ..messages.reply import BatchReply, ClientReply
from ..messages.request import EncryptedBody
from ..net.message import Message
from ..net.network import Network
from ..util.ids import NodeId, Role


@dataclass(frozen=True)
class LeakObservation:
    """A potential confidentiality violation observed on the wire."""

    source: NodeId
    destination: NodeId
    description: str
    seq: Optional[int] = None


@dataclass
class ReplyObservation:
    """A reply body observed crossing the firewall boundary."""

    source: NodeId
    destination: NodeId
    seq: int
    client: NodeId
    timestamp: int
    result_digest: bytes


class ConfidentialityAuditor:
    """Observes the boundary below the privacy firewall."""

    def __init__(self, boundary_sources: List[NodeId],
                 boundary_destinations: List[NodeId]) -> None:
        #: nodes above the boundary (filters in the bottom row / agreement nodes)
        self.boundary_sources = set(boundary_sources)
        #: nodes below the boundary (clients / agreement nodes)
        self.boundary_destinations = set(boundary_destinations)
        self.leaks: List[LeakObservation] = []
        self.reply_observations: List[ReplyObservation] = []

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #

    def install(self, network: Network) -> None:
        """Attach this auditor as a network tap."""
        network.add_tap(self._tap)

    def _tap(self, source: NodeId, destination: NodeId,
             message: Message) -> Optional[Message]:
        if source not in self.boundary_sources:
            return None
        if destination not in self.boundary_destinations:
            return None
        self._inspect(source, destination, message)
        return None

    # ------------------------------------------------------------------ #
    # Inspection.
    # ------------------------------------------------------------------ #

    def _inspect(self, source: NodeId, destination: NodeId, message: Message) -> None:
        if isinstance(message, (BatchReply, ClientReply)):
            body = message.body
            for reply in body.replies:
                if not isinstance(reply.result, EncryptedBody):
                    self.leaks.append(LeakObservation(
                        source=source, destination=destination, seq=body.seq,
                        description="plaintext reply body crossed the firewall boundary",
                    ))
                    result_digest = digest(reply.result.to_wire())
                else:
                    result_digest = reply.result.ciphertext_digest
                self.reply_observations.append(ReplyObservation(
                    source=source, destination=destination, seq=body.seq,
                    client=reply.client, timestamp=reply.timestamp,
                    result_digest=result_digest,
                ))

    # ------------------------------------------------------------------ #
    # Verdicts.
    # ------------------------------------------------------------------ #

    def observed_result_digests(self) -> Dict[Tuple[NodeId, int], set]:
        """Map (client, timestamp) -> set of distinct reply digests observed."""
        out: Dict[Tuple[NodeId, int], set] = {}
        for obs in self.reply_observations:
            out.setdefault((obs.client, obs.timestamp), set()).add(obs.result_digest)
        return out

    def check_output_set(self, reference: Dict[Tuple[NodeId, int], bytes]) -> List[LeakObservation]:
        """Compare observed reply digests against a reference execution.

        ``reference`` maps (client, timestamp) to the digest of the reply a
        correct unreplicated server would produce.  Every observed digest must
        match its reference entry; mismatches are returned (and recorded) as
        leak observations.
        """
        violations: List[LeakObservation] = []
        for (client, timestamp), digests in self.observed_result_digests().items():
            expected = reference.get((client, timestamp))
            if expected is None:
                continue
            for observed in digests:
                if observed != expected:
                    violation = LeakObservation(
                        source=client, destination=client, seq=None,
                        description=(
                            f"reply for ({client}, t={timestamp}) does not match the "
                            "reference correct execution"
                        ),
                    )
                    violations.append(violation)
        self.leaks.extend(violations)
        return violations

    @property
    def clean(self) -> bool:
        """True when no confidentiality violation has been observed."""
        return not self.leaks
