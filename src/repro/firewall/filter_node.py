"""A privacy-firewall filter node (Section 4.1 of the paper).

Each filter keeps ``maxN`` (the highest sequence number seen in a valid
agreement or reply certificate) and a bounded per-sequence-number table
``state_n`` whose entries are:

* ``None``   -- request ``n`` has not been seen,
* ``SEEN``   -- request ``n`` has been seen but its reply has not,
* a reply    -- the complete reply certificate for ``n``.

Requests (ordered batches) arriving from below are forwarded up (and answered
directly from the state table when the reply is already known).  Replies
arriving from above are only forwarded down once they carry a complete
threshold-signed certificate, and each reply is multicast down **at most once
per request seen** -- the rule that limits an adversary's ability to modulate
reply counts as a covert channel.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Union

from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..crypto.keys import Keystore
from ..crypto.provider import CryptoProvider
from ..messages.agreement import OrderedBatch
from ..messages.reply import BatchReply, BatchReplyBody
from ..messages.request import ClientRequest
from ..net.message import Message
from ..sim.process import Process
from ..sim.scheduler import Scheduler
from ..util.ids import NodeId


class _Seen(enum.Enum):
    SEEN = "seen"


SEEN = _Seen.SEEN


class FilterNode(Process):
    """One filter in the privacy-firewall array."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, row: int,
                 below: List[NodeId], above: List[NodeId],
                 agreement_ids: List[NodeId], execution_ids: List[NodeId],
                 client_ids: List[NodeId], threshold_group: str,
                 is_top_row: bool) -> None:
        super().__init__(node_id, scheduler)
        self.config = config
        self.row = row
        #: the row below (towards agreement nodes / clients)
        self.below = list(below)
        #: the row above (towards execution nodes)
        self.above = list(above)
        self.agreement_ids = list(agreement_ids)
        self.execution_ids = list(execution_ids)
        self.client_ids = list(client_ids)
        self.threshold_group = threshold_group
        self.is_top_row = is_top_row
        self.crypto = CryptoProvider(node_id, keystore, config.crypto,
                                     charge=self.charge,
                                     record=self.stats.record_crypto,
                                     perf=config.perf)

        self.max_n = 0
        #: state_n: None (absent), SEEN, or the full reply (body, certificate)
        self.state: Dict[int, Union[_Seen, BatchReply]] = {}
        #: top-row only: accumulation of threshold shares per (seq, body digest)
        self._share_collectors: Dict[tuple, Certificate] = {}
        self._share_bodies: Dict[tuple, BatchReplyBody] = {}

        # Statistics used by tests and benchmarks.
        self.requests_forwarded = 0
        self.replies_forwarded = 0
        self.replies_filtered = 0

    # ------------------------------------------------------------------ #
    # Dispatch.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, OrderedBatch):
            if sender in self.below or sender in self.agreement_ids:
                self.handle_batch_from_below(message)
        elif isinstance(message, BatchReply):
            if sender in self.above or sender in self.execution_ids:
                self.handle_reply_from_above(sender, message)
        else:
            return

    # ------------------------------------------------------------------ #
    # Requests flowing up.
    # ------------------------------------------------------------------ #

    def handle_batch_from_below(self, batch: OrderedBatch) -> None:
        seq = batch.seq
        if seq < self.max_n - self.config.pipeline_depth:
            return
        if not self._validate_batch(batch):
            return
        self.max_n = max(self.max_n, seq)
        self._garbage_collect()
        current = self.state.get(seq)
        if isinstance(current, BatchReply):
            # The reply is already known: answer from the state table instead
            # of disturbing the execution cluster again.
            self.multicast(self.below, current)
            self.replies_forwarded += 1
            return
        if current is None:
            self.state[seq] = SEEN
        self._forward_up(batch)
        self.requests_forwarded += 1

    def _forward_up(self, batch: OrderedBatch) -> None:
        """Forward a batch to the row above.

        Paper optimisation: nodes in all but the top row unicast to the single
        node directly above them (same column); the top row must multicast to
        every execution node.
        """
        if not self.is_top_row and len(self.above) > self.node_id.index:
            self.send(self.above[self.node_id.index], batch)
            return
        self.multicast(self.above, batch)

    def _validate_batch(self, batch: OrderedBatch) -> bool:
        """Filters verify certificates so garbage never crosses the firewall."""
        body = batch.agreement_certificate.payload
        if getattr(body, "seq", None) != batch.seq:
            return False
        if not self.crypto.verify_certificate(batch.agreement_certificate,
                                              self.config.agreement_quorum,
                                              self.agreement_ids):
            return False
        for certificate in batch.request_certificates:
            request = certificate.payload
            if not isinstance(request, ClientRequest):
                return False
            if request.client not in self.client_ids:
                return False
            if not self.crypto.verify_certificate(certificate, 1, [request.client]):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Replies flowing down.
    # ------------------------------------------------------------------ #

    def handle_reply_from_above(self, sender: NodeId, message: BatchReply) -> None:
        seq = message.seq
        if seq < self.max_n - self.config.pipeline_depth:
            return
        complete = self._complete_certificate(sender, message)
        if complete is None:
            return
        self.max_n = max(self.max_n, seq)
        self._garbage_collect()
        current = self.state.get(seq)
        if isinstance(current, BatchReply):
            # Already forwarded (or stored): store the newest but do not
            # multicast again -- at most one multicast per request seen.
            self.state[seq] = complete
            self.replies_filtered += 1
            return
        if current is SEEN:
            self.multicast(self.below, complete)
            self.replies_forwarded += 1
            self.state[seq] = complete
        else:
            # Reply arrived before any request was seen: remember it but do
            # not forward until a request asks for it.
            self.state[seq] = complete

    def _complete_certificate(self, sender: NodeId,
                              message: BatchReply) -> Optional[BatchReply]:
        """Return a reply carrying a complete certificate, assembling shares
        in the top row and verifying the group signature elsewhere."""
        certificate = message.certificate
        body = message.body
        if certificate.scheme is not AuthenticationScheme.THRESHOLD:
            # The privacy firewall requires threshold reply certificates.
            return None
        if certificate.threshold_signature is not None:
            if self.crypto.verify_certificate(certificate, self.config.reply_quorum):
                return message
            self.replies_filtered += 1
            return None
        if not self.is_top_row:
            # Only the top row may assemble shares; partial certificates this
            # low in the array indicate a faulty node above.
            self.replies_filtered += 1
            return None
        if sender not in self.execution_ids:
            return None
        key = (message.seq, self.crypto.payload_digest(body))
        collector = self._share_collectors.get(key)
        if collector is None:
            collector = Certificate(payload=body,
                                    scheme=AuthenticationScheme.THRESHOLD,
                                    threshold_group=self.threshold_group)
            self._share_collectors[key] = collector
            self._share_bodies[key] = body
        if collector.threshold_signature is not None:
            # Already assembled (and sent, so its wire form is memoised):
            # re-forward the completed certificate instead of mutating it.
            return BatchReply(seq=message.seq, body=body, certificate=collector,
                              sender=self.node_id)
        collector.merge(certificate)
        valid = self.crypto.valid_signers(collector, self.execution_ids)
        if len(valid) < self.config.reply_quorum:
            return None
        if collector.threshold_signature is None:
            collector.threshold_signature = self.crypto.threshold_combine(
                body, self.threshold_group, collector.authenticator_list())
        return BatchReply(seq=message.seq, body=body, certificate=collector,
                          sender=self.node_id)

    # ------------------------------------------------------------------ #
    # Housekeeping.
    # ------------------------------------------------------------------ #

    def _garbage_collect(self) -> None:
        horizon = self.max_n - self.config.pipeline_depth
        if horizon <= 0:
            return
        self.state = {seq: value for seq, value in self.state.items() if seq >= horizon}
        self._share_collectors = {
            key: value for key, value in self._share_collectors.items()
            if key[0] >= horizon
        }
        self._share_bodies = {
            key: value for key, value in self._share_bodies.items()
            if key[0] >= horizon
        }
