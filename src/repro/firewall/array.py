"""Construction of the privacy-firewall filter array.

The array has ``h + 1`` rows of ``h + 1`` columns.  Row 0 (the bottom row)
communicates with the agreement cluster; the top row communicates with the
execution cluster; each row communicates only with the rows directly above
and below it.  The paper notes the bottom row can be merged onto the
agreement machines when there are enough of them -- the array records that
co-location for machine counting, but bottom-row filters remain distinct
protocol participants.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SystemConfig
from ..crypto.keys import Keystore
from ..sim.scheduler import Scheduler
from ..util.ids import NodeId, Role, firewall_id
from .filter_node import FilterNode


class FirewallArray:
    """The ``(h + 1) x (h + 1)`` grid of filter nodes."""

    def __init__(self, config: SystemConfig, scheduler: Scheduler, keystore: Keystore,
                 agreement_ids: List[NodeId], execution_ids: List[NodeId],
                 client_ids: List[NodeId], threshold_group: str) -> None:
        if not config.use_privacy_firewall:
            raise ValueError("FirewallArray requires use_privacy_firewall=True")
        self.config = config
        self.rows: List[List[FilterNode]] = []
        self.row_ids: List[List[NodeId]] = [
            [firewall_id(row, column) for column in range(config.firewall_columns)]
            for row in range(config.firewall_rows)
        ]
        for row_index in range(config.firewall_rows):
            below = (list(agreement_ids) if row_index == 0
                     else list(self.row_ids[row_index - 1]))
            above = (list(execution_ids) if row_index == config.firewall_rows - 1
                     else list(self.row_ids[row_index + 1]))
            row_nodes = [
                FilterNode(
                    node_id=node_id, scheduler=scheduler, config=config,
                    keystore=keystore, row=row_index, below=below, above=above,
                    agreement_ids=agreement_ids, execution_ids=execution_ids,
                    client_ids=client_ids, threshold_group=threshold_group,
                    is_top_row=(row_index == config.firewall_rows - 1),
                )
                for node_id in self.row_ids[row_index]
            ]
            self.rows.append(row_nodes)
        #: whether the bottom row shares machines with the agreement cluster
        self.bottom_row_colocated = len(agreement_ids) >= config.firewall_columns

    # ------------------------------------------------------------------ #
    # Accessors.
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> List[FilterNode]:
        """All filter nodes, bottom row first."""
        return [node for row in self.rows for node in row]

    @property
    def node_ids(self) -> List[NodeId]:
        return [node.node_id for node in self.nodes]

    @property
    def bottom_row_ids(self) -> List[NodeId]:
        """Filters adjacent to the agreement cluster (requests enter here)."""
        return list(self.row_ids[0])

    @property
    def top_row_ids(self) -> List[NodeId]:
        """Filters adjacent to the execution cluster (replies enter here)."""
        return list(self.row_ids[-1])

    def node_at(self, row: int, column: int) -> FilterNode:
        return self.rows[row][column]

    def extra_machines(self) -> int:
        """Physical machines the firewall adds beyond the agreement cluster."""
        rows = len(self.rows)
        colocated = 1 if self.bottom_row_colocated else 0
        return (rows - colocated) * self.config.firewall_columns

    # ------------------------------------------------------------------ #
    # Fault injection helpers.
    # ------------------------------------------------------------------ #

    def crash(self, row: int, column: int) -> None:
        """Crash the filter at (row, column)."""
        self.node_at(row, column).crash()

    def crash_count(self) -> int:
        return sum(1 for node in self.nodes if node.crashed)

    def correct_cut_exists(self, faulty: Optional[List[NodeId]] = None) -> bool:
        """Whether some row consists entirely of non-faulty filters."""
        faulty_set = set(faulty or [])
        for row in self.rows:
            if all(not node.crashed and node.node_id not in faulty_set for node in row):
                return True
        return False

    def correct_path_exists(self, faulty: Optional[List[NodeId]] = None) -> bool:
        """Whether a path of non-faulty filters connects bottom to top.

        Because every filter in a row connects to every filter in the adjacent
        rows, a correct path exists iff every row contains at least one
        correct filter.
        """
        faulty_set = set(faulty or [])
        for row in self.rows:
            if not any(not node.crashed and node.node_id not in faulty_set
                       for node in row):
                return False
        return True
