"""The privacy firewall (Section 4 of the paper).

An ``(h + 1) x (h + 1)`` array of filter nodes sits between the agreement
cluster and the execution cluster.  Requests (ordered batches) flow up
through the columns; replies flow down, but a filter only passes a reply that
carries a *complete* reply certificate -- the top row combines ``g + 1``
threshold-signature shares from execution nodes into a single group
signature, and every row below verifies that signature before forwarding.
With at most ``h`` faulty filters there is always a fully correct row (the
*correct cut*) that suppresses minority/incorrect replies and strips any
nondeterminism an adversary could use as a covert channel, and always a fully
correct path that preserves availability.
"""

from .filter_node import FilterNode
from .array import FirewallArray
from .confidentiality import ConfidentialityAuditor, LeakObservation

__all__ = [
    "FilterNode",
    "FirewallArray",
    "ConfidentialityAuditor",
    "LeakObservation",
]
