"""The unreplicated baseline: a single server, no fault tolerance.

Figures 4 and 6 of the paper compare the replicated systems against an
unreplicated implementation of the same service; this module provides that
baseline on the same simulated substrate so that the comparison isolates the
replication overhead (extra messages and cryptography) rather than substrate
differences.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..crypto.keys import Keystore
from ..crypto.provider import CryptoProvider
from ..messages.reply import BatchReplyBody, ClientReply, ReplyBody
from ..messages.request import ClientRequest, RequestEnvelope
from ..net.message import Message
from ..sim.process import Process
from ..sim.scheduler import Scheduler
from ..statemachine.interface import StateMachine
from ..statemachine.nondet import NonDetInput
from ..util.ids import NodeId, Role, client_id, server_id
from .client import ClientNode
from .system import SimulatedSystem


class UnreplicatedServer(Process):
    """A single correct server executing requests in arrival order."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, state_machine: StateMachine,
                 client_ids: List[NodeId]) -> None:
        super().__init__(node_id, scheduler)
        self.config = config
        self.app = state_machine
        self.client_ids = list(client_ids)
        self.crypto = CryptoProvider(node_id, keystore, config.crypto,
                                     charge=self.charge,
                                     record=self.stats.record_crypto,
                                     perf=config.perf)
        self.next_seq = 1
        self.reply_cache: Dict[NodeId, ClientReply] = {}
        self.requests_executed = 0

    def on_message(self, sender: NodeId, message: Message) -> None:
        if not isinstance(message, RequestEnvelope):
            return
        certificate = message.certificate
        request = certificate.payload
        if not isinstance(request, ClientRequest):
            return
        if request.client not in self.client_ids:
            return
        if not self.crypto.verify_certificate(certificate, 1, [request.client]):
            return
        self._handle_request(request)

    def _handle_request(self, request: ClientRequest) -> None:
        cached = self.reply_cache.get(request.client)
        if cached is not None and cached.reply.timestamp >= request.timestamp:
            self.send(request.client, cached)
            return
        operation = request.operation_for(Role.SERVER)
        result = self.app.execute(operation, NonDetInput.empty())
        self.charge(self.config.app_processing_ms + result.processing_ms)
        self.requests_executed += 1
        seq = self.next_seq
        self.next_seq += 1
        reply = ReplyBody(view=0, seq=seq, timestamp=request.timestamp,
                          client=request.client, result=result)
        body = BatchReplyBody(view=0, seq=seq, replies=(reply,))
        certificate = Certificate(payload=body, scheme=AuthenticationScheme.MAC)
        certificate.add(self.crypto.mac_authenticator(body, [request.client]))
        message = ClientReply(reply=reply, body=body, certificate=certificate)
        self.reply_cache[request.client] = message
        self.send(request.client, message)


class UnreplicatedSystem(SimulatedSystem):
    """Deployment of the unreplicated baseline on the simulated network."""

    def __init__(self, config: SystemConfig,
                 app_factory: Callable[[], StateMachine],
                 num_clients: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__(config, seed=seed)
        count = num_clients if num_clients is not None else config.num_clients
        self.server_id = server_id(0)
        self.client_ids = [client_id(i) for i in range(count)]
        self.server = UnreplicatedServer(
            node_id=self.server_id, scheduler=self.scheduler, config=config,
            keystore=self.keystore, state_machine=app_factory(),
            client_ids=self.client_ids,
        )
        self.network.register(self.server)

        self.clients: List[ClientNode] = []
        for node_id in self.client_ids:
            client = ClientNode(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, agreement_ids=[self.server_id],
                request_verifiers=[self.server_id],
                reply_quorum=1, reply_universe=[self.server_id],
            )
            self.clients.append(client)
            self.network.register(client)

    def server_processes(self):
        return [self.server]
