"""The message queue installed as the agreement library's local state machine.

Section 3.2.1 of the paper: each agreement node hosts a message queue
instance that stores ``maxN`` (the highest sequence number in any agreement
certificate received), ``pendingSends`` (request/agreement certificates and
retransmission timers for batches whose reply has not yet arrived), and an
optional per-client reply cache ``cache_c``.

* ``insert`` (here :meth:`MessageQueue.execute_batch`, the name the agreement
  library calls) stores the certificates, multicasts them towards the
  execution cluster, and arms a retransmission timer with exponential
  backoff.
* When a valid reply certificate with ``g + 1`` execution authenticators (or
  one threshold signature) arrives, the queue drops the pending entries for
  that and all lower sequence numbers, cancels their timers, forwards the
  reply to the client, and optionally caches it.
* ``retryHint`` serves client-initiated retransmissions from the cache, or
  resends the pending certificates, or reports that agreement must be re-run.
* Pipeline back-pressure: the agreement replica will not start sequence
  number ``n`` until the queue has seen a reply for ``n - P``
  (:meth:`highest_ready_seq`).

Runtime-backend contract
------------------------
The queue is deliberately runtime-agnostic: it leans only on the invariants
the :class:`~repro.runtime.interface.Runtime` seam guarantees on *every*
backend, which is why it runs unmodified over real sockets:

* Its handlers are atomic (no interleaving on one node), so quorum
  accumulation in ``_ReplyCollector`` needs no locking anywhere.
* Retransmission timers rely only on one-shot ``call_after`` semantics and
  ``Timer.cancel()``; nothing assumes virtual time or same-instant firing
  order.
* Duplicate replies and re-deliveries are handled by sequence-number
  checks, not by assuming exactly-once transport; the transport only
  promises *at most* once per send, per-link FIFO.
* Reply-certificate verification goes through the node's
  ``VerifiedCertificateCache``: a real backend's crypto pool pre-warms
  that cache from worker processes, which is invisible here beyond the
  verify call returning without charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..agreement.local import LocalExecutor, RetryOutcome
from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..errors import ProtocolError
from ..messages.agreement import OrderedBatch
from ..messages.reply import BatchReply, BatchReplyBody, ClientReply
from ..messages.request import ClientRequest
from ..obs import request_trace_id
from ..sim.process import Process
from ..sim.scheduler import Timer
from ..statemachine.nondet import NonDetInput
from ..util.ids import NodeId


@dataclass
class PendingSend:
    """Book-keeping for one batch awaiting its reply certificate."""

    batch: OrderedBatch
    timer: Optional[Timer] = None
    timeout_ms: float = 0.0
    retransmissions: int = 0


@dataclass
class _ReplyCollector:
    """Accumulates partial reply certificates until a quorum is reached."""

    body: BatchReplyBody
    certificate: Certificate
    done: bool = False


class MessageQueue(LocalExecutor):
    """Local state machine of one agreement node in the separated architecture."""

    def __init__(self, owner: Process, config: SystemConfig,
                 execution_ids: List[NodeId], downstream: List[NodeId],
                 client_ids: List[NodeId],
                 threshold_group: Optional[str] = None) -> None:
        #: the agreement replica process hosting this queue; provides
        #: send/set_timer/charge and the crypto provider.
        self.owner = owner
        self.config = config
        self.execution_ids = list(execution_ids)
        #: where ordered batches are sent: the execution nodes directly, or
        #: the bottom row of the privacy firewall.
        self.downstream = list(downstream)
        self.client_ids = list(client_ids)
        self.threshold_group = threshold_group

        self.max_n = 0
        self.pending_sends: Dict[int, PendingSend] = {}
        #: optional per-client cache of the latest full reply certificate
        self.cache: Dict[NodeId, ClientReply] = {}
        self.highest_reply_seq = 0
        #: partial-certificate assembly, keyed by (seq, body digest)
        self._collectors: Dict[Tuple[int, bytes], _ReplyCollector] = {}

        # Statistics used by benchmarks and tests.
        self.batches_sent = 0
        self.replies_forwarded = 0
        self.retransmissions = 0
        self.cache_hits = 0

        # Observability (passive: never charges, never schedules).
        self._c_batches_sent = owner.metrics.counter("queue.batches_sent")
        self._c_replies_forwarded = owner.metrics.counter("queue.replies_forwarded")
        owner.metrics.register_probe("queue.state", self._queue_probe)

    def _queue_probe(self) -> dict:
        """Snapshot of the queue's ad-hoc counters for the metrics registry."""
        return {
            "max_n": self.max_n,
            "pending_sends": len(self.pending_sends),
            "batches_sent": self.batches_sent,
            "replies_forwarded": self.replies_forwarded,
            "retransmissions": self.retransmissions,
            "cache_hits": self.cache_hits,
        }

    def _trace_requests(self, certificates: Tuple[Certificate, ...],
                        event: str) -> None:
        """Record one trace event per client request inside a batch."""
        for certificate in certificates:
            request = certificate.payload
            if isinstance(request, ClientRequest):
                self.owner.trace_event(
                    request_trace_id(request.client, request.timestamp), event)

    # ------------------------------------------------------------------ #
    # Helpers.
    # ------------------------------------------------------------------ #

    @property
    def crypto(self):
        return self.owner.crypto  # type: ignore[attr-defined]

    def _send_downstream(self, batch: OrderedBatch) -> None:
        self.owner.multicast(self.downstream, batch)
        self.batches_sent += 1
        self._c_batches_sent.inc()

    # ------------------------------------------------------------------ #
    # LocalExecutor interface (called by the agreement replica).
    # ------------------------------------------------------------------ #

    def execute_batch(self, seq: int, view: int,
                      request_certificates: Tuple[Certificate, ...],
                      agreement_certificate: Certificate,
                      nondet: NonDetInput) -> None:
        """The BASE library's ``msgQueue.insert(request cert, agreement cert)``."""
        batch = OrderedBatch(seq=seq, view=view,
                             request_certificates=tuple(request_certificates),
                             agreement_certificate=agreement_certificate,
                             nondet=nondet)
        self.max_n = max(self.max_n, seq)
        if self.owner.tracing:
            self._trace_requests(batch.request_certificates, "release")
        pending = PendingSend(batch=batch,
                              timeout_ms=self.config.timers.agreement_retransmit_ms)
        self.pending_sends[seq] = pending
        # Optimisation from the paper: on first insertion only the current
        # primary multicasts the batch downstream; every node retransmits if
        # the timeout expires before the reply certificate arrives.
        if not self.config.primary_sends_first or self._owner_is_primary(view):
            self._send_downstream(batch)
        self._arm_timer(pending)

    def _owner_is_primary(self, view: int) -> bool:
        primary_of = getattr(self.owner, "primary_of", None)
        if primary_of is None:
            return True
        return primary_of(view) == self.owner.node_id

    def _arm_timer(self, pending: PendingSend) -> None:
        seq = pending.batch.seq
        pending.timer = self.owner.set_timer(
            pending.timeout_ms,
            lambda seq=seq: self._on_retransmit_timeout(seq),
            label=f"{self.owner.node_id}:mq-retransmit:{seq}",
        )

    def _on_retransmit_timeout(self, seq: int) -> None:
        pending = self.pending_sends.get(seq)
        if pending is None:
            return
        self._send_downstream(pending.batch)
        self.retransmissions += 1
        pending.retransmissions += 1
        # Exponential backoff, as in the paper.
        pending.timeout_ms *= 2
        self._arm_timer(pending)

    def retry_hint(self, request_certificate: Certificate) -> RetryOutcome:
        """Handle a client-initiated retransmission (BASE's ``retryHint``)."""
        request: ClientRequest = request_certificate.payload
        cached = self.cache.get(request.client)
        if (self.config.use_reply_cache and cached is not None
                and cached.reply.timestamp >= request.timestamp):
            self.owner.send(request.client, cached)
            self.cache_hits += 1
            return RetryOutcome.HANDLED
        for pending in self.pending_sends.values():
            for cert in pending.batch.request_certificates:
                pending_request: ClientRequest = cert.payload
                if (pending_request.client == request.client
                        and pending_request.timestamp == request.timestamp):
                    self._send_downstream(pending.batch)
                    self.retransmissions += 1
                    return RetryOutcome.HANDLED
        return RetryOutcome.NEED_ORDER

    def highest_ready_seq(self) -> Optional[int]:
        return self.highest_reply_seq

    def on_stable_checkpoint(self, seq: int) -> None:
        # The reply cache is explicitly excluded from checkpoints and pending
        # sends are only dropped when their reply arrives, so a stable
        # agreement checkpoint requires no action here.
        return None

    # ------------------------------------------------------------------ #
    # Reply certificates from the execution cluster / privacy firewall.
    # ------------------------------------------------------------------ #

    def on_batch_reply(self, sender: NodeId, message: BatchReply) -> None:
        """Handle a (partial or full) reply certificate flowing back down."""
        body = message.body
        certificate = message.certificate
        if body.seq != message.seq:
            return
        full = self._assemble(sender, body, certificate)
        if full is None:
            return
        self._accept_reply(body, full)

    def _assemble(self, sender: NodeId, body: BatchReplyBody,
                  certificate: Certificate) -> Optional[Certificate]:
        """Merge partial certificates until ``g + 1`` signers (or a threshold
        signature) vouch for the reply body; returns the full certificate."""
        return self._assemble_into(self._collectors, (), body, certificate,
                                   universe=self.execution_ids,
                                   default_group=self.threshold_group)

    def _assemble_into(self, collectors: Dict[tuple, _ReplyCollector],
                       key_prefix: tuple, body: BatchReplyBody,
                       certificate: Certificate, universe: List[NodeId],
                       default_group: Optional[str]) -> Optional[Certificate]:
        """Shared partial-certificate assembly.

        ``universe`` is the set of execution replicas allowed to contribute
        the ``g + 1`` matching authenticators (the whole cluster here; one
        shard's replicas in :class:`~repro.sharding.queue.ShardRouterQueue`),
        and ``key_prefix`` namespaces the collector table accordingly.
        """
        if certificate.scheme is AuthenticationScheme.THRESHOLD:
            if certificate.threshold_signature is not None:
                if self.crypto.verify_certificate(certificate, self.config.reply_quorum):
                    return certificate
                return None
            # A partial threshold share: accumulate and combine at quorum.
            key = key_prefix + (body.seq, self.crypto.payload_digest(body))
            collector = collectors.get(key)
            if collector is None:
                collector = _ReplyCollector(body=body, certificate=Certificate(
                    payload=body, scheme=certificate.scheme,
                    threshold_group=certificate.threshold_group or default_group))
                collectors[key] = collector
            # Once assembled the certificate has been forwarded inside reply
            # messages, which memoise their wire forms; merging further
            # partials would mutate a sent certificate (and buys nothing).
            if collector.done:
                return None
            collector.certificate.merge(certificate)
            valid = self.crypto.valid_signers(collector.certificate, universe)
            if len(valid) < self.config.reply_quorum:
                return None
            signature = self.crypto.threshold_combine(
                body, collector.certificate.threshold_group,
                collector.certificate.authenticator_list())
            collector.certificate.threshold_signature = signature
            collector.done = True
            return collector.certificate

        # MAC / signature partials: merge and count distinct execution signers.
        key = key_prefix + (body.seq, self.crypto.payload_digest(body))
        collector = collectors.get(key)
        if collector is None:
            collector = _ReplyCollector(body=body, certificate=Certificate(
                payload=body, scheme=certificate.scheme))
            collectors[key] = collector
        if collector.done:
            return None
        collector.certificate.merge(certificate)
        valid = self.crypto.valid_signers(collector.certificate, universe)
        if len(valid) < self.config.reply_quorum:
            return None
        collector.done = True
        return collector.certificate

    def _accept_reply(self, body: BatchReplyBody, certificate: Certificate) -> None:
        """A full reply certificate for ``body.seq`` has been assembled."""
        seq = body.seq
        self.highest_reply_seq = max(self.highest_reply_seq, seq)
        # Drop pending entries for this and all lower sequence numbers.
        for pending_seq in [s for s in self.pending_sends if s <= seq]:
            pending = self.pending_sends.pop(pending_seq)
            if pending.timer is not None:
                pending.timer.cancel()
        # Garbage collect assembly state for old sequence numbers.
        horizon = seq - self.config.pipeline_depth
        self._collectors = {
            key: value for key, value in self._collectors.items() if key[0] > horizon
        }
        # Forward each client its reply and update the cache.
        for reply in body.replies:
            client_reply = ClientReply(reply=reply, body=body, certificate=certificate)
            if self.config.use_reply_cache:
                cached = self.cache.get(reply.client)
                if cached is None or cached.reply.timestamp <= reply.timestamp:
                    self.cache[reply.client] = client_reply
            self.owner.send(reply.client, client_reply)
            self.replies_forwarded += 1
            self._c_replies_forwarded.inc()
        self._notify_pipeline_progress()

    def _notify_pipeline_progress(self) -> None:
        """Tell the hosting replica that pipeline capacity was freed (the
        group-commit trigger for adaptive bundling)."""
        hook = getattr(self.owner, "on_pipeline_progress", None)
        if hook is not None:
            hook()
