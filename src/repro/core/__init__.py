"""The separated agreement/execution architecture (the paper's contribution).

* :class:`~repro.core.message_queue.MessageQueue` -- the local state machine
  installed in each agreement node, relaying ordered batches to the execution
  cluster and reply certificates back to clients.
* :class:`~repro.core.execution.ExecutionNode` -- one of the ``2g + 1``
  application-specific execution replicas.
* :class:`~repro.core.client.ClientNode` -- the client protocol (request
  certificates, retransmission, reply-certificate verification).
* :class:`~repro.core.system.SeparatedSystem` -- builds a complete deployment
  (optionally with the privacy firewall) on the simulated network.
* :class:`~repro.core.baseline.CoupledSystem` and
  :class:`~repro.core.unreplicated.UnreplicatedSystem` -- the two baselines the
  paper compares against.
"""

from .client import ClientNode, CompletedRequest
from .message_queue import MessageQueue
from .execution import ExecutionNode
from .system import SeparatedSystem
from .baseline import CoupledSystem, DirectExecutor
from .unreplicated import UnreplicatedSystem, UnreplicatedServer

__all__ = [
    "ClientNode",
    "CompletedRequest",
    "MessageQueue",
    "ExecutionNode",
    "SeparatedSystem",
    "CoupledSystem",
    "DirectExecutor",
    "UnreplicatedSystem",
    "UnreplicatedServer",
]
