"""The coupled BASE-style baseline (traditional architecture, Figure 1a).

In the traditional architecture the ``3f + 1`` replicas both agree on the
order of requests *and* execute them; clients act as their own voters and
accept a result once ``f + 1`` replicas report matching replies.

We reuse the agreement library unchanged and plug in a
:class:`DirectExecutor` as its local state machine: instead of enqueueing the
batch for a separate execution cluster, the executor runs the requests
against the application hosted on the same node and replies to the clients
directly.  This is exactly the relationship between BASE and the paper's
modified BASE, inverted.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..agreement.local import LocalExecutor, RetryOutcome
from ..agreement.replica import AgreementReplica
from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..messages.reply import BatchReplyBody, ClientReply, ReplyBody
from ..messages.request import ClientRequest
from ..statemachine.interface import StateMachine
from ..statemachine.nondet import NonDetInput
from ..util.ids import NodeId, Role, agreement_id, client_id
from .client import ClientNode
from .system import SimulatedSystem


class DirectExecutor(LocalExecutor):
    """Local state machine of a coupled (traditional) BFT replica."""

    def __init__(self, config: SystemConfig, state_machine: StateMachine,
                 client_ids: List[NodeId]) -> None:
        self.config = config
        self.app = state_machine
        self.client_ids = list(client_ids)
        #: the hosting agreement replica; set via :meth:`bind_owner`.
        self.owner: Optional[AgreementReplica] = None
        #: last reply sent to each client (exactly-once semantics)
        self.reply_cache: Dict[NodeId, ClientReply] = {}
        self.last_executed_seq = 0
        self.requests_executed = 0

    def bind_owner(self, owner: AgreementReplica) -> None:
        self.owner = owner

    # ------------------------------------------------------------------ #
    # LocalExecutor interface.
    # ------------------------------------------------------------------ #

    def execute_batch(self, seq: int, view: int,
                      request_certificates: Tuple[Certificate, ...],
                      agreement_certificate: Certificate,
                      nondet: NonDetInput) -> None:
        assert self.owner is not None, "DirectExecutor used before bind_owner()"
        replies: List[ReplyBody] = []
        for certificate in request_certificates:
            request: ClientRequest = certificate.payload
            replies.append(self._execute_request(seq, view, request, nondet))
        body = BatchReplyBody(view=view, seq=seq, replies=tuple(replies))
        reply_certificate = Certificate(payload=body, scheme=AuthenticationScheme.MAC)
        reply_certificate.add(self.owner.crypto.mac_authenticator(body, self.client_ids))
        for reply in replies:
            message = ClientReply(reply=reply, body=body, certificate=reply_certificate)
            cached = self.reply_cache.get(reply.client)
            if cached is None or cached.reply.timestamp <= reply.timestamp:
                self.reply_cache[reply.client] = message
            self.owner.send(reply.client, message)
        self.last_executed_seq = seq

    def _execute_request(self, seq: int, view: int, request: ClientRequest,
                         nondet: NonDetInput) -> ReplyBody:
        assert self.owner is not None
        cached = self.reply_cache.get(request.client)
        last_timestamp = cached.reply.timestamp if cached is not None else -1
        if request.timestamp > last_timestamp:
            operation = request.operation_for(Role.AGREEMENT)
            result = self.app.execute(operation, nondet)
            self.owner.charge(self.config.app_processing_ms + result.processing_ms)
            self.requests_executed += 1
            return ReplyBody(view=view, seq=seq, timestamp=request.timestamp,
                             client=request.client, result=result)
        # Retransmission: reply with the cached timestamp and body.
        assert cached is not None
        return ReplyBody(view=view, seq=seq, timestamp=cached.reply.timestamp,
                         client=request.client, result=cached.reply.result)

    def retry_hint(self, request_certificate: Certificate) -> RetryOutcome:
        assert self.owner is not None
        request: ClientRequest = request_certificate.payload
        cached = self.reply_cache.get(request.client)
        if cached is not None and cached.reply.timestamp >= request.timestamp:
            self.owner.send(request.client, cached)
            return RetryOutcome.HANDLED
        return RetryOutcome.NEED_ORDER

    def checkpoint_digest(self, seq: int) -> bytes:
        from ..crypto.digest import digest

        return digest({"seq": seq, "app": self.app.state_digest()})

    def highest_ready_seq(self) -> Optional[int]:
        return None


class CoupledSystem(SimulatedSystem):
    """The traditional BASE-style deployment: 3f + 1 combined replicas."""

    def __init__(self, config: SystemConfig,
                 app_factory: Callable[[], StateMachine],
                 num_clients: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__(config, seed=seed)
        count = num_clients if num_clients is not None else config.num_clients
        self.agreement_ids = [agreement_id(i) for i in range(config.num_agreement_nodes)]
        self.client_ids = [client_id(i) for i in range(count)]

        self.executors: List[DirectExecutor] = []
        self.replicas: List[AgreementReplica] = []
        for node_id in self.agreement_ids:
            executor = DirectExecutor(config, app_factory(), self.client_ids)
            replica = AgreementReplica(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, local=executor,
                agreement_ids=self.agreement_ids, client_ids=self.client_ids,
                cert_verifiers=self.agreement_ids,
            )
            executor.bind_owner(replica)
            self.executors.append(executor)
            self.replicas.append(replica)
            self.network.register(replica)

        self.clients: List[ClientNode] = []
        for node_id in self.client_ids:
            client = ClientNode(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, agreement_ids=self.agreement_ids,
                request_verifiers=self.agreement_ids,
                reply_quorum=config.f + 1, reply_universe=self.agreement_ids,
            )
            self.clients.append(client)
            self.network.register(client)

    # ------------------------------------------------------------------ #
    # Fault injection helpers.
    # ------------------------------------------------------------------ #

    def crash_replica(self, index: int) -> None:
        """Crash one of the combined agreement/execution replicas."""
        self.replicas[index].crash()

    def server_processes(self):
        return list(self.replicas)
