"""The client protocol (Section 3.1.1 of the paper).

A client issues a request certificate ``<REQUEST, o, t, c>_{c,A,1}`` with a
monotonically increasing timestamp, sends it to the agreement node it
believes is the primary, and waits for a valid reply certificate carrying
``g + 1`` matching execution authenticators (or one threshold signature over
the reply bundle).  If no reply arrives before a timeout the client
retransmits to *all* agreement nodes, doubling the timeout each time.

The same class also serves the two baselines: the coupled BASE-style system
(replies must match across ``f + 1`` of the combined replicas -- the client
is its own voter) and the unreplicated server (quorum of one), configured by
``reply_quorum`` / ``reply_universe``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..crypto.keys import Keystore
from ..crypto.provider import CryptoProvider
from ..messages.reply import BatchReplyBody, ClientReply
from ..messages.request import ClientRequest, EncryptedBody, RequestEnvelope
from ..net.message import Message
from ..obs import request_trace_id
from ..sim.process import Process
from ..sim.scheduler import Scheduler, Timer
from ..statemachine.interface import Operation, OperationResult
from ..util.ids import NodeId, Role


@dataclass(frozen=True)
class CompletedRequest:
    """Record of one completed request (used by benchmarks and tests)."""

    timestamp: int
    operation: Operation
    result: OperationResult
    issued_at_ms: float
    completed_at_ms: float
    seq: int
    view: int

    @property
    def latency_ms(self) -> float:
        return self.completed_at_ms - self.issued_at_ms


@dataclass
class _PendingRequest:
    """State for the client's single outstanding request."""

    timestamp: int
    operation: Operation
    envelope: RequestEnvelope
    issued_at_ms: float
    callback: Optional[Callable[[CompletedRequest], None]] = None
    timer: Optional[Timer] = None
    timeout_ms: float = 0.0
    retransmissions: int = 0
    collectors: Dict[bytes, Certificate] = field(default_factory=dict)
    bodies: Dict[bytes, BatchReplyBody] = field(default_factory=dict)


class ClientNode(Process):
    """A client of the replicated service."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, agreement_ids: List[NodeId],
                 request_verifiers: List[NodeId],
                 reply_quorum: int, reply_universe: List[NodeId],
                 threshold_group: Optional[str] = None,
                 encrypt_requests: bool = False) -> None:
        super().__init__(node_id, scheduler)
        self.config = config
        self.agreement_ids = list(agreement_ids)
        #: every node that must be able to verify this client's MAC-vector
        #: request authenticators (agreement + execution + firewall nodes).
        self.request_verifiers = list(request_verifiers)
        self.reply_quorum = reply_quorum
        self.reply_universe = list(reply_universe)
        self.threshold_group = threshold_group
        self.encrypt_requests = encrypt_requests
        self.crypto = CryptoProvider(node_id, keystore, config.crypto,
                                     charge=self.charge,
                                     record=self.stats.record_crypto,
                                     perf=config.perf)

        self._next_timestamp = 1
        self._pending: Optional[_PendingRequest] = None
        self._queue: List[tuple] = []
        self._last_known_view = 0

        self.completed: List[CompletedRequest] = []
        self.retransmissions = 0

    # ------------------------------------------------------------------ #
    # Submitting requests.
    # ------------------------------------------------------------------ #

    @property
    def outstanding(self) -> bool:
        """Whether a request is currently awaiting its reply."""
        return self._pending is not None

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, operation: Operation,
               callback: Optional[Callable[[CompletedRequest], None]] = None) -> int:
        """Submit ``operation``; returns the request timestamp.

        A correct client keeps a single request outstanding; additional
        submissions queue behind it and are issued in order as replies arrive.
        """
        timestamp = self._next_timestamp
        self._next_timestamp += 1
        if self._pending is None:
            self._issue(operation, timestamp, callback, issued_at=self.now)
        else:
            # Record the submission time so open-loop benchmarks measure the
            # full response time including queueing behind earlier requests.
            self._queue.append((operation, timestamp, callback, self.now))
        return timestamp

    def _issue(self, operation: Operation, timestamp: int,
               callback: Optional[Callable[[CompletedRequest], None]],
               issued_at: Optional[float] = None) -> None:
        body: Any = operation
        if self.encrypt_requests:
            body = EncryptedBody(operation,
                                 readers=frozenset({Role.CLIENT, Role.EXECUTION}),
                                 size=max(operation.body_size, 64))
        request = ClientRequest(operation=body, timestamp=timestamp,
                                client=self.node_id)
        certificate = self.crypto.new_certificate(
            request, AuthenticationScheme.MAC, self.request_verifiers)
        envelope = RequestEnvelope(certificate=certificate)
        self._pending = _PendingRequest(
            timestamp=timestamp, operation=operation, envelope=envelope,
            issued_at_ms=self.now if issued_at is None else issued_at,
            callback=callback,
            timeout_ms=self.config.timers.client_retransmit_ms,
        )
        if self.tracing:
            self.trace_event(request_trace_id(self.node_id, timestamp), "submit")
        primary = self.agreement_ids[self._last_known_view % len(self.agreement_ids)]
        self.send(primary, envelope)
        self._arm_timer()

    def _arm_timer(self) -> None:
        pending = self._pending
        if pending is None:
            return
        pending.timer = self.set_timer(
            pending.timeout_ms,
            lambda timestamp=pending.timestamp: self._on_timeout(timestamp),
            label=f"{self.node_id}:client-retransmit",
        )

    def _on_timeout(self, timestamp: int) -> None:
        pending = self._pending
        if pending is None or pending.timestamp != timestamp:
            return
        # Retransmissions go to every agreement node and ask all of them to reply.
        retry_request = ClientRequest(
            operation=pending.envelope.request.operation,
            timestamp=pending.timestamp, client=self.node_id, all_replicas=True)
        certificate = self.crypto.new_certificate(
            retry_request, AuthenticationScheme.MAC, self.request_verifiers)
        pending.envelope = RequestEnvelope(certificate=certificate)
        self.multicast(self.agreement_ids, pending.envelope)
        self.retransmissions += 1
        pending.retransmissions += 1
        pending.timeout_ms *= 2
        self._arm_timer()

    # ------------------------------------------------------------------ #
    # Replies.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, ClientReply):
            self.handle_reply(sender, message)

    def handle_reply(self, sender: NodeId, message: ClientReply) -> None:
        pending = self._pending
        if pending is None:
            return
        reply = message.reply
        if reply.client != self.node_id or reply.timestamp != pending.timestamp:
            return
        body = message.body
        own = body.reply_for(self.node_id)
        if own is None or own.timestamp != reply.timestamp:
            return
        certificate = self._collect(pending, body, message.certificate)
        if certificate is None:
            return
        self._complete(pending, reply, body)

    def _collect(self, pending: _PendingRequest, body: BatchReplyBody,
                 certificate: Certificate) -> Optional[Certificate]:
        """Merge partial certificates until the reply quorum is reached."""
        if certificate.scheme is AuthenticationScheme.THRESHOLD:
            if certificate.threshold_signature is None:
                return None
            if self.crypto.verify_certificate(certificate, self.reply_quorum):
                return certificate
            return None
        digest = self.crypto.payload_digest(body)
        collector = pending.collectors.get(digest)
        if collector is None:
            collector = Certificate(payload=body, scheme=certificate.scheme)
            pending.collectors[digest] = collector
            pending.bodies[digest] = body
        collector.merge(certificate)
        valid = self.crypto.valid_signers(collector, self.reply_universe)
        if len(valid) >= self.reply_quorum:
            return collector
        return None

    def _complete(self, pending: _PendingRequest, reply, body: BatchReplyBody) -> None:
        result = reply.result_for(Role.CLIENT)
        record = CompletedRequest(
            timestamp=pending.timestamp, operation=pending.operation,
            result=result, issued_at_ms=pending.issued_at_ms,
            completed_at_ms=self.now, seq=reply.seq, view=reply.view,
        )
        self.completed.append(record)
        if self.tracing:
            self.trace_event(request_trace_id(self.node_id, pending.timestamp),
                             "reply")
        self.metrics.histogram("client.latency_ms").observe(record.latency_ms)
        self._last_known_view = reply.view
        if pending.timer is not None:
            pending.timer.cancel()
        self._pending = None
        if pending.callback is not None:
            pending.callback(record)
        if self._queue:
            operation, timestamp, callback, submitted_at = self._queue.pop(0)
            self._issue(operation, timestamp, callback, issued_at=submitted_at)

    # ------------------------------------------------------------------ #
    # Introspection helpers for benchmarks and tests.
    # ------------------------------------------------------------------ #

    def latencies_ms(self) -> List[float]:
        """Latency of every completed request, in completion order."""
        return [record.latency_ms for record in self.completed]

    def results(self) -> List[Any]:
        """Application-level result values of every completed request."""
        return [record.result.value for record in self.completed]
