"""System assembly: build complete deployments on the simulated network.

:class:`SimulatedSystem` is the shared driver (scheduler, keystore, network,
clients, invoke/run helpers); :class:`SeparatedSystem` builds the paper's
architecture -- ``3f + 1`` agreement nodes with message queues, ``2g + 1``
execution nodes, optionally the ``(h + 1)^2`` privacy-firewall filters -- and
wires the restricted communication topology.  The two baselines
(:class:`~repro.core.baseline.CoupledSystem` and
:class:`~repro.core.unreplicated.UnreplicatedSystem`) extend the same driver,
so benchmarks can swap systems without changing the workload code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..agreement.replica import AgreementReplica
from ..config import AuthenticationScheme, Deployment, SystemConfig
from ..crypto.keys import Keystore
from ..errors import ConfigurationError, LivenessTimeoutError
from ..net.topology import Topology
from ..obs import ObservabilityHub, TraceEvent
from ..runtime import build_runtime
from ..sim.process import Process
from ..util.wirecache import WIRE_CACHE
from ..statemachine.interface import Operation, StateMachine
from ..util.ids import NodeId, agreement_id, client_id, execution_id
from .client import ClientNode, CompletedRequest
from .execution import ExecutionNode
from .message_queue import MessageQueue

#: name of the execution cluster's threshold-signature group
EXECUTION_THRESHOLD_GROUP = "execution-replies"


class SimulatedSystem:
    """Common driver for every deployment style."""

    def __init__(self, config: SystemConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self.keystore = Keystore()
        # The runtime backend supplies the scheduler/network pair: the
        # deterministic virtual-time simulator by default, or the asyncio
        # real-socket backend when config.runtime selects it.  Everything
        # downstream (nodes, certificates, caches, drivers) is identical
        # across backends.
        self.runtime = build_runtime(
            config, seed if seed is not None else config.seed,
            keystore=self.keystore)
        self.scheduler = self.runtime.scheduler
        # The observability hub must be installed before any Process is
        # constructed: each node captures its registry and tracing flag in
        # Process.__init__.  The hub is strictly passive (no charges, no
        # events, no RNG), so virtual-time results are identical with
        # observability on, off, or absent.
        self.obs = ObservabilityHub(config.observability)
        self.scheduler.obs = self.obs
        self.obs.register_global_probe("wire_cache", WIRE_CACHE.snapshot)
        self.network = self.runtime.network
        self.clients: List[ClientNode] = []

    # ------------------------------------------------------------------ #
    # Running the simulation.
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.scheduler.now

    def run(self, duration_ms: float) -> float:
        """Advance virtual time by ``duration_ms`` (processing due events)."""
        return self.scheduler.run(until=self.scheduler.now + duration_ms)

    def run_until(self, predicate: Callable[[], bool], timeout_ms: float,
                  description: str = "condition") -> float:
        """Run until ``predicate`` holds; raises LivenessTimeoutError otherwise."""
        return self.scheduler.run_until(predicate, timeout_ms, description)

    def close(self) -> None:
        """Release runtime resources (sockets, pools; a no-op on the simulator)."""
        self.runtime.close()

    def __enter__(self) -> "SimulatedSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Issuing requests.
    # ------------------------------------------------------------------ #

    def invoke(self, operation: Operation, client_index: int = 0,
               timeout_ms: float = 60_000.0) -> CompletedRequest:
        """Submit ``operation`` from one client and run until its reply arrives."""
        client = self.clients[client_index]
        before = len(client.completed)
        client.submit(operation)
        self.run_until(lambda: len(client.completed) > before, timeout_ms,
                       description=f"reply for client {client.node_id}")
        return client.completed[-1]

    def invoke_sequence(self, operations: Sequence[Operation], client_index: int = 0,
                        timeout_ms: float = 60_000.0) -> List[CompletedRequest]:
        """Submit ``operations`` one at a time from the same client."""
        return [self.invoke(operation, client_index, timeout_ms)
                for operation in operations]

    def submit(self, operation: Operation, client_index: int = 0) -> int:
        """Submit without waiting (the client queues behind its outstanding request)."""
        return self.clients[client_index].submit(operation)

    def total_completed(self) -> int:
        """Total requests completed across all clients."""
        return sum(len(client.completed) for client in self.clients)

    def all_latencies_ms(self) -> List[float]:
        """Latencies of every completed request across all clients."""
        return [latency for client in self.clients for latency in client.latencies_ms()]

    # ------------------------------------------------------------------ #
    # Metrics.
    # ------------------------------------------------------------------ #

    def server_processes(self) -> List[Process]:
        """The server-side processes of this deployment (overridden)."""
        return []

    def crypto_op_totals(self) -> Dict[str, int]:
        """Aggregate cryptographic operation counts over all server processes."""
        totals: Dict[str, int] = {}
        for process in self.server_processes():
            for op, count in process.stats.crypto_ops.items():
                totals[op] = totals.get(op, 0) + count
        return totals

    def busy_ms_by_node(self) -> Dict[str, float]:
        """Virtual processing time consumed per server node."""
        return {process.node_id.name: process.stats.busy_ms
                for process in self.server_processes()}

    def max_server_utilization(self, elapsed_ms: Optional[float] = None) -> float:
        """Utilisation of the busiest server node over ``elapsed_ms`` (default: now)."""
        window = elapsed_ms if elapsed_ms is not None else max(self.now, 1e-9)
        servers = self.server_processes()
        if not servers:
            return 0.0
        return max(process.stats.utilization(window) for process in servers)

    # ------------------------------------------------------------------ #
    # Observability.
    # ------------------------------------------------------------------ #

    def metrics_snapshot(self) -> Dict[str, object]:
        """Every node's registered instruments and probes, plus the per-node
        crypto operation counters (which surface the ``*_cached`` tallies).

        Empty when ``config.observability.metrics`` is off.
        """
        if not self.config.observability.metrics:
            return {}
        snapshot = self.obs.metrics_snapshot()
        snapshot["crypto_ops"] = self.crypto_op_totals()
        return snapshot

    def trace_events(self) -> List[TraceEvent]:
        """Every recorded trace event, in record order (empty when off)."""
        return self.obs.tracer.events()

    def export_trace_jsonl(self, path: str) -> int:
        """Write the recorded trace to ``path`` as JSONL; returns the count."""
        return self.obs.tracer.export_jsonl(path)

    def critical_path(self) -> Dict[str, object]:
        """Per-stage latency breakdown folded from the recorded trace."""
        from ..analysis.critical_path import critical_path_breakdown

        return critical_path_breakdown(self.trace_events())


class SeparatedSystem(SimulatedSystem):
    """The paper's architecture: separate agreement and execution clusters,
    optionally behind the privacy firewall."""

    def __init__(self, config: SystemConfig,
                 app_factory: Callable[[], StateMachine],
                 num_clients: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__(config, seed=seed)
        count = num_clients if num_clients is not None else config.num_clients
        self.agreement_ids = [agreement_id(i) for i in range(config.num_agreement_nodes)]
        self.execution_ids = [execution_id(i) for i in range(config.num_execution_nodes)]
        self.client_ids = [client_id(i) for i in range(count)]

        threshold_group: Optional[str] = None
        if config.authentication is AuthenticationScheme.THRESHOLD:
            threshold_group = EXECUTION_THRESHOLD_GROUP
            self.keystore.create_threshold_group(
                threshold_group, self.execution_ids, config.reply_quorum)
        self.threshold_group = threshold_group

        # ---------------- Privacy firewall (optional). ---------------- #
        self.firewall = None
        firewall_ids: List[NodeId] = []
        if config.use_privacy_firewall:
            from ..firewall.array import FirewallArray

            self.firewall = FirewallArray(
                config=config, scheduler=self.scheduler, keystore=self.keystore,
                agreement_ids=self.agreement_ids, execution_ids=self.execution_ids,
                client_ids=self.client_ids, threshold_group=threshold_group,
            )
            firewall_ids = self.firewall.node_ids
        self.firewall_ids = firewall_ids

        # ---------------- Topology. ---------------- #
        if config.use_privacy_firewall:
            topology = Topology.privacy_firewall(
                clients=self.client_ids, agreement=self.agreement_ids,
                firewall_rows=self.firewall.row_ids, execution=self.execution_ids)
        elif config.deployment is Deployment.DIFFERENT:
            topology = Topology.separate_clusters(
                clients=self.client_ids, agreement=self.agreement_ids,
                execution=self.execution_ids,
                allow_client_execution=config.direct_execution_reply)
        else:
            topology = Topology.full()
        self.network.topology = topology

        # ---------------- Execution cluster. ---------------- #
        upstream = (self.firewall.top_row_ids if config.use_privacy_firewall
                    else self.agreement_ids)
        self.execution_nodes: List[ExecutionNode] = []
        for node_id in self.execution_ids:
            node = ExecutionNode(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, state_machine=app_factory(),
                agreement_ids=self.agreement_ids, execution_ids=self.execution_ids,
                client_ids=self.client_ids, upstream=upstream,
                threshold_group=threshold_group,
                encrypt_replies=config.use_privacy_firewall,
            )
            self.execution_nodes.append(node)
            self.network.register(node)

        # ---------------- Agreement cluster with message queues. ------- #
        downstream = (self.firewall.bottom_row_ids if config.use_privacy_firewall
                      else self.execution_ids)
        cert_verifiers = self.agreement_ids + self.execution_ids + firewall_ids
        self.message_queues: List[MessageQueue] = []
        self.agreement_replicas: List[AgreementReplica] = []
        for node_id in self.agreement_ids:
            replica = AgreementReplica(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, local=None,  # type: ignore[arg-type]
                agreement_ids=self.agreement_ids, client_ids=self.client_ids,
                cert_verifiers=cert_verifiers,
            )
            queue = MessageQueue(
                owner=replica, config=config, execution_ids=self.execution_ids,
                downstream=downstream, client_ids=self.client_ids,
                threshold_group=threshold_group,
            )
            replica.local = queue
            self.message_queues.append(queue)
            self.agreement_replicas.append(replica)
            self.network.register(replica)

        # ---------------- Co-located verification caches. -------------- #
        # Under Deployment.SAME execution replica i runs on the machine of
        # agreement replica i, and a machine trusts its own verifications:
        # the two roles share one VerifiedCertificateCache, so a request
        # certificate checked during agreement is a cache hit when the
        # co-located execution role validates the ordered batch.  Execution
        # replicas beyond the agreement cluster size (g > f deployments) get
        # their own machines and keep their own caches.
        if (config.deployment is Deployment.SAME
                and config.perf.verified_cert_cache
                and config.perf.share_colocated_cache):
            for replica, node in zip(self.agreement_replicas, self.execution_nodes):
                node.crypto.cache = replica.crypto.cache

        # ---------------- Privacy firewall registration. --------------- #
        if self.firewall is not None:
            for node in self.firewall.nodes:
                self.network.register(node)

        # ---------------- Clients. ---------------- #
        request_verifiers = self.agreement_ids + self.execution_ids + firewall_ids
        self.clients = []
        for node_id in self.client_ids:
            client = ClientNode(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore, agreement_ids=self.agreement_ids,
                request_verifiers=request_verifiers,
                reply_quorum=config.reply_quorum, reply_universe=self.execution_ids,
                threshold_group=threshold_group,
                encrypt_requests=config.use_privacy_firewall,
            )
            self.clients.append(client)
            self.network.register(client)

    # ------------------------------------------------------------------ #
    # Accessors and fault injection.
    # ------------------------------------------------------------------ #

    def server_processes(self) -> List[Process]:
        processes: List[Process] = list(self.agreement_replicas) + list(self.execution_nodes)
        if self.firewall is not None:
            processes.extend(self.firewall.nodes)
        return processes

    def agreement_replica(self, index: int) -> AgreementReplica:
        return self.agreement_replicas[index]

    def execution_node(self, index: int) -> ExecutionNode:
        return self.execution_nodes[index]

    def crash_agreement(self, index: int) -> None:
        """Crash one agreement replica (tolerated for up to ``f`` replicas)."""
        self.agreement_replicas[index].crash()

    def crash_execution(self, index: int) -> None:
        """Crash one execution replica (tolerated for up to ``g`` replicas)."""
        self.execution_nodes[index].crash()

    def crash_firewall(self, row: int, column: int) -> None:
        """Crash one privacy-firewall filter (tolerated for up to ``h`` filters)."""
        if self.firewall is None:
            raise ConfigurationError("this deployment has no privacy firewall")
        self.firewall.crash(row, column)

    def total_requests_executed(self) -> int:
        """Requests executed by execution node 0 (any correct node would do)."""
        return max(node.requests_executed for node in self.execution_nodes)
