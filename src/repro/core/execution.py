"""The execution cluster (Section 3.3 of the paper).

``2g + 1`` application-specific execution replicas process ordered batches in
sequence-number order.  Each node maintains:

* the application state machine (behind the nondeterminism abstraction layer),
* a pending-request list of received-but-not-executed batches,
* ``maxN``, the highest executed sequence number,
* ``reply_c``, the last reply sent to each client (exactly-once semantics),
* its most recent *stable* checkpoint (certified by ``g + 1`` nodes) plus any
  newer, not-yet-stable checkpoints.

Two retransmission mechanisms fill sequence-number gaps: the agreement
cluster re-multicasts unanswered batches, and the execution cluster's
internal protocol fetches missing batches (or a newer stable checkpoint) from
peers.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..crypto.keys import Keystore
from ..crypto.provider import CryptoProvider
from ..messages.agreement import OrderedBatch
from ..messages.checkpoint import (
    BatchTransfer,
    ExecCheckpointProof,
    ExecCheckpointShare,
    FetchBatch,
    StateTransfer,
    checkpoint_payload,
)
from ..messages.reply import BatchReply, BatchReplyBody, ClientReply, ReplyBody
from ..messages.request import ClientRequest, EncryptedBody
from ..net.message import Message
from ..obs import request_trace_id
from ..sim.process import Process
from ..sim.scheduler import Scheduler
from ..statemachine.interface import OperationResult, StateMachine
from ..statemachine.nondet import AbstractionLayer
from ..util.ids import NodeId, Role


@dataclass
class StoredCheckpoint:
    """A checkpoint (application state + reply table) awaiting or past stability.

    ``extra`` carries subsystem state beyond the application -- the sharded
    execution nodes store their partition-map epoch there, so a replica
    catching up by state transfer lands in the right epoch, not just the
    right application state.  It is covered by the checkpoint digest.
    """

    seq: int
    app_state: bytes
    reply_table: bytes
    digest: bytes
    extra: bytes = b""
    proof: Optional[Certificate] = None

    @property
    def stable(self) -> bool:
        return self.proof is not None


class ExecutionNode(Process):
    """One of the ``2g + 1`` execution replicas."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, state_machine: StateMachine,
                 agreement_ids: List[NodeId], execution_ids: List[NodeId],
                 client_ids: List[NodeId], upstream: List[NodeId],
                 threshold_group: Optional[str] = None,
                 encrypt_replies: bool = False) -> None:
        super().__init__(node_id, scheduler)
        self.config = config
        self.app = state_machine
        self.abstraction = AbstractionLayer()
        self.agreement_ids = list(agreement_ids)
        self.execution_ids = list(execution_ids)
        self.client_ids = list(client_ids)
        #: where reply certificates are sent: the agreement nodes, or the top
        #: row of the privacy firewall.
        self.upstream = list(upstream)
        self.threshold_group = threshold_group
        self.encrypt_replies = encrypt_replies
        self.crypto = CryptoProvider(node_id, keystore, config.crypto,
                                     charge=self.charge,
                                     record=self.stats.record_crypto,
                                     perf=config.perf)

        self.max_executed = 0
        self.pending: Dict[int, OrderedBatch] = {}
        self.reply_table: Dict[NodeId, ReplyBody] = {}
        self.replies_by_seq: Dict[int, BatchReply] = {}
        self.recent_batches: Dict[int, OrderedBatch] = {}
        self.checkpoints: Dict[int, StoredCheckpoint] = {}
        self.stable_checkpoint: Optional[StoredCheckpoint] = None
        self._checkpoint_votes: Dict[int, Dict[NodeId, ExecCheckpointShare]] = {}
        self._fetching: Dict[int, bool] = {}

        # Statistics used by benchmarks and tests.
        self.requests_executed = 0
        self.batches_executed = 0
        self.duplicate_requests = 0
        self.state_transfers = 0

        # Observability (passive: never charges, never schedules).
        self._h_exec_batch = self.metrics.histogram(
            "execution.batch_size",
            bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))
        self._c_exec_requests = self.metrics.counter("execution.requests")
        self.metrics.register_probe("execution.state", self._execution_probe)

    def _execution_probe(self) -> dict:
        """Snapshot of the replica's ad-hoc counters for the registry."""
        return {
            "max_executed": self.max_executed,
            "requests_executed": self.requests_executed,
            "batches_executed": self.batches_executed,
            "duplicate_requests": self.duplicate_requests,
            "state_transfers": self.state_transfers,
            "pending_batches": len(self.pending),
        }

    # ------------------------------------------------------------------ #
    # Message dispatch.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, OrderedBatch):
            self.handle_ordered_batch(message)
        elif isinstance(message, BatchTransfer):
            if sender in self.execution_ids:
                self.handle_ordered_batch(message.batch)
        elif isinstance(message, FetchBatch):
            self.handle_fetch(sender, message)
        elif isinstance(message, ExecCheckpointShare):
            self.handle_checkpoint_share(sender, message)
        elif isinstance(message, StateTransfer):
            self.handle_state_transfer(sender, message)
        else:
            return

    # ------------------------------------------------------------------ #
    # Ordered batches.
    # ------------------------------------------------------------------ #

    def handle_ordered_batch(self, batch: OrderedBatch) -> None:
        seq = batch.seq
        if seq <= self.max_executed:
            # Retransmission from the agreement cluster: resend the partial
            # reply certificate, which is guaranteed to carry a sequence
            # number at least as large as the request's.
            self._resend_replies(batch)
            return
        if seq in self.pending:
            return
        if not self._validate_batch(batch):
            return
        self.pending[seq] = batch
        self.recent_batches[seq] = batch
        self._trim_recent()
        self._process_pending()
        if self.max_executed + 1 < seq and (self.max_executed + 1) not in self.pending:
            self._request_missing(self.max_executed + 1)

    def _validate_batch(self, batch: OrderedBatch) -> bool:
        body = batch.agreement_certificate.payload
        if getattr(body, "seq", None) != batch.seq or getattr(body, "view", None) != batch.view:
            return False
        if not self.crypto.verify_certificate(batch.agreement_certificate,
                                              self.config.agreement_quorum,
                                              self.agreement_ids):
            return False
        expected = self.crypto.digest({
            "batch": [self.crypto.payload_digest(cert.payload)
                      for cert in batch.request_certificates],
        })
        if expected != body.batch_digest:
            return False
        for certificate in batch.request_certificates:
            request = certificate.payload
            if not isinstance(request, ClientRequest):
                return False
            if request.client not in self.client_ids:
                return False
            if not self.crypto.verify_certificate(certificate, 1, [request.client]):
                return False
        return True

    def _resend_replies(self, batch: OrderedBatch) -> None:
        cached = self.replies_by_seq.get(batch.seq)
        if cached is not None:
            self.multicast(self.upstream, cached)
            return
        # The batch-level reply was garbage collected; answer per client from
        # the reply table (each answer is a fresh partial certificate over the
        # client's most recent reply, as in Section 3.3).
        seen: set = set()
        for certificate in batch.request_certificates:
            request = certificate.payload
            if not isinstance(request, ClientRequest) or request.client in seen:
                continue
            seen.add(request.client)
            last = self.reply_table.get(request.client)
            if last is None:
                continue
            self._send_reply(self._make_reply_body(last.view, last.seq, (last,)))

    def _process_pending(self) -> None:
        while (self.max_executed + 1) in self.pending:
            batch = self.pending[self.max_executed + 1]
            if not self._ready_to_execute(batch):
                # Execution is gated on something other than ordering (e.g.
                # a sharded node awaiting a range handoff at an epoch cut);
                # whoever clears the gate re-enters this loop.
                return
            del self.pending[self.max_executed + 1]
            self._execute_batch(batch)
        # A catch-up step (batch or state transfer) may land below the
        # oldest pending batch; keep pulling the next missing sequence number
        # so recovery is self-driving rather than waiting for new traffic to
        # re-trigger the gap check.
        if self.pending and (self.max_executed + 1) < min(self.pending):
            self._request_missing(self.max_executed + 1)

    def _ready_to_execute(self, batch: OrderedBatch) -> bool:
        """Whether the next in-order batch may execute now (hook for
        subclasses that must gate execution on external state, like the
        sharded nodes' range handoff at an epoch cut)."""
        return True

    def _request_missing(self, seq: int) -> None:
        if self._fetching.get(seq):
            return
        self._fetching[seq] = True
        self.multicast([n for n in self.execution_ids if n != self.node_id],
                       FetchBatch(seq=seq, replica=self.node_id))
        self.set_timer(self.config.timers.execution_fetch_ms,
                       lambda seq=seq: self._retry_missing(seq),
                       label=f"{self.node_id}:fetch:{seq}")

    def _retry_missing(self, seq: int) -> None:
        self._fetching.pop(seq, None)
        if seq <= self.max_executed or seq in self.pending:
            return
        self._request_missing(seq)

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #

    def _execute_batch(self, batch: OrderedBatch) -> None:
        self.abstraction.bind(batch.nondet)
        replies: List[ReplyBody] = []
        for certificate in batch.request_certificates:
            request: ClientRequest = certificate.payload
            replies.append(self._execute_request(batch, request))
        self.max_executed = batch.seq
        self.batches_executed += 1
        self._h_exec_batch.observe(len(batch.request_certificates))
        body = self._make_reply_body(batch.view, batch.seq, tuple(replies))
        reply_message = self._send_reply(body)
        self.replies_by_seq[batch.seq] = reply_message
        self._trim_reply_cache()
        if batch.seq % self.config.checkpoint_interval == 0:
            self._take_checkpoint(batch.seq)

    def _execute_request(self, batch: OrderedBatch, request: ClientRequest) -> ReplyBody:
        last = self.reply_table.get(request.client)
        last_timestamp = last.timestamp if last is not None else -1
        if request.timestamp > last_timestamp:
            operation = request.operation_for(Role.EXECUTION)
            result = self.app.execute(operation, batch.nondet)
            self.charge(self.config.app_processing_ms + result.processing_ms)
            self.requests_executed += 1
            self._c_exec_requests.inc()
            if self.tracing:
                self.trace_event(
                    request_trace_id(request.client, request.timestamp), "execute")
            reply = ReplyBody(view=batch.view, seq=batch.seq,
                              timestamp=request.timestamp, client=request.client,
                              result=self._wrap_result(result))
            self.reply_table[request.client] = reply
            return reply
        # Client-initiated retransmission (t <= t'): acknowledge the new
        # sequence number but reply with the cached timestamp and body.
        self.duplicate_requests += 1
        assert last is not None
        return ReplyBody(view=batch.view, seq=batch.seq,
                         timestamp=last.timestamp, client=request.client,
                         result=last.result)

    def _make_reply_body(self, view: int, seq: int,
                         replies: Tuple[ReplyBody, ...]) -> BatchReplyBody:
        """Build the certified reply body (sharded nodes stamp their shard id)."""
        return BatchReplyBody(view=view, seq=seq, replies=tuple(replies))

    def _wrap_result(self, result: OperationResult):
        if not self.encrypt_replies:
            return result
        return EncryptedBody(result, readers=frozenset({Role.CLIENT, Role.EXECUTION}),
                             size=max(result.size, 64))

    def _send_reply(self, body: BatchReplyBody) -> BatchReply:
        """Build this node's partial reply certificate and send it upstream."""
        if self.config.authentication is AuthenticationScheme.THRESHOLD:
            certificate = Certificate(payload=body,
                                      scheme=AuthenticationScheme.THRESHOLD,
                                      threshold_group=self.threshold_group)
            certificate.add(self.crypto.threshold_share(body, self.threshold_group))
        elif self.config.authentication is AuthenticationScheme.SIGNATURE:
            certificate = Certificate(payload=body, scheme=AuthenticationScheme.SIGNATURE)
            certificate.add(self.crypto.sign(body))
        else:
            certificate = Certificate(payload=body, scheme=AuthenticationScheme.MAC)
            destinations = self.agreement_ids + self.client_ids
            certificate.add(self.crypto.mac_authenticator(body, destinations))
        message = BatchReply(seq=body.seq, body=body, certificate=certificate,
                             sender=self.node_id)
        self.multicast(self.upstream, message)
        if self._may_reply_directly():
            for reply in body.replies:
                self.send(reply.client,
                          ClientReply(reply=reply, body=body, certificate=certificate))
        return message

    def _may_reply_directly(self) -> bool:
        """The 'execution nodes send replies directly to clients' optimisation.

        Only valid without the privacy firewall (clients may not talk to
        execution nodes through the firewall topology) and only useful for MAC
        certificates, where the client can count matching partials itself.
        """
        return (self.config.direct_execution_reply
                and not self.config.use_privacy_firewall
                and self.config.authentication is AuthenticationScheme.MAC)

    def _trim_reply_cache(self) -> None:
        horizon = self.max_executed - 2 * self.config.pipeline_depth
        if horizon <= 0:
            return
        self.replies_by_seq = {
            seq: reply for seq, reply in self.replies_by_seq.items() if seq > horizon
        }

    def _trim_recent(self) -> None:
        horizon = self.max_executed - 2 * self.config.checkpoint_interval
        if horizon <= 0:
            return
        self.recent_batches = {
            seq: batch for seq, batch in self.recent_batches.items() if seq > horizon
        }

    # ------------------------------------------------------------------ #
    # Checkpoints and proof of stability.
    # ------------------------------------------------------------------ #

    def _serialized_reply_table(self) -> bytes:
        """Canonical serialization of the client-dedup reply table.

        Shared by checkpoint digests and (in the sharded subclass) range
        handoffs: both sides of the exactly-once argument must encode the
        table identically.
        """
        return pickle.dumps(sorted(
            (client.name, reply) for client, reply in self.reply_table.items()
        ))

    def _checkpoint_extra(self) -> bytes:
        """Subsystem state folded into checkpoints beyond the application
        (the sharded nodes serialize their partition-map epoch here)."""
        return b""

    def _restore_extra(self, extra: bytes) -> None:
        """Reinstall :meth:`_checkpoint_extra` state after a state transfer."""
        return None

    def _take_checkpoint(self, seq: int) -> None:
        app_state = self.app.checkpoint()
        reply_table = self._serialized_reply_table()
        extra = self._checkpoint_extra()
        digest = self.crypto.digest(
            app_state + reply_table + extra,
            size_hint=len(app_state) + len(reply_table) + len(extra))
        checkpoint = StoredCheckpoint(seq=seq, app_state=app_state,
                                      reply_table=reply_table, digest=digest,
                                      extra=extra)
        self.checkpoints[seq] = checkpoint
        authenticator = self.crypto.mac_authenticator(
            checkpoint_payload(seq, digest), self.execution_ids)
        share = ExecCheckpointShare(seq=seq, state_digest=digest,
                                    replica=self.node_id, authenticator=authenticator)
        self._record_checkpoint_vote(self.node_id, share)
        self.multicast([n for n in self.execution_ids if n != self.node_id], share)
        self._try_stabilize(seq)

    def handle_checkpoint_share(self, sender: NodeId, share: ExecCheckpointShare) -> None:
        if sender != share.replica or sender not in self.execution_ids:
            return
        self._record_checkpoint_vote(sender, share)
        self._try_stabilize(share.seq)

    def _record_checkpoint_vote(self, sender: NodeId, share: ExecCheckpointShare) -> None:
        self._checkpoint_votes.setdefault(share.seq, {})[sender] = share

    def _try_stabilize(self, seq: int) -> None:
        checkpoint = self.checkpoints.get(seq)
        if checkpoint is None or checkpoint.stable:
            return
        votes = self._checkpoint_votes.get(seq, {})
        matching = [share for share in votes.values()
                    if share.state_digest == checkpoint.digest
                    and share.authenticator is not None]
        if len(matching) < self.config.checkpoint_quorum:
            return
        proof = Certificate(payload=checkpoint_payload(seq, checkpoint.digest),
                            scheme=AuthenticationScheme.MAC)
        for share in matching:
            proof.add(share.authenticator)
        checkpoint.proof = proof
        self.stable_checkpoint = checkpoint
        self._garbage_collect(seq)

    def _garbage_collect(self, stable_seq: int) -> None:
        """Discard checkpoints, votes, and pending batches older than the
        stable checkpoint (Section 3.3.2)."""
        self.checkpoints = {
            seq: cp for seq, cp in self.checkpoints.items() if seq >= stable_seq
        }
        self._checkpoint_votes = {
            seq: votes for seq, votes in self._checkpoint_votes.items()
            if seq >= stable_seq
        }
        self.pending = {seq: b for seq, b in self.pending.items() if seq > stable_seq}
        self.recent_batches = {
            seq: b for seq, b in self.recent_batches.items() if seq > stable_seq
        }

    # ------------------------------------------------------------------ #
    # Intra-cluster retransmission and state transfer.
    # ------------------------------------------------------------------ #

    def handle_fetch(self, sender: NodeId, message: FetchBatch) -> None:
        if sender not in self.execution_ids:
            return
        if (self.stable_checkpoint is not None
                and self.stable_checkpoint.seq >= message.seq):
            checkpoint = self.stable_checkpoint
            proof_message = ExecCheckpointProof(seq=checkpoint.seq,
                                                state_digest=checkpoint.digest,
                                                certificate=checkpoint.proof)
            self.send(sender, StateTransfer(seq=checkpoint.seq,
                                            app_state=checkpoint.app_state,
                                            reply_table=checkpoint.reply_table,
                                            proof=proof_message,
                                            replica=self.node_id,
                                            extra=checkpoint.extra))
            return
        batch = self.recent_batches.get(message.seq) or self.pending.get(message.seq)
        if batch is not None:
            self.send(sender, BatchTransfer(batch=batch, replica=self.node_id))

    def handle_state_transfer(self, sender: NodeId, message: StateTransfer) -> None:
        if sender not in self.execution_ids:
            return
        if message.seq <= self.max_executed:
            return
        digest = self.crypto.digest(
            message.app_state + message.reply_table + message.extra,
            size_hint=(len(message.app_state) + len(message.reply_table)
                       + len(message.extra)))
        proof = message.proof
        if proof.state_digest != digest or proof.seq != message.seq:
            return
        if proof.certificate is None:
            return
        if proof.certificate.payload != checkpoint_payload(message.seq, digest):
            return
        valid = self.crypto.valid_signers(proof.certificate, self.execution_ids)
        if len(valid) < self.config.checkpoint_quorum:
            return
        # Restore: application state, reply table, and sequence number.
        self.app.restore(message.app_state)
        restored: Dict[NodeId, ReplyBody] = {}
        for client_name, reply in pickle.loads(message.reply_table):
            restored[reply.client] = reply
        self.reply_table = restored
        self.max_executed = message.seq
        self._restore_extra(message.extra)
        self.pending = {seq: b for seq, b in self.pending.items() if seq > message.seq}
        checkpoint = StoredCheckpoint(seq=message.seq, app_state=message.app_state,
                                      reply_table=message.reply_table, digest=digest,
                                      extra=message.extra,
                                      proof=proof.certificate)
        self.checkpoints[message.seq] = checkpoint
        self.stable_checkpoint = checkpoint
        self.state_transfers += 1
        self._process_pending()
