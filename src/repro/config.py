"""System-wide configuration for the separated BFT architecture.

The paper's replication-cost arithmetic is centralised here:

* the agreement cluster needs ``3f + 1`` replicas to tolerate ``f`` Byzantine
  agreement faults,
* the execution cluster needs only ``2g + 1`` replicas to tolerate ``g``
  Byzantine execution faults,
* the privacy firewall needs ``(h + 1)`` rows of ``(h + 1)`` filters to
  tolerate ``h`` filter faults,
* agreement certificates carry ``2f + 1`` authenticators and reply
  certificates carry ``g + 1`` authenticators (or a single threshold
  signature standing for ``g + 1`` shares).

:class:`SystemConfig` validates these relations at construction time so that a
mis-configured deployment fails fast rather than silently losing its fault
tolerance guarantees.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigurationError


class AuthenticationScheme(enum.Enum):
    """The three certificate implementations supported by the protocol."""

    MAC = "mac"
    SIGNATURE = "signature"
    THRESHOLD = "threshold"


class Deployment(enum.Enum):
    """How agreement and execution replicas map onto physical machines.

    ``SAME`` co-locates the execution replicas on machines that also run
    agreement replicas (the Separate/Same configuration of Figure 3);
    ``DIFFERENT`` places them on disjoint machines.  The distinction only
    matters for the latency/cost accounting of co-located work.
    """

    SAME = "same"
    DIFFERENT = "different"


@dataclass(frozen=True)
class CryptoCosts:
    """Virtual-time cost (in milliseconds) of each cryptographic operation.

    Defaults follow the measurements reported in Section 5 of the paper:
    MAC operations cost 0.2 ms (50 MB/s secure hashing of 1 KB packets),
    producing a threshold signature (i.e. each execution node's share of it)
    costs 15 ms, and verifying one costs 0.7 ms.  Digest cost is charged per
    byte at the same 50 MB/s hashing rate.
    """

    mac_ms: float = 0.2
    signature_sign_ms: float = 5.0
    signature_verify_ms: float = 0.7
    threshold_share_ms: float = 15.0
    threshold_combine_ms: float = 0.5
    threshold_verify_ms: float = 0.7
    digest_bytes_per_ms: float = 50_000.0

    def digest_ms(self, num_bytes: int) -> float:
        """Return the virtual cost of hashing ``num_bytes`` bytes."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.digest_bytes_per_ms

    def scaled(self, factor: float) -> "CryptoCosts":
        """Return a copy with every cost multiplied by ``factor``.

        Used to model hardware-accelerated cryptography (the paper assumes
        hardware threshold-signature support for the Andrew benchmarks).
        """
        return CryptoCosts(
            mac_ms=self.mac_ms * factor,
            signature_sign_ms=self.signature_sign_ms * factor,
            signature_verify_ms=self.signature_verify_ms * factor,
            threshold_share_ms=self.threshold_share_ms * factor,
            threshold_combine_ms=self.threshold_combine_ms * factor,
            threshold_verify_ms=self.threshold_verify_ms * factor,
            digest_bytes_per_ms=self.digest_bytes_per_ms / max(factor, 1e-9),
        )


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the simulated unreliable network."""

    min_delay_ms: float = 0.05
    max_delay_ms: float = 0.3
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    corrupt_probability: float = 0.0
    bandwidth_bytes_per_ms: float = 12_500.0  # 100 Mbit/s
    partition_heal_ms: float = 0.0

    def validate(self) -> None:
        for name in ("drop_probability", "duplicate_probability",
                     "reorder_probability", "corrupt_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.min_delay_ms < 0 or self.max_delay_ms < self.min_delay_ms:
            raise ConfigurationError(
                "network delays must satisfy 0 <= min_delay_ms <= max_delay_ms"
            )
        if self.bandwidth_bytes_per_ms <= 0:
            raise ConfigurationError("bandwidth_bytes_per_ms must be positive")


@dataclass(frozen=True)
class ShardingConfig:
    """Horizontal partitioning of the execution side (``repro.sharding``).

    The paper's separation argument cuts both ways: because the agreement
    cluster orders *opaque* requests, the execution side can be partitioned
    into independent ``2g + 1`` clusters -- one per key-range or hash shard --
    behind the *same* ``3f + 1`` agreement cluster.  Each shard keeps its own
    application state, reply cache, checkpoints, and state-transfer protocol;
    the shard router demultiplexes the single agreed sequence into per-shard
    subsequences deterministically, so no additional agreement is needed.

    Parameters
    ----------
    num_shards:
        Number of independent execution clusters.  ``1`` degenerates to the
        unsharded separated architecture.
    strategy:
        ``"hash"`` (stable hash of the operation key) or ``"range"``
        (lexicographic key ranges split at ``range_boundaries``).
    range_boundaries:
        For ``"range"``: ``num_shards - 1`` sorted split keys; shard ``i``
        owns keys in ``[boundaries[i-1], boundaries[i])``.
    """

    num_shards: int = 1
    strategy: str = "hash"
    range_boundaries: tuple = ()

    def validate(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if self.strategy not in ("hash", "range"):
            raise ConfigurationError(
                f"sharding strategy must be 'hash' or 'range', got {self.strategy!r}"
            )
        if self.strategy == "range":
            boundaries = tuple(self.range_boundaries)
            if len(boundaries) != self.num_shards - 1:
                raise ConfigurationError(
                    "range sharding needs exactly num_shards - 1 boundaries, "
                    f"got {len(boundaries)} for {self.num_shards} shards"
                )
            if any(left >= right for left, right in zip(boundaries, boundaries[1:])):
                raise ConfigurationError(
                    "range_boundaries must be strictly increasing (a repeated "
                    "boundary would create a shard owning an empty key range)"
                )


@dataclass(frozen=True)
class PipelineConfig:
    """Skew-aware concurrency between the agreement and execution clusters.

    The paper's pipeline bound is a single *global* window: agreement will
    not start sequence number ``n`` until the highest **contiguously**
    answered sequence number has reached ``n - P``
    (:attr:`SystemConfig.pipeline_depth`).  With sharded execution that one
    watermark serialises every shard behind the slowest one: a hot shard's
    unanswered batch freezes the contiguous frontier, and cold shards stop
    being admitted even though their own pipelines are empty.  The switches
    here decouple the shards:

    Parameters
    ----------
    per_shard_depth:
        When set, the primary admits a new sequence number as soon as every
        shard *touched by the candidate bundle* has fewer than
        ``per_shard_depth`` of its own batches in flight (ordered or sent
        but not yet answered), instead of gating on the global contiguous
        answered floor.  Safety is unchanged: the agreement log's
        ``[h, h + L]`` watermark window still bounds how far the log may
        run ahead of the stable checkpoint.  ``None`` keeps the paper's
        global watermark.
    ooo_shard_delivery:
        Let each agreement node hand a batch to its shard router as soon as
        the batch *commits* (even when an earlier sequence number has not
        committed locally yet); the router buffers out-of-order arrivals
        and releases each shard's parts along a per-shard frontier over the
        global order.  Shard-local sequence numbers stay deterministic
        because the frontier is a pure function of the committed prefix.
    rtt_gather:
        Derive the adaptive-batching idle-gather window from an EWMA of the
        measured order-to-reply round trip instead of the static
        ``BatchingConfig.gather_ms``, so the group-commit debounce tracks
        the deployment's actual reply turnaround.
    """

    per_shard_depth: Optional[int] = None
    ooo_shard_delivery: bool = False
    rtt_gather: bool = False

    def validate(self) -> None:
        if self.per_shard_depth is not None and self.per_shard_depth < 1:
            raise ConfigurationError(
                "per_shard_depth must be at least 1 (or None for the global "
                "pipeline watermark)"
            )


@dataclass(frozen=True)
class RebalanceConfig:
    """Dynamic shard rebalancing (``repro.sharding.rebalance``).

    The shard boundaries chosen at construction time are only right for the
    workload they were chosen for.  When rebalancing is enabled, the primary
    watches the per-shard load counters its shard router already keeps,
    proposes a partition-map change (split a hot key range, merge two cold
    adjacent ones, or move a boundary) through the ordinary agreement log as
    a config operation, and the change takes effect at a deterministic cut
    in the agreed order: batches at or below the map-change batch route by
    the old epoch, batches above it by the new one, and the moved key
    ranges' state is handed off between execution clusters at the cut.

    Rebalancing requires the ``"range"`` sharding strategy -- hash
    partitioning has no boundaries to move.

    Parameters
    ----------
    enabled:
        Master switch.  Off by default: a static deployment behaves exactly
        as before (and stays on partition-map epoch 0 forever).
    check_interval_ms:
        How often the primary evaluates the load counters.
    cooldown_ms:
        Minimum virtual time between two proposed map changes; epoch cuts
        are cheap but not free (each one hands off state), so the
        controller must not thrash.
    hot_ratio:
        A shard is *hot* when its window load is at least ``hot_ratio``
        times the mean shard load; a hot shard triggers a split of its
        busiest range towards the least-loaded shard.
    cold_ratio:
        Two *adjacent* ranges are merged when each carries at most
        ``cold_ratio`` times the mean shard load and the map holds more
        ranges than execution clusters.
    min_window_requests:
        Minimum number of routed requests in the observation window before
        the controller acts (avoids deciding on noise).
    max_ranges:
        Upper bound on the number of key ranges a sequence of splits may
        create (bounds the partition-map size).
    """

    enabled: bool = False
    check_interval_ms: float = 100.0
    cooldown_ms: float = 400.0
    hot_ratio: float = 2.0
    cold_ratio: float = 0.5
    min_window_requests: int = 64
    max_ranges: int = 64

    def validate(self) -> None:
        if self.check_interval_ms <= 0 or self.cooldown_ms < 0:
            raise ConfigurationError(
                "rebalance check_interval_ms must be positive and "
                "cooldown_ms non-negative"
            )
        if self.hot_ratio < 1.0:
            raise ConfigurationError("hot_ratio must be at least 1.0")
        if not 0.0 < self.cold_ratio <= 1.0:
            raise ConfigurationError("cold_ratio must be in (0, 1]")
        if self.min_window_requests < 1:
            raise ConfigurationError("min_window_requests must be at least 1")
        if self.max_ranges < 2:
            raise ConfigurationError("max_ranges must be at least 2")


@dataclass(frozen=True)
class CrossShardConfig:
    """Cross-shard operations at a consistent cut (``repro.sharding``).

    Sharded execution runs each shard's subsequence of the agreed order
    independently, so a batch touching ``k`` shards is normally ``k``
    unrelated executions.  When cross-shard operations are enabled, a
    multi-shard operation (a snapshot read over keys on several shards, or
    a write transaction with read-set validation) is ordered through the
    ordinary agreement log as a *marker* batch -- a single-certificate
    batch, exactly like a partition-map config operation -- and its
    agreement sequence number is a deterministic **consistent cut**: every
    touched shard's release frontier reaches the marker with exactly the
    agreed prefix below it executed, each touched cluster executes its
    sub-operation against that frontier state, and the lowest touched
    shard's cluster collates the per-shard ``g + 1``-certified sub-replies
    into one client reply.

    Parameters
    ----------
    enabled:
        Master switch.  Off by default: multi-shard operations are refused
        at the client and the routing layers never classify markers, so a
        static deployment behaves exactly as before.
    max_keys:
        Upper bound on the number of keys one cross-shard operation may
        touch (bounds marker execution work and sub-reply sizes; a client
        exceeding it has its submission rejected locally).
    retry_limit:
        How many times a client transparently re-issues an operation whose
        pinned epoch went stale under it (a rebalance cut raced the marker;
        every replica reports the same deterministic abort carrying the new
        epoch).  Beyond the limit the operation completes with an error.
    """

    enabled: bool = False
    max_keys: int = 16
    retry_limit: int = 4

    def validate(self) -> None:
        if self.max_keys < 2:
            raise ConfigurationError(
                "cross-shard max_keys must be at least 2 (a single-key "
                "operation is never cross-shard)"
            )
        if self.retry_limit < 0:
            raise ConfigurationError("cross-shard retry_limit must be non-negative")


@dataclass(frozen=True)
class MultiLogConfig:
    """Multi-log ordering: shard the agreement plane itself (``repro.multilog``).

    A single ``3f + 1`` agreement cluster eventually saturates no matter how
    many execution shards sit behind it.  With multi-log ordering the
    ordering plane is partitioned into ``num_logs`` *independent* ``3f + 1``
    agreement logs, each owning an equal, contiguous group of execution
    shards (the :class:`repro.multilog.LogMap`, epoch-versioned exactly like
    the partition map).  Single-group requests flow through their own log
    end to end, so committed throughput scales with the number of logs.

    Cross-group operations (multi-shard reads/transactions whose keys span
    log groups, and ``LogMapChange`` config operations moving a shard
    between groups) are ordered by a **cross-log coordination round**: every
    touched log orders the same marker in its own log, each of its replicas
    emits an ``f + 1``-vouchable sequence binding, and the lowest touched
    log's primary collates the bindings into a certified *cut* (a per-log
    sequence vector) at which every touched router queue releases the
    marker.  Backups of the coordinator log fall the collation duty over on
    a timer, mirroring the cross-shard collator discipline.

    Parameters
    ----------
    num_logs:
        Number of independent agreement logs.  ``1`` degenerates to the
        single-log separated architecture (no coordination machinery at
        all).  Requires ``sharding.num_shards`` to be divisible by
        ``num_logs`` so groups start out equal; ``LogMapChange`` operations
        may make them unequal later.
    cut_fallover_scale:
        The coordinator log's backups arm their fallover timer at
        ``cut_fallover_scale * timers.agreement_retransmit_ms`` once their
        own binding collation completes; on expiry they broadcast the cut
        themselves, so a Byzantine (or silent) coordinating primary delays a
        cross-group operation by at most one timer round.
    """

    num_logs: int = 1
    cut_fallover_scale: float = 2.0

    @property
    def enabled(self) -> bool:
        return self.num_logs > 1

    def validate(self) -> None:
        if self.num_logs < 1:
            raise ConfigurationError("num_logs must be at least 1")
        if self.cut_fallover_scale <= 0:
            raise ConfigurationError("cut_fallover_scale must be positive")


@dataclass(frozen=True)
class PerfConfig:
    """Hot-path fast-path switches (the verification/encoding fast path).

    All switches default to on; the benchmark harness
    (``benchmarks/bench_hotpath.py``) turns them off to measure the
    before/after delta against the unoptimised protocol.

    Parameters
    ----------
    verified_cert_cache:
        Per-node memoisation of *successful* verifications
        (:class:`repro.crypto.cache.VerifiedCertificateCache`).  Virtual-time
        crypto charges apply only on cache misses; failures are never cached,
        so a Byzantine forgery can never poison a later legitimate check.
    cert_cache_capacity:
        Bound on the number of memoised verification facts per node.
    digest_memo:
        Per-node charge-once semantics for payload digests: the first time a
        node hashes a given message object it pays ``digest_ms(wire_size)``,
        later touches of the same object by the same node are free.
    shard_verify_owned_only:
        Shard execution replicas verify client authenticators only for the
        requests their own shard owns.  Safe because the agreement
        certificate (``2f + 1`` commits) proves that ``f + 1`` correct
        agreement replicas verified *every* request certificate in the
        batch, and the batch digest binds the non-owned payloads.
    share_colocated_cache:
        Under ``Deployment.SAME`` the agreement and execution roles that
        share a physical machine share one
        :class:`~repro.crypto.cache.VerifiedCertificateCache`: a machine
        trusts its own verifications, so a request certificate checked by
        the agreement role need not be re-checked by the co-located
        execution role.  Has no effect under ``Deployment.DIFFERENT``
        (separate machines never share verification state).
    """

    verified_cert_cache: bool = True
    cert_cache_capacity: int = 4096
    digest_memo: bool = True
    shard_verify_owned_only: bool = True
    share_colocated_cache: bool = True

    def validate(self) -> None:
        if self.cert_cache_capacity < 1:
            raise ConfigurationError("cert_cache_capacity must be at least 1")


@dataclass(frozen=True)
class BatchingConfig:
    """Request-bundling policy for the agreement cluster.

    ``mode="static"`` reproduces the paper's fixed bundle size
    (:attr:`SystemConfig.bundle_size`, swept by Figure 5).  ``mode="adaptive"``
    replaces it with an AIMD controller on queue depth: every time the
    primary drains a bundle and backlog remains, the bundle size grows
    additively (by ``increase``) up to ``max_bundle``; every time the queue
    drains with a partial bundle (a batch-timeout fire under light load) it
    shrinks multiplicatively (by ``decrease_factor``) toward ``min_bundle``.
    The batch timeout is unchanged in either mode, so adaptive bundling can
    never hold a request longer than ``timers.batch_timeout_ms``.
    """

    mode: str = "static"
    min_bundle: int = 1
    max_bundle: int = 64
    increase: int = 1
    decrease_factor: float = 0.5
    #: requests in flight (ordered but unanswered) at or above which the
    #: system counts as congested -- with closed-loop clients the backlog
    #: accumulates *in the pipeline*, not in the batcher, so the controller
    #: must watch both.
    congestion_requests: int = 1
    #: quiet-gap flush window (ms) used instead of ``timers.batch_timeout_ms``
    #: when at most one batch is in flight: long enough to cover the
    #: reply-to-resubmission round trip of a closed-loop client cohort, and
    #: each arrival during the gather pushes the flush out by another
    #: ``gather_ms`` (a debounce that captures the whole burst), bounded by
    #: ``timers.batch_timeout_ms`` from the start of the gather.  At
    #: ``min_bundle`` every take happens at arrival time and this window is
    #: never armed, so light-load latency is untouched.
    gather_ms: float = 6.0
    #: per-shard batch *timeouts*: a shard's partial-bundle fill window may
    #: stretch up to ``timeout_scale_max`` times ``timers.batch_timeout_ms``
    #: while the shard is congested -- a hot shard under deep backlog can
    #: afford to wait for a fuller (better-amortised) bundle, while a cold
    #: shard keeps the base flush latency.  ``1.0`` disables the stretch and
    #: keeps the single shared flush timer behaviour.
    timeout_scale_max: float = 1.0
    #: demote a per-shard AIMD controller back to the shared low-load
    #: controller after this much idle time on its shard (virtual ms); a
    #: one-time burst then does not leave the shard on a private controller
    #: forever.  ``None`` never demotes.
    demote_idle_ms: Optional[float] = None

    def validate(self) -> None:
        if self.mode not in ("static", "adaptive"):
            raise ConfigurationError(
                f"batching mode must be 'static' or 'adaptive', got {self.mode!r}"
            )
        if self.min_bundle < 1:
            raise ConfigurationError("min_bundle must be at least 1")
        if self.max_bundle < self.min_bundle:
            raise ConfigurationError("max_bundle must be >= min_bundle")
        if self.increase < 1:
            raise ConfigurationError("increase must be at least 1")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ConfigurationError("decrease_factor must be in (0, 1)")
        if self.congestion_requests < 1:
            raise ConfigurationError("congestion_requests must be at least 1")
        if self.gather_ms <= 0:
            raise ConfigurationError("gather_ms must be positive")
        if self.timeout_scale_max < 1.0:
            raise ConfigurationError("timeout_scale_max must be at least 1.0")
        if self.demote_idle_ms is not None and self.demote_idle_ms <= 0:
            raise ConfigurationError(
                "demote_idle_ms must be positive (or None to never demote)"
            )


@dataclass(frozen=True)
class ObservabilityConfig:
    """Metrics registry and causal request tracing (both off by default).

    Observability is strictly *passive*: enabling it never charges virtual
    processing time, never schedules events, and never draws from the
    deterministic RNG, so the virtual-time results of a run are bit-identical
    whether it is on or off (CI's overhead gate enforces this).  Timestamps
    are always read from the virtual clock -- never the wall clock -- so
    traces from identical seeds are themselves identical.

    ``metrics``
        Hand every node a live :class:`~repro.obs.registry.MetricsRegistry`
        (counters/gauges/histograms over the hot paths).  When false, nodes
        share a single no-op registry whose mutators do nothing.
    ``tracing``
        Record a span event (trace id, event name, node, virtual time) at
        every hop a client request takes through the planes; exportable as
        JSONL and foldable into a per-stage critical-path breakdown.
    ``trace_capacity``
        Upper bound on retained trace events; once full, further events are
        counted as dropped rather than recorded (bounds memory on very long
        runs without perturbing the simulation).
    """

    metrics: bool = False
    tracing: bool = False
    trace_capacity: int = 1_000_000

    @property
    def enabled(self) -> bool:
        return self.metrics or self.tracing

    def validate(self) -> None:
        if self.trace_capacity < 0:
            raise ConfigurationError("trace_capacity must be non-negative")


@dataclass(frozen=True)
class CryptoPoolConfig:
    """Parallel certificate verification for the real (asyncio) runtime.

    When enabled, the asyncio transport pre-verifies the MAC / signature /
    threshold authenticators carried by each inbound message in a
    ``concurrent.futures.ProcessPoolExecutor`` *before* handing the message
    to its destination node, and records the successful facts in that
    node's :class:`~repro.crypto.cache.VerifiedCertificateCache`.  The
    in-handler verification then hits the cache and charges nothing, so the
    cryptographic work parallelises across cores while the protocol-level
    verification semantics (success-only memoisation, per-node caches,
    failures re-checked inline) are exactly those of the simulator.

    The pool is meaningless under the virtual-time simulator -- simulated
    crypto charges are bookkeeping, not CPU -- so ``enabled=True`` requires
    ``RuntimeConfig.backend == "asyncio"``.

    ``workers``
        Process-pool size; ``None`` sizes it to ``os.cpu_count()``.
    ``min_batch``
        Messages carrying fewer verification jobs than this are verified
        inline (the job is too small to amortise a pool round trip).
    """

    enabled: bool = False
    workers: Optional[int] = None
    min_batch: int = 1

    def validate(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                "crypto pool workers must be at least 1 (or None to size "
                "the pool to the host)")
        if self.min_batch < 1:
            raise ConfigurationError("crypto pool min_batch must be at least 1")


@dataclass(frozen=True)
class RuntimeConfig:
    """Which runtime backend executes the deployment.

    ``backend="sim"`` (the default) is the deterministic virtual-time
    simulator every test, benchmark, and fuzz campaign runs on.
    ``backend="asyncio"`` runs the same protocol objects as asyncio tasks
    exchanging pickled wire messages over real localhost TCP sockets, with
    wall-clock timers; see :mod:`repro.runtime.asyncio_rt` for the
    invariants it preserves and the ones (determinism, fault injection)
    it deliberately gives up.

    ``charge_scale``
        Real-runtime cost emulation: every virtual millisecond a node
        charges (crypto, app execution) is burned as ``charge_scale``
        real milliseconds of CPU.  ``0.0`` (default) makes charges free,
        which is right for functional parity tests; benchmarks set it
        positive so the configured cost model -- built to mimic asymmetric
        crypto far heavier than the stdlib HMACs standing in for it --
        shapes wall-clock results too.  Cache-hit verifications charge
        nothing and therefore burn nothing, exactly as in the simulator.
    ``poll_interval_ms``
        How often (wall milliseconds) ``run_until`` re-checks its
        predicate while the event loop runs.
    """

    backend: str = "sim"
    charge_scale: float = 0.0
    poll_interval_ms: float = 0.5
    crypto_pool: CryptoPoolConfig = field(default_factory=CryptoPoolConfig)

    def validate(self) -> None:
        if self.backend not in ("sim", "asyncio"):
            raise ConfigurationError(
                f"runtime backend must be 'sim' or 'asyncio', got {self.backend!r}")
        if self.charge_scale < 0:
            raise ConfigurationError("charge_scale must be non-negative")
        if self.poll_interval_ms <= 0:
            raise ConfigurationError("poll_interval_ms must be positive")
        self.crypto_pool.validate()
        if self.crypto_pool.enabled and self.backend != "asyncio":
            raise ConfigurationError(
                "the crypto pool parallelises real CPU work and therefore "
                "requires the 'asyncio' runtime backend (simulated crypto "
                "charges are virtual-time bookkeeping)")


@dataclass(frozen=True)
class TimerConfig:
    """Retransmission and view-change timers (virtual milliseconds)."""

    client_retransmit_ms: float = 150.0
    agreement_retransmit_ms: float = 60.0
    execution_fetch_ms: float = 40.0
    view_change_ms: float = 400.0
    #: multiplier applied per failed view-change attempt: the k-th
    #: escalation re-votes after ``view_change_ms * view_change_backoff**k``
    #: so cascading view changes under a long partition don't thrash
    view_change_backoff: float = 2.0
    #: upper bound on the escalation delay; a cap below ``view_change_ms``
    #: is treated as ``view_change_ms`` (the backoff never undercuts the
    #: base timer)
    view_change_backoff_cap_ms: float = 6400.0
    batch_timeout_ms: float = 1.0
    #: proactive primary rotation: after this many *stable checkpoints* in
    #: the current view, every replica starts a planned view change to the
    #: next primary (riding the ordinary view-change path, so the handover
    #: inherits its safety argument wholesale).  All correct replicas count
    #: the same stable checkpoints, so the rotation quorum forms without any
    #: extra coordination.  ``None`` (the default) never rotates.
    rotation_interval_checkpoints: Optional[int] = None

    def validate(self) -> None:
        for fld in dataclasses.fields(self):
            if fld.name == "rotation_interval_checkpoints":
                value = getattr(self, fld.name)
                if value is not None and value < 1:
                    raise ConfigurationError(
                        "rotation_interval_checkpoints must be at least 1 "
                        "(or None to disable proactive rotation)")
                continue
            if getattr(self, fld.name) <= 0:
                raise ConfigurationError(f"timer {fld.name} must be positive")
        if self.view_change_backoff < 1.0:
            raise ConfigurationError(
                "view_change_backoff must be at least 1.0 (a shrinking "
                "escalation timer would thrash under a long partition)")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a deployment of the separated architecture.

    Parameters
    ----------
    f:
        Number of Byzantine faults tolerated by the agreement cluster.
    g:
        Number of Byzantine faults tolerated by the execution cluster.
    h:
        Number of Byzantine faults tolerated by the privacy firewall.  Only
        meaningful when ``use_privacy_firewall`` is true.
    num_clients:
        Size of the finite universe of authorised clients.
    pipeline_depth:
        The paper's ``P``: maximum number of agreement-certificate sequence
        numbers outstanding (unanswered) between the clusters.
    checkpoint_interval:
        The paper's ``CP_FREQ``: execution nodes checkpoint after executing
        request ``n`` whenever ``n % checkpoint_interval == 0``.
    bundle_size:
        Number of requests bundled into one agreement/batch and one threshold
        signature (Figure 5 sweeps this).
    """

    f: int = 1
    g: int = 1
    h: int = 1
    num_clients: int = 4
    pipeline_depth: int = 64
    checkpoint_interval: int = 128
    bundle_size: int = 1
    authentication: AuthenticationScheme = AuthenticationScheme.MAC
    deployment: Deployment = Deployment.DIFFERENT
    use_privacy_firewall: bool = False
    use_reply_cache: bool = True
    direct_execution_reply: bool = True
    #: Castro-Liskov style optimisation: only the current primary's message
    #: queue sends a newly inserted batch towards the execution cluster; the
    #: other agreement nodes send only if their retransmission timer expires.
    primary_sends_first: bool = True
    #: view-change target selection skips primaries deposed within the last
    #: full rotation, so a chronically slow or censoring leader cannot
    #: immediately recapture the view.  A liveness heuristic only: the
    #: ``f + 1`` join rule still converges replicas that disagree on the
    #: skip, and safety never depends on which view is chosen.
    skip_deposed_primaries: bool = True
    app_processing_ms: float = 0.0
    crypto: CryptoCosts = field(default_factory=CryptoCosts)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    timers: TimerConfig = field(default_factory=TimerConfig)
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    rebalance: RebalanceConfig = field(default_factory=RebalanceConfig)
    cross_shard: CrossShardConfig = field(default_factory=CrossShardConfig)
    multilog: MultiLogConfig = field(default_factory=MultiLogConfig)
    perf: PerfConfig = field(default_factory=PerfConfig)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.f < 0 or self.g < 0 or self.h < 0:
            raise ConfigurationError("fault thresholds f, g, h must be non-negative")
        if self.num_clients < 1:
            raise ConfigurationError("at least one client is required")
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be at least 1")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be at least 1")
        if self.bundle_size < 1:
            raise ConfigurationError("bundle_size must be at least 1")
        if self.use_privacy_firewall and self.authentication is not AuthenticationScheme.THRESHOLD:
            raise ConfigurationError(
                "the privacy firewall requires threshold-signature reply certificates"
            )
        if self.use_privacy_firewall and self.deployment is not Deployment.DIFFERENT:
            raise ConfigurationError(
                "the privacy firewall requires physically separate agreement and "
                "execution machines"
            )
        if self.app_processing_ms < 0:
            raise ConfigurationError("app_processing_ms must be non-negative")
        if self.sharding.num_shards > 1 and self.use_privacy_firewall:
            raise ConfigurationError(
                "sharded execution is incompatible with the privacy firewall: "
                "the shard router must read operation keys, which the firewall "
                "deployment encrypts end-to-end"
            )
        if self.rebalance.enabled and self.sharding.strategy != "range":
            raise ConfigurationError(
                "dynamic shard rebalancing requires the 'range' sharding "
                "strategy (hash partitioning has no boundaries to move)"
            )
        if self.cross_shard.enabled and self.use_privacy_firewall:
            raise ConfigurationError(
                "cross-shard operations are incompatible with the privacy "
                "firewall: the routing layers must read operation keys, "
                "which the firewall deployment encrypts end-to-end"
            )
        if self.multilog.enabled:
            if self.use_privacy_firewall:
                raise ConfigurationError(
                    "multi-log ordering is incompatible with the privacy "
                    "firewall (the log routers must read operation keys)"
                )
            if self.sharding.num_shards % self.multilog.num_logs != 0:
                raise ConfigurationError(
                    f"num_shards ({self.sharding.num_shards}) must be "
                    f"divisible by num_logs ({self.multilog.num_logs}) so "
                    "shard groups start out equal"
                )
            if self.rebalance.enabled:
                raise ConfigurationError(
                    "multi-log ordering and dynamic rebalancing are mutually "
                    "exclusive for now: a partition-map cut is ordered in one "
                    "log but governs key ownership across all of them"
                )
        self.network.validate()
        self.timers.validate()
        self.sharding.validate()
        self.rebalance.validate()
        self.cross_shard.validate()
        self.multilog.validate()
        self.perf.validate()
        self.batching.validate()
        self.pipeline.validate()
        self.observability.validate()
        self.runtime.validate()

    # ------------------------------------------------------------------ #
    # Cluster sizes (the paper's replication-cost arithmetic).
    # ------------------------------------------------------------------ #

    @property
    def num_agreement_nodes(self) -> int:
        """``3f + 1`` replicas are required for f-resilient Byzantine agreement."""
        return 3 * self.f + 1

    @property
    def num_execution_nodes(self) -> int:
        """``2g + 1`` execution replicas tolerate ``g`` Byzantine faults."""
        return 2 * self.g + 1

    @property
    def num_execution_clusters(self) -> int:
        """Number of independent execution clusters (shards)."""
        return self.sharding.num_shards

    @property
    def total_execution_nodes(self) -> int:
        """Execution replicas across all shards: ``num_shards * (2g + 1)``."""
        return self.sharding.num_shards * self.num_execution_nodes

    @property
    def agreement_quorum(self) -> int:
        """Authenticators required on an agreement certificate: ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def reply_quorum(self) -> int:
        """Matching execution authenticators required on a reply: ``g + 1``."""
        return self.g + 1

    @property
    def checkpoint_quorum(self) -> int:
        """Execution checkpoint proof of stability needs ``g + 1`` vouchers."""
        return self.g + 1

    @property
    def firewall_rows(self) -> int:
        """The privacy firewall has ``h + 1`` rows of filters."""
        return self.h + 1 if self.use_privacy_firewall else 0

    @property
    def firewall_columns(self) -> int:
        """Each privacy firewall row has ``h + 1`` filter nodes."""
        return self.h + 1 if self.use_privacy_firewall else 0

    @property
    def num_firewall_nodes(self) -> int:
        """Total number of filter nodes: ``(h + 1)^2`` (the provable minimum)."""
        return self.firewall_rows * self.firewall_columns

    @property
    def total_server_machines(self) -> int:
        """Number of distinct server machines in the deployment.

        When agreement and execution share machines (``Deployment.SAME``)
        the execution replicas do not add machines.  When the privacy
        firewall is enabled, the bottom row of filters is co-located with
        agreement nodes whenever there are at least ``h + 1`` of them, which
        the ``3f + 1 >= h + 1`` check captures.
        """
        agreement = self.num_agreement_nodes
        execution = 0 if self.deployment is Deployment.SAME else self.num_execution_nodes
        firewall = 0
        if self.use_privacy_firewall:
            rows = self.firewall_rows
            colocated_rows = 1 if self.num_agreement_nodes >= self.firewall_columns else 0
            firewall = (rows - colocated_rows) * self.firewall_columns
        return agreement + execution + firewall

    # ------------------------------------------------------------------ #
    # Convenience constructors for the paper's evaluation configurations.
    # ------------------------------------------------------------------ #

    @staticmethod
    def base_coupled(**overrides: object) -> "SystemConfig":
        """BASE/Same/MAC: the coupled baseline (agreement == execution nodes)."""
        defaults: dict = dict(
            f=1, g=1, deployment=Deployment.SAME,
            authentication=AuthenticationScheme.MAC,
            use_privacy_firewall=False,
        )
        defaults.update(overrides)
        return SystemConfig(**defaults)

    @staticmethod
    def separate_same_mac(**overrides: object) -> "SystemConfig":
        """Separate/Same/MAC from Figure 3."""
        defaults: dict = dict(
            f=1, g=1, deployment=Deployment.SAME,
            authentication=AuthenticationScheme.MAC,
            use_privacy_firewall=False,
        )
        defaults.update(overrides)
        return SystemConfig(**defaults)

    @staticmethod
    def separate_different_mac(**overrides: object) -> "SystemConfig":
        """Separate/Different/MAC from Figure 3."""
        defaults: dict = dict(
            f=1, g=1, deployment=Deployment.DIFFERENT,
            authentication=AuthenticationScheme.MAC,
            use_privacy_firewall=False,
        )
        defaults.update(overrides)
        return SystemConfig(**defaults)

    @staticmethod
    def separate_different_threshold(**overrides: object) -> "SystemConfig":
        """Separate/Different/Thresh from Figure 3."""
        defaults: dict = dict(
            f=1, g=1, deployment=Deployment.DIFFERENT,
            authentication=AuthenticationScheme.THRESHOLD,
            use_privacy_firewall=False,
        )
        defaults.update(overrides)
        return SystemConfig(**defaults)

    @staticmethod
    def sharded(num_shards: int, strategy: str = "hash",
                range_boundaries: tuple = (), **overrides: object) -> "SystemConfig":
        """Separated architecture with ``num_shards`` execution clusters.

        Sharded deployments default to skew-aware concurrency (per-shard
        pipeline windows sized like the global ``pipeline_depth``,
        out-of-order shard delivery, and the RTT-derived gather window);
        pass ``pipeline=PipelineConfig()`` to get the single global
        watermark back (the pre-sharding behaviour, and the baseline the
        skew benchmark compares against).
        """
        defaults: dict = dict(
            f=1, g=1, deployment=Deployment.DIFFERENT,
            authentication=AuthenticationScheme.MAC,
            use_privacy_firewall=False,
            sharding=ShardingConfig(num_shards=num_shards, strategy=strategy,
                                    range_boundaries=tuple(range_boundaries)),
        )
        defaults.update(overrides)
        if "pipeline" not in defaults:
            depth = defaults.get("pipeline_depth",
                                 SystemConfig.__dataclass_fields__["pipeline_depth"].default)
            defaults["pipeline"] = PipelineConfig(
                per_shard_depth=int(depth), ooo_shard_delivery=True, rtt_gather=True)
        return SystemConfig(**defaults)

    @staticmethod
    def multilog_sharded(num_logs: int, num_shards: int, strategy: str = "hash",
                         range_boundaries: tuple = (),
                         **overrides: object) -> "SystemConfig":
        """Sharded separated architecture with ``num_logs`` agreement logs.

        Delegates to :meth:`sharded` (so multi-log deployments inherit the
        skew-aware pipeline defaults) and partitions the ``num_shards``
        execution clusters into ``num_logs`` equal contiguous groups.
        """
        defaults: dict = dict(multilog=MultiLogConfig(num_logs=num_logs))
        defaults.update(overrides)
        return SystemConfig.sharded(num_shards, strategy,
                                    tuple(range_boundaries), **defaults)

    @staticmethod
    def privacy_firewall(**overrides: object) -> "SystemConfig":
        """Priv/Different/Thresh from Figure 3: the full privacy firewall system."""
        defaults: dict = dict(
            f=1, g=1, h=1, deployment=Deployment.DIFFERENT,
            authentication=AuthenticationScheme.THRESHOLD,
            use_privacy_firewall=True,
        )
        defaults.update(overrides)
        return SystemConfig(**defaults)

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
