"""Clients of the multi-log deployment.

A :class:`MultiLogClient` keeps one view cursor *per agreement log* and
submits each request to the log that orders its shard's feed (judged by the
newest log map the client knows).  A cross-group operation is submitted to
**every** touched log -- each one must order the marker before the
cross-log cut can release it -- and completes through the same
sub-certified assembled reply as a single-log cross-shard operation (the
collator shard's cluster reaches the other touched clusters over the
cross-shard links, whichever logs order them).

On a retransmission timeout the client re-derives the owning log from the
latest map: if a log-map change moved the shard mid-flight, the retry goes
to the *new* owner's cluster, where the reply table serves a cached answer
if the original already executed -- at-most-once execution is preserved by
the execution replicas' dedup exactly as within one log, so retargeting
costs a retry but never a double execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import SystemConfig
from ..core.client import CompletedRequest
from ..crypto.keys import Keystore
from ..sim.scheduler import Scheduler
from ..statemachine.interface import Operation
from ..util.ids import NodeId
from ..sharding.client import ShardAwareClient
from ..sharding.router import ShardRouter
from .logmap import LogMapRegistry


class MultiLogClient(ShardAwareClient):
    """A shard-aware client that routes submissions between K logs."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler,
                 config: SystemConfig, keystore: Keystore,
                 log_agreement_ids: List[List[NodeId]],
                 request_verifiers: List[NodeId],
                 shard_execution_ids: List[List[NodeId]],
                 router: ShardRouter, log_registry: LogMapRegistry,
                 shard_threshold_groups: Optional[List[str]] = None) -> None:
        super().__init__(node_id=node_id, scheduler=scheduler, config=config,
                         keystore=keystore,
                         agreement_ids=list(log_agreement_ids[0]),
                         request_verifiers=request_verifiers,
                         shard_execution_ids=shard_execution_ids,
                         router=router,
                         shard_threshold_groups=shard_threshold_groups)
        self.log_agreement_ids = [list(ids) for ids in log_agreement_ids]
        self.log_registry = log_registry
        # Sub-reply fragments of a cross-group operation carry marker
        # sequence numbers from *different* logs' sequence spaces; the
        # verifier relaxes the op_seq equality to per-log equality.
        self.log_of_shard = lambda shard: self.log_registry.latest.log_of(shard)
        #: last known primary view per log (the inherited ``_last_known_view``
        #: always describes ``_current_log``)
        self._log_views: Dict[int, int] = {}
        self._current_log = 0
        #: the logs the outstanding request was submitted to
        self._touched_logs: Tuple[int, ...] = ()
        self.log_retargets = 0

    def _retarget_log(self, log: int) -> None:
        """Point the inherited submission machinery at ``log``'s cluster."""
        if log == self._current_log:
            return
        self._log_views[self._current_log] = self._last_known_view
        self._current_log = log
        self.agreement_ids = list(self.log_agreement_ids[log])
        self._last_known_view = self._log_views.get(log, 0)
        self.log_retargets += 1

    def _touched_logs_of(self, operation: Operation) -> Tuple[int, ...]:
        shards = self.router.shards_of_operation_keys(operation,
                                                      epoch=self.epoch)
        lmap = self.log_registry.latest
        return tuple(sorted({lmap.log_of(shard) for shard in shards}))

    def _issue(self, operation: Operation, timestamp: int,
               callback: Optional[Callable[[CompletedRequest], None]],
               issued_at: Optional[float] = None) -> None:
        logs = self._touched_logs_of(operation)
        self._retarget_log(logs[0])
        self._touched_logs = logs
        super()._issue(operation, timestamp, callback, issued_at=issued_at)
        # A cross-group marker must be *ordered by every touched log*: the
        # inherited submission reached logs[0]'s primary guess; copy the
        # same signed envelope to each other touched log's.  (Guard against
        # a local failure having already popped the next queued request.)
        pending = self._pending
        if (len(logs) > 1 and pending is not None
                and pending.timestamp == timestamp):
            for log in logs[1:]:
                cluster = self.log_agreement_ids[log]
                view = self._log_views.get(log, 0)
                self.send(cluster[view % len(cluster)], pending.envelope)

    def _on_timeout(self, timestamp: int) -> None:
        pending = self._pending
        if pending is None or pending.timestamp != timestamp:
            super()._on_timeout(timestamp)
            return
        # Re-derive the owning logs from the newest map: a log-map change
        # may have moved a shard mid-flight, and the new owner's cluster is
        # the one that can still answer (its reply tables dedup a request
        # the old owner already executed).
        cross = self._pending_cross
        operation = (cross["operation"] if cross is not None
                     else self._pending_operation)
        if operation is not None:
            self._touched_logs = self._touched_logs_of(operation)
            self._retarget_log(self._touched_logs[0])
        super()._on_timeout(timestamp)
        pending = self._pending
        if pending is None or len(self._touched_logs) <= 1:
            return
        for log in self._touched_logs[1:]:
            self.multicast(self.log_agreement_ids[log], pending.envelope)
