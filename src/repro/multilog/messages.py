"""Messages of the multi-log coordination round.

A cross-group operation (a multi-shard read or write-only transaction whose
shards span log groups) and a :class:`LogMapChange` (moving a shard between
groups) must release at **one consistent cut** over the ``K`` independent
agreement orders.  The protocol is a deterministic validated-agreement step
built from two artifacts:

* :class:`CrossLogBinding` -- each agreement replica of a touched log binds
  the marker to the sequence number *its own log* committed it at, by
  authenticating a sender-agnostic :class:`CrossLogBindingBody` (mirroring
  the checkpoint / sub-reply payload discipline).  ``f + 1`` matching
  bodies from one log's replicas certify that log's binding: at least one
  correct replica vouches for the sequence number, and a committed batch
  survives view changes at its sequence number, so the binding is stable.

* :class:`CrossLogCut` -- the per-log sequence vector, carried as one
  certified binding body per touched log.  The coordinating log's primary
  collates and broadcasts it (PR 5's collator discipline lifted to the
  ordering plane); any replica can *verify* it independently, and a
  Byzantine coordinator falls over to the backups' timers.

Marker identity on the wire is a small list (``["xs", client, timestamp]``
for client markers, ``["lmc", shard, target, parent]`` for log-map
changes), derivable by every queue from the batch content alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..crypto.certificate import Certificate
from ..messages.agreement import ConfigOperation
from ..messages.request import ClientRequest
from ..net.message import Message
from ..util.ids import NodeId

#: marker-key kinds
XS_MARKER = "xs"
LMC_MARKER = "lmc"

#: a marker key: ("xs", client_name, timestamp) or
#: ("lmc", shard, target_log, parent_log_epoch)
MarkerKey = Tuple


@dataclass(frozen=True)
class LogMapChange(ConfigOperation):
    """A log-map config operation ordered through *every* agreement log.

    ``parent_log_epoch`` names the map the change applies to; applying it
    produces the map of ``parent_log_epoch + 1``.  Every log's primary
    proposes the same change into its own log; each queue holds the marker
    at its release head until the cross-log cut certifies that every log
    committed it, then applies the change -- so all ``K`` orders cross the
    epoch boundary at one consistent cut.  Validity is judged at the cut
    against the releasing queue's current log epoch: a change whose parent
    is no longer current is a deterministic no-op on every correct node.
    """

    shard: int
    target_log: int
    parent_log_epoch: int

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "log-map-change": self.shard,
            "target_log": self.target_log,
            "parent_log_epoch": self.parent_log_epoch,
        }

    def well_formed(self, num_shards: int, num_logs: int) -> bool:
        """Structural sanity (semantic validity is judged at the cut)."""
        return (0 <= self.shard < num_shards
                and 0 <= self.target_log < num_logs
                and self.parent_log_epoch >= 0)

    def marker_key(self) -> MarkerKey:
        return (LMC_MARKER, self.shard, self.target_log,
                self.parent_log_epoch)


def log_map_change_of(
        certificates: Tuple[Certificate, ...]) -> Optional[LogMapChange]:
    """The log-map change carried by a batch, if it is one (same
    single-certificate shape as :func:`~repro.sharding.messages.map_change_of`)."""
    if (len(certificates) == 1
            and isinstance(certificates[0].payload, LogMapChange)):
        return certificates[0].payload
    return None


def client_marker_key(request: ClientRequest) -> MarkerKey:
    """Marker key of a cross-group client marker batch."""
    return (XS_MARKER, request.client.name, request.timestamp)


@dataclass(frozen=True, slots=True)
class CrossLogBindingBody(Message):
    """One log's binding of a marker to its own committed sequence number.

    Sender-agnostic (like checkpoint and sub-reply payloads): every correct
    replica of ``log`` that commits the marker at ``seq`` authenticates the
    same bytes, so ``f + 1`` matching authenticators certify the binding.
    Client markers bind at *commit* (staging) time -- the sequence number
    is already fixed, and binding before release is what keeps two markers
    ordered inversely by two logs from deadlocking each other's frontiers.
    A :class:`LogMapChange` binds at its *release head* instead, where
    ``shard_frontier`` -- the shard-local sequence number the marker itself
    receives on the moved shard's feed, i.e. the source log's final
    envelope -- is deterministic; the target log adopts it so the shard's
    local order continues without a gap or an overlap (exactly-once across
    the move).
    """

    marker: MarkerKey
    log: int
    seq: int
    shard_frontier: Optional[int] = None

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "xlog-bind": list(self.marker),
            "log": self.log,
            "n": self.seq,
            "frontier": self.shard_frontier,
        }


@dataclass(frozen=True)
class CrossLogBinding(Message):
    """One replica's partial certificate over a :class:`CrossLogBindingBody`.

    Multicast to every agreement replica of every log (the MAC vector
    covers them all), so each queue can assemble every touched log's
    ``f + 1``-vouched binding independently -- the coordinator's collated
    :class:`CrossLogCut` is a fast path, never a trust root.
    """

    body: CrossLogBindingBody
    certificate: Certificate
    sender: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "body": self.body.to_wire(),
            "certificate": self.certificate.to_wire(),
            "sender": self.sender.name,
        }


@dataclass(frozen=True)
class CrossLogCut(Message):
    """The coordinating log's collated cut: one certified binding per log.

    ``bodies[i]`` / ``certificates[i]`` belong to ``logs[i]`` (ascending).
    A receiver trusts nothing about the sender: it re-verifies every
    binding certificate against the named log's membership (``f + 1``
    distinct valid signers over the body) and, for its own log, that the
    bound sequence number matches the marker it is actually holding -- a
    Byzantine coordinator can therefore delay a release, never misplace
    one.
    """

    marker: MarkerKey
    logs: Tuple[int, ...]
    bodies: Tuple[CrossLogBindingBody, ...]
    certificates: Tuple[Certificate, ...]
    sender: NodeId

    def payload_fields(self) -> Dict[str, Any]:
        return {
            "xlog-cut": list(self.marker),
            "logs": list(self.logs),
            "bodies": [body.to_wire() for body in self.bodies],
            "certificates": [cert.to_wire() for cert in self.certificates],
            "sender": self.sender.name,
        }

    def body_for(self, log: int) -> Optional[CrossLogBindingBody]:
        for body in self.bodies:
            if body.log == log:
                return body
        return None
