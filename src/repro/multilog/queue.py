"""The multi-log shard-routing queue: cross-log cuts over K agreement orders.

Each agreement replica of log ``l`` hosts a :class:`MultiLogRouterQueue` --
a :class:`~repro.sharding.queue.ShardRouterQueue` that routes only the
shards of its own log group (judged by the epoch-versioned
:class:`~repro.multilog.logmap.LogMap`) and adds the **cross-log
coordination round** for operations spanning groups:

* When a *cross-shard marker* commits (stages), the queue binds it to the
  sequence number its own log assigned -- a
  :class:`~repro.multilog.messages.CrossLogBinding` multicast to every
  agreement replica of every log.  Binding at commit time (not at release)
  is what keeps two markers ordered inversely by two logs from deadlocking
  each other's release frontiers: the sequence number is already fixed
  when the binding is emitted, regardless of release order.

* When the marker reaches the queue's *release head* and its touched
  shards span several log groups, the frontier **holds** until one
  consistent cut is certified: either a verified
  :class:`~repro.multilog.messages.CrossLogCut` from the coordinating
  log's primary (the lowest touched log -- PR 5's collator discipline
  lifted to the ordering plane), or the queue's own assembly of ``f + 1``
  matching bindings from every other touched log.  Either way the release
  is backed by the same evidence, so a Byzantine coordinator can delay a
  release but never misplace one; its silence falls over to the backups'
  timers (``cut_fallover_scale x agreement_retransmit_ms``), counted in
  :attr:`cut_fallovers`.

* A :class:`~repro.multilog.messages.LogMapChange` is ordered by *every*
  log and binds at its release head, where the source log's binding
  carries the moved shard's frontier (the shard-local sequence number of
  the marker itself -- the source's final envelope); the target log
  adopts the frontier at the cut, so the moved shard's local order
  continues gap- and overlap-free (exactly-once across the move).

Liveness is self-driving: a holding queue retransmits its own binding with
backoff; a queue that already released answers a retransmitted binding
with its own (and the coordinating primary re-serves the collated cut), so
a replica that missed the original multicast recovers without operator
intervention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import AuthenticationScheme, SystemConfig
from ..core.message_queue import PendingSend
from ..crypto.certificate import Certificate
from ..messages.agreement import OrderedBatch
from ..net.message import Message
from ..obs import request_trace_id
from ..sim.process import Process
from ..sim.scheduler import Timer
from ..sharding.messages import ShardedBatch, cross_shard_request_of
from ..sharding.queue import ShardRouterQueue
from ..sharding.router import ShardRouter
from ..util.ids import NodeId
from .logmap import LogMap, LogMapRegistry
from .messages import (LMC_MARKER, XS_MARKER, CrossLogBinding,
                       CrossLogBindingBody, CrossLogCut, LogMapChange,
                       MarkerKey, client_marker_key, log_map_change_of)

#: released coordination records retained (so the coordinating primary can
#: re-serve a cut, and released queues can answer binding retransmissions)
CUT_META_HORIZON = 64


@dataclass
class _BindingCollector:
    """Accumulates one log's binding partials for one body digest."""

    body: CrossLogBindingBody
    certificate: Certificate
    done: bool = False


class MultiLogRouterQueue(ShardRouterQueue):
    """Local state machine of one agreement node of one log group."""

    def __init__(self, owner: Process, config: SystemConfig,
                 shard_execution_ids: List[List[NodeId]],
                 client_ids: List[NodeId], router: ShardRouter,
                 log: int, log_agreement_ids: List[List[NodeId]],
                 log_registry: LogMapRegistry,
                 shard_threshold_groups: Optional[List[str]] = None) -> None:
        super().__init__(owner=owner, config=config,
                         shard_execution_ids=shard_execution_ids,
                         client_ids=client_ids, router=router,
                         shard_threshold_groups=shard_threshold_groups)
        self.log = log
        self.log_agreement_ids = [list(ids) for ids in log_agreement_ids]
        self.log_registry = log_registry
        self.num_logs = len(log_agreement_ids)
        self.all_agreement_ids = [node for ids in log_agreement_ids
                                  for node in ids]
        #: this node's log-map epoch cursor: the epoch governing the *next*
        #: released batch (advanced exactly at log-map-change cuts)
        self.log_epoch = 0

        #: own emitted binding per marker (kept after release so this queue
        #: can answer a still-coordinating peer's retransmission)
        self._bound: Dict[MarkerKey, CrossLogBinding] = {}
        #: binding assembly, keyed by (marker, log, body) -- the body is a
        #: frozen value object, so keying by it groups matching partials
        #: without charging a digest per absorbed copy
        self._binding_acc: Dict[Tuple[MarkerKey, int, CrossLogBindingBody],
                                _BindingCollector] = {}
        #: certified bindings per (marker, log)
        self._certified: Dict[Tuple[MarkerKey, int],
                              List[_BindingCollector]] = {}
        #: markers currently holding the release frontier:
        #: marker -> (touched logs, own seq, trace id)
        self._held: Dict[MarkerKey, Tuple[Tuple[int, ...], int, str]] = {}
        #: released coordination records (bounded): marker -> (touched, seq)
        self._cut_meta: Dict[MarkerKey, Tuple[Tuple[int, ...], int]] = {}
        #: structurally verified cuts observed, by marker
        self._verified_cuts: Dict[MarkerKey, CrossLogCut] = {}
        #: markers whose cut this (primary) queue already broadcast
        self._cuts_sent: set = set()
        self._binding_timers: Dict[MarkerKey, Timer] = {}
        self._binding_timeouts: Dict[MarkerKey, float] = {}
        self._fallover_timers: Dict[MarkerKey, Timer] = {}
        #: log-epoch cursor snapshots at checkpoint cuts (transfer state)
        self._log_sync_snapshots: Dict[int, int] = {}

        #: test hooks modelling a Byzantine coordinating primary: stay
        #: silent, or collate a tampered cut (mirrors the agreement-side
        #: ``request_liveness_defence`` fault-injection idiom)
        self.suppress_cut_broadcast = False
        self.corrupt_cut_broadcast = False

        # Statistics.
        self.cross_log_markers = 0
        self.bindings_sent = 0
        self.cuts_broadcast = 0
        self.cut_fallovers = 0
        self.invalid_cuts = 0
        self.log_map_cuts = 0
        self.log_map_changes_rejected = 0

    # ------------------------------------------------------------------ #
    # Probes.
    # ------------------------------------------------------------------ #

    def _shard_probe(self) -> dict:
        probe = super()._shard_probe()
        probe.update({
            "log": self.log,
            "log_epoch": self.log_epoch,
            "cross_log_markers": self.cross_log_markers,
            "bindings_sent": self.bindings_sent,
            "cuts_broadcast": self.cuts_broadcast,
            "cut_fallovers": self.cut_fallovers,
            "invalid_cuts": self.invalid_cuts,
            "log_map_cuts": self.log_map_cuts,
            "log_map_changes_rejected": self.log_map_changes_rejected,
            "held_markers": len(self._held),
        })
        return probe

    # ------------------------------------------------------------------ #
    # Helpers.
    # ------------------------------------------------------------------ #

    def _log_map(self) -> LogMap:
        return self.log_registry.map_for(self.log_epoch)

    def _owned_route_targets(self, batch: OrderedBatch, shards):
        lmap = self._log_map()
        return [shard for shard in shards if lmap.log_of(shard) == self.log]

    def _ordering_log(self):
        return self.log

    def _quorum(self) -> int:
        """``f + 1``: at least one correct replica vouches per log."""
        return self.config.f + 1

    def _coordination_of(self, batch: OrderedBatch):
        """``(marker key, touched logs)`` if ``batch`` needs a cut here.

        Judged at this queue's release-head log epoch, so every correct
        replica of this log classifies identically at the same position of
        its own order.  A stale or malformed log-map change needs no cut
        (it is deterministically rejected at routing), and a multi-shard
        marker whose shards all live in one group releases immediately.
        """
        change = log_map_change_of(batch.request_certificates)
        if change is not None:
            if not change.well_formed(self.num_shards, self.num_logs):
                return None
            if change.parent_log_epoch != self.log_epoch:
                return None
            if self._log_map().log_of(change.shard) == change.target_log:
                return None
            return change.marker_key(), tuple(range(self.num_logs))
        request = self._cross_shard_marker_of(batch)
        if request is None:
            return None
        shards = self.router.shards_of_operation_keys(request.operation,
                                                      epoch=self.epoch)
        lmap = self._log_map()
        logs = tuple(sorted({lmap.log_of(shard) for shard in shards}))
        if len(logs) < 2:
            return None
        return client_marker_key(request), logs

    # ------------------------------------------------------------------ #
    # Binding emission.
    # ------------------------------------------------------------------ #

    def stage_batch(self, seq: int, view: int, request_certificates,
                    agreement_certificate, nondet) -> None:
        if seq > self._released_seq and seq not in self._staged:
            self._maybe_bind_marker(seq, tuple(request_certificates))
        super().stage_batch(seq=seq, view=view,
                            request_certificates=request_certificates,
                            agreement_certificate=agreement_certificate,
                            nondet=nondet)

    def _maybe_bind_marker(self, seq: int, certificates) -> None:
        """Bind a committing cross-shard marker to its sequence number.

        Emitted for *every* globally multi-shard marker, whether or not
        its shards span log groups here: emission is then a pure function
        of the static partition map (rebalancing is disabled under
        multi-log ordering), so all of a log's replicas emit matching
        bodies no matter how a racing log-map change interleaves with
        their staging -- a within-group marker's bindings are simply never
        waited on.
        """
        if not self.config.cross_shard.enabled:
            return
        request = cross_shard_request_of(certificates)
        if request is None or not self.router.is_cross_shard(
                request, epoch=self.epoch):
            return
        key = client_marker_key(request)
        bound = self._bound.get(key)
        if bound is not None and bound.body.seq == seq:
            return
        self._emit_binding(key, CrossLogBindingBody(marker=key, log=self.log,
                                                    seq=seq))

    def _emit_binding(self, key: MarkerKey,
                      body: CrossLogBindingBody) -> None:
        certificate = self.crypto.new_certificate(
            body, AuthenticationScheme.MAC, self.all_agreement_ids)
        binding = CrossLogBinding(body=body, certificate=certificate,
                                  sender=self.owner.node_id)
        self._bound[key] = binding
        self.bindings_sent += 1
        self.owner.multicast(self.all_agreement_ids, binding)
        # multicast excludes self: absorb the own partial directly.
        self._absorb_binding(binding)

    # ------------------------------------------------------------------ #
    # Binding assembly and cut collation.
    # ------------------------------------------------------------------ #

    def on_unknown_message(self, sender: NodeId, message: Message) -> None:
        """Cross-log traffic offered by the hosting agreement replica."""
        if isinstance(message, CrossLogBinding):
            self._absorb_binding(message)
        elif isinstance(message, CrossLogCut):
            self._absorb_cut(message)

    def _absorb_binding(self, binding: CrossLogBinding) -> None:
        body = binding.body
        if (not isinstance(body, CrossLogBindingBody)
                or not 0 <= body.log < self.num_logs or body.seq <= 0):
            return
        key = tuple(body.marker)
        acc_key = (key, body.log, body)
        collector = self._binding_acc.get(acc_key)
        duplicate = (collector is not None
                     and binding.sender in collector.certificate.signers)
        if (duplicate and binding.sender != self.owner.node_id
                and key in self._cut_meta and key in self._bound):
            # Only a *retransmitted* binding (a partial this queue already
            # merged) marks its sender as still coordinating a marker this
            # queue released: re-serve our own binding (the sender's
            # original copy may have been lost) and, as the coordinating
            # primary, the collated cut.  First copies are never answered,
            # so two released queues cannot ping-pong answers forever.
            self.owner.send(binding.sender, self._bound[key])
            self._maybe_reserve_cut(key)
            return
        if collector is None:
            collector = _BindingCollector(
                body=body, certificate=Certificate(
                    payload=body, scheme=binding.certificate.scheme))
            self._binding_acc[acc_key] = collector
        if collector.done:
            return
        collector.certificate.merge(binding.certificate)
        membership = self.log_agreement_ids[body.log]
        if collector.certificate.count(membership) < self._quorum():
            return  # cannot reach quorum yet: defer the MAC verification
        valid = self.crypto.valid_signers(collector.certificate, membership)
        if len(valid) < self._quorum():
            return
        collector.done = True
        self._certified.setdefault((key, body.log), []).append(collector)
        self._on_binding_certified(key)

    def _on_binding_certified(self, key: MarkerKey) -> None:
        if key in self._held:
            self._advance_release_frontier()
        self._maybe_coordinate(key)

    def _release_ready(self, key: MarkerKey,
                       touched: Tuple[int, ...]) -> bool:
        """Own assembly: a certified binding from every *other* touched
        log (this queue witnesses its own log's commit directly).  For a
        log-map change the source log's binding must carry the moved
        shard's frontier."""
        source = self._lmc_source(key)
        for log in touched:
            if log == self.log:
                continue
            entries = self._certified.get((key, log))
            if not entries:
                return False
            if log == source and all(entry.body.shard_frontier is None
                                     for entry in entries):
                return False
        return True

    def _lmc_source(self, key: MarkerKey) -> Optional[int]:
        """The log a log-map change moves its shard *from* -- judged at the
        change's parent epoch, so the answer stays right after the cut has
        already advanced this queue's cursor."""
        if key and key[0] == LMC_MARKER:
            parent = key[3]
            if self.log_registry.has_epoch(parent):
                return self.log_registry.map_for(parent).log_of(key[1])
            return self._log_map().log_of(key[1])
        return None

    def _cut_matches_hold(self, cut: CrossLogCut, touched: Tuple[int, ...],
                          seq: int) -> bool:
        if tuple(cut.logs) != tuple(touched):
            return False
        own = cut.body_for(self.log)
        if own is None or own.seq != seq:
            return False
        source = self._lmc_source(tuple(cut.marker))
        if source is not None and source != self.log:
            body = cut.body_for(source)
            if body is None or body.shard_frontier is None:
                return False
        return True

    def _maybe_coordinate(self, key: MarkerKey) -> None:
        """Coordinator duties of the lowest touched log's replicas."""
        meta = self._held.get(key) or self._cut_meta.get(key)
        if meta is None:
            return
        touched, seq = meta[0], meta[1]
        if not touched or min(touched) != self.log:
            return
        if not self._release_ready(key, touched):
            return
        if not any(entry.body.seq == seq
                   for entry in self._certified.get((key, self.log), [])):
            return  # own log's binding not yet certified for this instance
        if getattr(self.owner, "is_primary", False):
            if key not in self._cuts_sent and not self.suppress_cut_broadcast:
                self._broadcast_cut(key, touched, seq)
        elif key not in self._fallover_timers and key not in self._verified_cuts:
            scale = self.config.multilog.cut_fallover_scale
            self._arm_cut_fallover(
                key, scale * self.config.timers.agreement_retransmit_ms)

    def _build_cut(self, key: MarkerKey, touched: Tuple[int, ...],
                   seq: int) -> Optional[CrossLogCut]:
        source = self._lmc_source(key)
        bodies: List[CrossLogBindingBody] = []
        certificates: List[Certificate] = []
        for log in sorted(touched):
            entries = self._certified.get((key, log), [])
            if log == self.log:
                entries = [entry for entry in entries if entry.body.seq == seq]
            if log == source:
                entries = [entry for entry in entries
                           if entry.body.shard_frontier is not None]
            if not entries:
                return None
            bodies.append(entries[0].body)
            certificates.append(entries[0].certificate)
        return CrossLogCut(marker=key, logs=tuple(sorted(touched)),
                           bodies=tuple(bodies),
                           certificates=tuple(certificates),
                           sender=self.owner.node_id)

    def _broadcast_cut(self, key: MarkerKey, touched: Tuple[int, ...],
                       seq: int) -> None:
        cut = self._build_cut(key, touched, seq)
        if cut is None:
            return
        if self.corrupt_cut_broadcast:
            # Byzantine collation: misreport another log's sequence number.
            # The body no longer matches its certificate, so every correct
            # receiver rejects the cut (invalid_cuts) and releases through
            # its own assembly instead.
            tampered = tuple(
                CrossLogBindingBody(marker=body.marker, log=body.log,
                                    seq=body.seq + 1,
                                    shard_frontier=body.shard_frontier)
                if body.log != self.log else body
                for body in cut.bodies)
            cut = CrossLogCut(marker=cut.marker, logs=cut.logs,
                              bodies=tampered,
                              certificates=cut.certificates,
                              sender=cut.sender)
        else:
            self._verified_cuts[key] = cut
        self._cuts_sent.add(key)
        self.cuts_broadcast += 1
        targets = [node for log in touched
                   for node in self.log_agreement_ids[log]]
        self.owner.multicast(targets, cut)

    def _maybe_reserve_cut(self, key: MarkerKey) -> None:
        """Re-serve an already-collated cut (the coordinating primary's
        answer to a binding retransmitted by a still-holding peer)."""
        if not getattr(self.owner, "is_primary", False):
            return
        if self.suppress_cut_broadcast or key not in self._cuts_sent:
            return
        cut = self._verified_cuts.get(key)
        if cut is None:
            return
        targets = [node for log in cut.logs
                   for node in self.log_agreement_ids[log]]
        self.owner.multicast(targets, cut)

    def _arm_cut_fallover(self, key: MarkerKey, timeout_ms: float) -> None:
        self._fallover_timers[key] = self.owner.set_timer(
            timeout_ms, lambda key=key: self._on_cut_fallover(key),
            label=f"{self.owner.node_id}:xlog-cut-fallover")

    def _on_cut_fallover(self, key: MarkerKey) -> None:
        self._fallover_timers.pop(key, None)
        if key in self._verified_cuts or key in self._cuts_sent:
            return
        meta = self._held.get(key) or self._cut_meta.get(key)
        if meta is None:
            return
        touched, seq = meta[0], meta[1]
        if not self._release_ready(key, touched):
            return  # assembly regressed is impossible; binding still missing
        self.cut_fallovers += 1
        self._broadcast_cut(key, touched, seq)

    def _absorb_cut(self, cut: CrossLogCut) -> None:
        key = tuple(cut.marker)
        if key in self._verified_cuts or (key not in self._held
                                          and key in self._cut_meta):
            return  # already verified, or released without needing the cut
        if not self._verify_cut(cut):
            self.invalid_cuts += 1
            return
        self._verified_cuts[key] = cut
        timer = self._fallover_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        held = self._held.get(key)
        if held is not None:
            touched, seq = held[0], held[1]
            if self._cut_matches_hold(cut, touched, seq):
                self._advance_release_frontier()
            else:
                # Valid certificates collated for the wrong instance or
                # touched set: never release on it (own assembly will).
                self.invalid_cuts += 1

    def _verify_cut(self, cut: CrossLogCut) -> bool:
        """Structural verification -- trust only the ``f + 1`` signers."""
        if (len(cut.logs) != len(cut.bodies)
                or len(cut.logs) != len(cut.certificates)):
            return False
        if list(cut.logs) != sorted(set(cut.logs)) or len(cut.logs) < 2:
            return False
        for log, body, certificate in zip(cut.logs, cut.bodies,
                                          cut.certificates):
            if not 0 <= log < self.num_logs:
                return False
            if not isinstance(body, CrossLogBindingBody) or body.log != log:
                return False
            if tuple(body.marker) != tuple(cut.marker):
                return False
            if certificate.payload != body:
                return False
            if any(entry.body == body for entry in
                   self._certified.get((tuple(cut.marker), log), [])):
                # This queue already certified an identical binding for the
                # log; the cut's copy needs no second MAC verification.  (A
                # tampered body never matches: the free payload-equality
                # check above already rejected it.)
                continue
            valid = self.crypto.valid_signers(certificate,
                                              self.log_agreement_ids[log])
            if len(valid) < self._quorum():
                return False
        return True

    # ------------------------------------------------------------------ #
    # Release frontier: holds and routing.
    # ------------------------------------------------------------------ #

    def _release_hold(self, batch: OrderedBatch) -> bool:
        coordination = self._coordination_of(batch)
        if coordination is None:
            return False
        key, touched = coordination
        seq = batch.seq
        held = self._held.get(key)
        if held is None or held[1] != seq:
            trace_id = self._marker_trace_id(key)
            self._held[key] = (touched, seq, trace_id)
            self._ensure_bound(batch, key, seq)
            if self.owner.tracing:
                self.owner.trace_event(trace_id, "coordinate_open")
            self._arm_binding_retransmit(
                key, self.config.timers.agreement_retransmit_ms)
            self._maybe_coordinate(key)
        cut = self._verified_cuts.get(key)
        if cut is not None and self._cut_matches_hold(cut, touched, seq):
            return False
        if self._release_ready(key, touched):
            return False
        return True

    def _marker_trace_id(self, key: MarkerKey) -> str:
        if key[0] == XS_MARKER:
            return request_trace_id(key[1], key[2])
        return f"logmove:{key[1]}:{key[3]}"

    def _ensure_bound(self, batch: OrderedBatch, key: MarkerKey,
                      seq: int) -> None:
        if key[0] == LMC_MARKER:
            change = log_map_change_of(batch.request_certificates)
            frontier = None
            if self._log_map().log_of(change.shard) == self.log:
                # The marker itself is this shard's next (and, from this
                # log, final) envelope.
                frontier = self._next_shard_seq[change.shard] + 1
            self._emit_binding(key, CrossLogBindingBody(
                marker=key, log=self.log, seq=seq, shard_frontier=frontier))
            return
        bound = self._bound.get(key)
        if bound is None or bound.body.seq != seq:
            # Normally bound at staging; re-bind defensively (a checkpoint
            # sync can skip the staging pass for a later-re-ordered marker).
            self._emit_binding(key, CrossLogBindingBody(marker=key,
                                                        log=self.log,
                                                        seq=seq))

    def _arm_binding_retransmit(self, key: MarkerKey,
                                timeout_ms: float) -> None:
        self._binding_timeouts[key] = timeout_ms
        self._binding_timers[key] = self.owner.set_timer(
            timeout_ms, lambda key=key: self._on_binding_retransmit(key),
            label=f"{self.owner.node_id}:xlog-binding")

    def _on_binding_retransmit(self, key: MarkerKey) -> None:
        self._binding_timers.pop(key, None)
        if key not in self._held:
            return
        binding = self._bound.get(key)
        if binding is not None:
            self.owner.multicast(self.all_agreement_ids, binding)
            self.retransmissions += 1
        self._arm_binding_retransmit(key, self._binding_timeouts[key] * 2)

    def _route_batch(self, batch: OrderedBatch) -> None:
        change = log_map_change_of(batch.request_certificates)
        if change is not None:
            self._route_log_map_change(batch, change)
            return
        key = None
        request = self._cross_shard_marker_of(batch)
        if request is not None:
            key = client_marker_key(request)
            if key in self._held:
                self.cross_log_markers += 1
        super()._route_batch(batch)
        if key is not None:
            self._finish_coordination(key)

    def _route_log_map_change(self, batch: OrderedBatch,
                              change: LogMapChange) -> None:
        """Route the change marker to this log's group and apply the cut.

        Every log routes the marker to each shard it owns *pre-cut* (so
        every execution cluster meets the log-epoch boundary at a
        deterministic slot in its own order; the moved shard's envelope
        from the source log is its final one), then applies the new map.
        The target log additionally adopts the moved shard's certified
        frontier, continuing its shard-local sequence space exactly where
        the source log stopped.
        """
        staged_at = self._staged_at.pop(batch.seq, None)
        if staged_at is not None:
            self._h_stall.observe(self.owner.now - staged_at)
        self._c_released.inc()
        key = change.marker_key()
        current = self._log_map()
        if (not change.well_formed(self.num_shards, self.num_logs)
                or change.parent_log_epoch != self.log_epoch
                or current.log_of(change.shard) == change.target_log):
            self.log_map_changes_rejected += 1
            self._vacuous_answer(batch.seq)
            self._finish_coordination(key)
            return
        frontier = None
        if self.log == change.target_log:
            frontier = self._frontier_from_evidence(
                key, current.log_of(change.shard))
        shards = [shard for shard in range(self.num_shards)
                  if current.log_of(shard) == self.log]
        if shards:
            self._parts_outstanding[batch.seq] = len(shards)
            for shard in shards:
                self._next_shard_seq[shard] += 1
                shard_seq = self._next_shard_seq[shard]
                envelope = ShardedBatch(shard=shard, shard_seq=shard_seq,
                                        batch=batch, epoch=self.epoch,
                                        log=self.log)
                self._unanswered[shard][shard_seq] = batch.seq
                pending = PendingSend(
                    batch=envelope,
                    timeout_ms=self.config.timers.agreement_retransmit_ms)
                self.shard_pending[(shard, shard_seq)] = pending
                self._send_to_shard(shard, envelope)
                self._arm_shard_timer(pending)
        else:
            self._vacuous_answer(batch.seq)
        new_map = current.move(change.shard, change.target_log)
        self.log_registry.append(new_map)
        self.log_epoch = new_map.log_epoch
        self.log_map_cuts += 1
        if frontier is not None:
            self._next_shard_seq[change.shard] = frontier
        self._finish_coordination(key)

    def _vacuous_answer(self, seq: int) -> None:
        """A slot nobody owes a reply for (mirrors the base empty path)."""
        self._answered.add(seq)
        while (self.highest_reply_seq + 1) in self._answered:
            self.highest_reply_seq += 1
            self._answered.discard(self.highest_reply_seq)

    def _frontier_from_evidence(self, key: MarkerKey,
                                source: int) -> Optional[int]:
        cut = self._verified_cuts.get(key)
        if cut is not None:
            body = cut.body_for(source)
            if body is not None and body.shard_frontier is not None:
                return body.shard_frontier
        for entry in self._certified.get((key, source), []):
            if entry.body.shard_frontier is not None:
                return entry.body.shard_frontier
        return None  # unreachable: the release hold requires the evidence

    def _finish_coordination(self, key: MarkerKey) -> None:
        held = self._held.pop(key, None)
        if held is not None:
            self._cut_meta[key] = (held[0], held[1])
            if self.owner.tracing:
                self.owner.trace_event(held[2], "coordinate_done")
        timer = self._binding_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        self._binding_timeouts.pop(key, None)
        timer = self._fallover_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        self._prune_coordination_state()

    def _prune_coordination_state(self) -> None:
        """Bound the released-marker bookkeeping (local liveness state
        only -- never part of any agreed or certified artifact, so pruning
        differences between replicas cannot diverge the protocol)."""
        while len(self._cut_meta) > CUT_META_HORIZON:
            stale = next(iter(self._cut_meta))
            self._cut_meta.pop(stale, None)
            self._bound.pop(stale, None)
            self._verified_cuts.pop(stale, None)
            self._cuts_sent.discard(stale)
            self._certified = {
                acc_key: entries for acc_key, entries in
                self._certified.items() if acc_key[0] != stale
            }
            self._binding_acc = {
                acc_key: collector for acc_key, collector in
                self._binding_acc.items() if acc_key[0] != stale
            }

    # ------------------------------------------------------------------ #
    # Checkpoint state transfer: the log-epoch cursor travels too.
    # ------------------------------------------------------------------ #

    def _note_checkpoint_cut(self, seq: int) -> None:
        super()._note_checkpoint_cut(seq)
        if seq % self.config.checkpoint_interval == 0:
            self._log_sync_snapshots[seq] = self.log_epoch

    def on_stable_checkpoint(self, seq: int) -> None:
        super().on_stable_checkpoint(seq)
        self._log_sync_snapshots = {
            cut: epoch for cut, epoch in self._log_sync_snapshots.items()
            if cut > seq
        }

    def checkpoint_sync_state(self, seq: int):
        state = super().checkpoint_sync_state(seq)
        log_epoch = self._log_sync_snapshots.get(seq)
        if state and log_epoch is not None:
            state = state + (("log_epoch", log_epoch),)
        return state

    def sync_to_checkpoint(self, seq: int, sync_state) -> None:
        state = dict(sync_state)
        log_epoch = state.get("log_epoch")
        if (log_epoch is not None and log_epoch > self.log_epoch
                and self.log_registry.has_epoch(log_epoch)):
            # Maps themselves derive from the agreed change history
            # (shared registry); only the cursor transfers.
            self.log_epoch = log_epoch
        super().sync_to_checkpoint(seq, sync_state)
