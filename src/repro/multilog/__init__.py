"""Multi-log ordering: K independent agreement logs over one shard space.

The ordering plane is partitioned into ``K`` independent ``3f + 1``
agreement clusters ("logs"), each owning a group of execution shards
through an epoch-versioned :class:`~repro.multilog.logmap.LogMap` (the
ordering-plane analogue of the partition map).  Single-group requests flow
through their own log end to end, so committed throughput scales with
``K``; cross-group operations and log-map changes are fixed at one
consistent cut by a cross-log coordination round of ``f + 1``-vouched
per-log sequence bindings (see :mod:`repro.multilog.queue`).
"""

from .client import MultiLogClient
from .logmap import LogMap, LogMapRegistry, initial_log_map
from .messages import (CrossLogBinding, CrossLogBindingBody, CrossLogCut,
                       LogMapChange, log_map_change_of)
from .queue import MultiLogRouterQueue
from .system import MultiLogSystem

__all__ = [
    "CrossLogBinding", "CrossLogBindingBody", "CrossLogCut", "LogMap",
    "LogMapChange", "LogMapRegistry", "MultiLogClient", "MultiLogRouterQueue",
    "MultiLogSystem", "initial_log_map", "log_map_change_of",
]
