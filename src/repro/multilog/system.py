"""System assembly for the multi-log deployment.

:class:`MultiLogSystem` partitions the *ordering plane* itself: ``K``
independent ``3f + 1`` agreement clusters ("logs"), each running the full
agreement protocol over its own sequence space and fronting the execution
shards of its log group.  Execution clusters are wired exactly as in the
sharded architecture; what changes is upstream of them -- each shard's feed
comes from the log that currently owns it (epoch-versioned
:class:`~repro.multilog.logmap.LogMap`), and the per-replica
:class:`~repro.multilog.queue.MultiLogRouterQueue` adds the cross-log
coordination round for operations spanning groups.

Topology: clients reach every log's agreement cluster (a request goes to
the log owning its shard; a log-map change may retarget it mid-flight);
agreement replicas of *all* logs are wired to each other (bindings and cuts
cross logs) and to every execution replica (after a move, a different log
feeds the cluster); execution clusters keep the cross-shard links when
cross-group operations are on.  Fault bounds are per cluster: ``f``
Byzantine agreement replicas *per log* and ``g`` Byzantine execution
replicas *per shard* -- the coordination round never assembles a quorum
across clusters (every binding certificate is checked against the named
log's own membership).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..agreement.replica import AgreementReplica
from ..config import AuthenticationScheme, SystemConfig
from ..core.system import SimulatedSystem
from ..errors import ConfigurationError
from ..net.topology import Topology
from ..sim.process import Process
from ..statemachine.interface import StateMachine
from ..util.ids import NodeId, agreement_id, client_id, execution_id
from ..sharding.execution import ShardExecutionNode
from ..sharding.partitioner import make_partitioner
from ..sharding.router import KeyExtractor, ShardRouter
from ..sharding.system import SHARD_THRESHOLD_GROUP_PREFIX
from .client import MultiLogClient
from .logmap import LogMapRegistry, initial_log_map
from .messages import LogMapChange
from .queue import MultiLogRouterQueue


def multilog_topology(clients: List[NodeId],
                      log_agreement_ids: List[List[NodeId]],
                      shard_execution_ids: List[List[NodeId]],
                      allow_client_execution: bool = True,
                      cross_shard_links: bool = False) -> Topology:
    """Physical wiring of the multi-log deployment."""
    topo = Topology(fully_connected=False)
    all_agreement = [node for ids in log_agreement_ids for node in ids]
    topo.add_links(clients, all_agreement)
    # Bindings and cuts flow between every pair of agreement replicas,
    # across log boundaries.
    topo.add_links(all_agreement, all_agreement)
    for shard_ids in shard_execution_ids:
        # Every log may come to feed any shard after a log-map change.
        topo.add_links(all_agreement, shard_ids)
        topo.add_links(shard_ids, shard_ids)
        if allow_client_execution:
            topo.add_links(clients, shard_ids)
    if cross_shard_links:
        for i, left in enumerate(shard_execution_ids):
            for right in shard_execution_ids[i + 1:]:
                topo.add_links(left, right)
    return topo


class MultiLogSystem(SimulatedSystem):
    """``K`` agreement logs in front of ``num_shards`` execution clusters."""

    def __init__(self, config: SystemConfig,
                 app_factory: Callable[[], StateMachine],
                 key_extractor: Optional[KeyExtractor] = None,
                 num_clients: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        if not config.multilog.enabled:
            raise ConfigurationError(
                "MultiLogSystem needs multilog.num_logs > 1 (use "
                "ShardedSystem for a single ordering log)")
        super().__init__(config, seed=seed)
        count = num_clients if num_clients is not None else config.num_clients
        num_logs = config.multilog.num_logs
        num_shards = config.sharding.num_shards
        log_cluster = config.num_agreement_nodes
        exec_cluster = config.num_execution_nodes

        if key_extractor is None:
            key_extractor = getattr(app_factory, "extract_key", None)
        multi_key_extractor = getattr(app_factory, "extract_keys", None)
        self.router = ShardRouter(make_partitioner(config.sharding),
                                  key_extractor, multi_key_extractor)
        self.obs.register_global_probe("shard_router", self.router.snapshot)
        self.log_registry = LogMapRegistry(initial_log_map(num_shards,
                                                           num_logs))
        self.obs.register_global_probe("log_map", self.log_registry.snapshot)

        self.log_agreement_ids: List[List[NodeId]] = [
            [agreement_id(log * log_cluster + i) for i in range(log_cluster)]
            for log in range(num_logs)
        ]
        self.agreement_ids = [node for ids in self.log_agreement_ids
                              for node in ids]
        self.shard_execution_ids: List[List[NodeId]] = [
            [execution_id(shard * exec_cluster + j)
             for j in range(exec_cluster)]
            for shard in range(num_shards)
        ]
        self.execution_ids = [node for shard in self.shard_execution_ids
                              for node in shard]
        self.client_ids = [client_id(i) for i in range(count)]

        # ---------------- Per-shard threshold groups. ---------------- #
        shard_threshold_groups: Optional[List[str]] = None
        if config.authentication is AuthenticationScheme.THRESHOLD:
            shard_threshold_groups = []
            for shard, shard_ids in enumerate(self.shard_execution_ids):
                group = f"{SHARD_THRESHOLD_GROUP_PREFIX}{shard}"
                self.keystore.create_threshold_group(group, shard_ids,
                                                     config.reply_quorum)
                shard_threshold_groups.append(group)
        self.shard_threshold_groups = shard_threshold_groups

        # ---------------- Topology. ---------------- #
        self.network.topology = multilog_topology(
            clients=self.client_ids,
            log_agreement_ids=self.log_agreement_ids,
            shard_execution_ids=self.shard_execution_ids,
            allow_client_execution=(config.direct_execution_reply
                                    or config.cross_shard.enabled),
            cross_shard_links=config.cross_shard.enabled)

        # ---------------- Execution clusters (one per shard). ---------- #
        initial_map = self.log_registry.latest
        self.shard_execution_nodes: List[List[ShardExecutionNode]] = []
        for shard, shard_ids in enumerate(self.shard_execution_ids):
            cluster: List[ShardExecutionNode] = []
            group = (shard_threshold_groups[shard]
                     if shard_threshold_groups is not None else None)
            owner_ids = self.log_agreement_ids[initial_map.log_of(shard)]
            for node_id in shard_ids:
                node = ShardExecutionNode(
                    node_id=node_id, scheduler=self.scheduler, config=config,
                    keystore=self.keystore, state_machine=app_factory(),
                    agreement_ids=owner_ids, execution_ids=shard_ids,
                    client_ids=self.client_ids, upstream=owner_ids,
                    shard=shard, router=self.router, threshold_group=group,
                    shard_execution_ids=self.shard_execution_ids,
                )
                # Log-map cursor and hooks: every execution cluster meets
                # every log-map cut at one deterministic slot of its own
                # ordered feed; the moved shard's replicas repoint their
                # upstream log right after replying under the old one.
                node.log_map_epoch = 0
                node.on_config_marker = self._make_config_marker_hook()
                node.log_of_shard = (
                    lambda s: self.log_registry.latest.log_of(s))
                cluster.append(node)
                self.network.register(node)
            self.shard_execution_nodes.append(cluster)

        # ---------------- K agreement clusters with log routers. ------- #
        cert_verifiers = self.agreement_ids + self.execution_ids
        self.message_queues: List[MultiLogRouterQueue] = []
        self.agreement_replicas: List[AgreementReplica] = []
        self.log_replicas: List[List[AgreementReplica]] = []
        for log, log_ids in enumerate(self.log_agreement_ids):
            replicas: List[AgreementReplica] = []
            for node_id in log_ids:
                replica = AgreementReplica(
                    node_id=node_id, scheduler=self.scheduler, config=config,
                    keystore=self.keystore, local=None,  # type: ignore[arg-type]
                    agreement_ids=log_ids, client_ids=self.client_ids,
                    cert_verifiers=cert_verifiers,
                )
                queue = MultiLogRouterQueue(
                    owner=replica, config=config,
                    shard_execution_ids=self.shard_execution_ids,
                    client_ids=self.client_ids, router=self.router,
                    log=log, log_agreement_ids=self.log_agreement_ids,
                    log_registry=self.log_registry,
                    shard_threshold_groups=shard_threshold_groups,
                )
                replica.local = queue
                if config.pipeline.per_shard_depth is not None:
                    replica.enable_per_shard_batching(
                        queue.request_classifier())
                if config.cross_shard.enabled:
                    replica.enable_cross_shard(queue.cross_shard_probe())
                self.message_queues.append(queue)
                self.agreement_replicas.append(replica)
                replicas.append(replica)
                self.network.register(replica)
            self.log_replicas.append(replicas)

        # ---------------- Clients. ---------------- #
        request_verifiers = self.agreement_ids + self.execution_ids
        self.clients = []
        for node_id in self.client_ids:
            client = MultiLogClient(
                node_id=node_id, scheduler=self.scheduler, config=config,
                keystore=self.keystore,
                log_agreement_ids=self.log_agreement_ids,
                request_verifiers=request_verifiers,
                shard_execution_ids=self.shard_execution_ids,
                router=self.router, log_registry=self.log_registry,
                shard_threshold_groups=shard_threshold_groups,
            )
            self.clients.append(client)
            self.network.register(client)

    def _make_config_marker_hook(self):
        log_agreement_ids = self.log_agreement_ids

        def on_config_marker(node: ShardExecutionNode, op) -> None:
            if not isinstance(op, LogMapChange):
                return
            if op.parent_log_epoch != node.log_map_epoch:
                return  # stale/duplicate cut: deterministic no-op
            node.log_map_epoch += 1
            if op.shard == node.shard:
                owner_ids = list(log_agreement_ids[op.target_log])
                node.agreement_ids = owner_ids
                node.upstream = owner_ids

        return on_config_marker

    # ------------------------------------------------------------------ #
    # Log-map reconfiguration.
    # ------------------------------------------------------------------ #

    def propose_log_map_change(self, shard: int, target_log: int) -> bool:
        """Order one shard's move between log groups through *every* log.

        Each log's current primary proposes the same change into its own
        log; every queue holds the marker at its release head until the
        cross-log cut certifies that all logs committed it.  The driver
        serializes changes -- one at a time, proposed only when every log
        is quiescent enough to accept (all preconditions re-checked inside
        :meth:`~repro.agreement.replica.AgreementReplica.propose_map_change`
        would pass) -- because two *concurrent* log-map cuts could be
        ordered inversely by two logs and deadlock each other's frontiers;
        see ROADMAP for the MVBA-style cut-ordering follow-up.
        """
        parent = self.log_registry.latest_epoch
        change = LogMapChange(shard=shard, target_log=target_log,
                              parent_log_epoch=parent)
        if not change.well_formed(self.num_shards, self.num_logs):
            return False
        if self.log_registry.latest.log_of(shard) == target_log:
            return False
        if any(queue.log_epoch != parent or any(
                key[0] == "lmc" for key in queue._held)
               for queue in self.message_queues):
            return False  # a previous change is still cutting
        primaries: List[AgreementReplica] = []
        for replicas in self.log_replicas:
            primary = next(
                (replica for replica in replicas
                 if replica.is_primary and not replica._view_changing
                 and not replica.log.has_pending_config_op()
                 and replica.next_seq <= replica.log.high_watermark), None)
            if primary is None:
                return False
            primaries.append(primary)
        # All preconditions hold and nothing runs between the checks and
        # the proposals (the simulator is single-threaded), so either every
        # log orders the change or none does.
        return all(primary.propose_map_change(change)
                   for primary in primaries)

    # ------------------------------------------------------------------ #
    # Accessors and fault injection.
    # ------------------------------------------------------------------ #

    @property
    def num_logs(self) -> int:
        return len(self.log_agreement_ids)

    @property
    def num_shards(self) -> int:
        return len(self.shard_execution_ids)

    def server_processes(self) -> List[Process]:
        processes: List[Process] = list(self.agreement_replicas)
        for cluster in self.shard_execution_nodes:
            processes.extend(cluster)
        return processes

    def log_replica(self, log: int, index: int) -> AgreementReplica:
        return self.log_replicas[log][index]

    def log_queue(self, log: int, index: int) -> MultiLogRouterQueue:
        return self.message_queues[log * len(self.log_agreement_ids[0])
                                   + index]

    def log_primary(self, log: int) -> Optional[AgreementReplica]:
        """The replica currently acting as ``log``'s primary (if any)."""
        return next((replica for replica in self.log_replicas[log]
                     if replica.is_primary), None)

    def execution_cluster(self, shard: int) -> List[ShardExecutionNode]:
        return self.shard_execution_nodes[shard]

    def crash_agreement(self, log: int, index: int) -> None:
        """Crash one agreement replica of ``log`` (up to ``f`` per log)."""
        self.log_replicas[log][index].crash()

    def crash_execution(self, shard: int, index: int) -> None:
        """Crash one execution replica of ``shard`` (up to ``g`` per shard)."""
        self.shard_execution_nodes[shard][index].crash()

    def log_epoch(self) -> int:
        """The log-map epoch queue 0 of log 0 has reached."""
        return self.message_queues[0].log_epoch

    def requests_executed_by_shard(self) -> List[int]:
        return [max(node.requests_executed for node in cluster)
                for cluster in self.shard_execution_nodes]

    def total_requests_executed(self) -> int:
        return sum(self.requests_executed_by_shard())

    def completed_by_log(self) -> List[int]:
        """Requests completed per submitting log (bench observability)."""
        totals = [0] * self.num_logs
        for client in self.clients:
            totals[client._current_log] += len(client.completed)
        return totals
